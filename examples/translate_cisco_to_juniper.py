"""Walk through the translation VPP loop prompt by prompt.

Usage::

    python examples/translate_cisco_to_juniper.py [seed]

Shows the slow-motion view of Figure 3 for the translation use case:
every verifier finding, the humanized prompt COSYNTH generates for it,
punts to the human, and the final verified Juniper configuration.
"""

import sys

from repro import LoopLimits, ScriptedHuman, TranslationOrchestrator
from repro.core.leverage import PromptKind
from repro.llm import make_translation_model, translation_fault_catalog
from repro.sampleconfigs import BATFISH_EXAMPLE_CISCO, load_translation_source


def main(seed: int = 0) -> None:
    source = load_translation_source()
    print("Source Cisco configuration")
    print("-" * 72)
    print(BATFISH_EXAMPLE_CISCO)

    model = make_translation_model(seed=seed)
    human = ScriptedHuman(translation_fault_catalog())
    orchestrator = TranslationOrchestrator(
        source, model, human=human, limits=LoopLimits(attempts_per_finding=3)
    )
    result = orchestrator.run()

    print("Correction loop")
    print("-" * 72)
    for record in result.prompt_log.records:
        if record.kind is PromptKind.INITIAL:
            print(f"[task]      {record.text}")
        elif record.kind is PromptKind.AUTOMATED:
            print(f"[automated/{record.stage}] {record.text}")
        else:
            print(f"[HUMAN/{record.stage}]     {record.text}")
    print()
    print(result.prompt_log.summary())
    print(f"back edges (semantic fix broke syntax): "
          f"{result.transcript.back_edges()}")
    print()

    print("Final verified Juniper configuration")
    print("-" * 72)
    print(result.final_text)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
