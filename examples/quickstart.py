"""Quickstart: run both of the paper's experiments end to end.

Usage::

    python examples/quickstart.py [seed]

Runs the Cisco→Juniper translation loop (§3) and the no-transit
synthesis loop (§4) with the simulated GPT-4, and prints the headline
numbers: prompt counts, leverage, and verification status.
"""

import sys

from repro import run_no_transit_experiment, run_translation_experiment


def main(seed: int = 0) -> None:
    print("=" * 72)
    print("Use case 1: Cisco -> Juniper translation (paper §3)")
    print("=" * 72)
    translation = run_translation_experiment(seed=seed)
    print(translation.result.prompt_log.summary())
    print(f"verified: {translation.result.verified}")
    print()
    print("Errors encountered (Table 2):")
    for row in translation.table2_rows():
        print("  " + row.render())
    print()

    print("=" * 72)
    print("Use case 2: no-transit synthesis on a 7-router star (paper §4)")
    print("=" * 72)
    synthesis = run_no_transit_experiment(seed=seed)
    print(synthesis.result.prompt_log.summary())
    print(f"verified: {synthesis.result.verified}")
    print(f"global check: {synthesis.result.global_check.describe()}")
    print()
    print("Prompts per router:")
    for router, count in sorted(synthesis.result.prompt_log.by_router().items()):
        print(f"  {router}: {count}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
