"""Synthesize verified no-transit configs for a star network.

Usage::

    python examples/no_transit_synthesis.py [router_count] [seed]

Shows the §4 pipeline: the network generator's topology prose, the
modularizer's per-router prompts, the per-router correction loops, the
composed snapshot, and the final global BGP-simulation check.
"""

import sys

from repro import DEFAULT_IIP_IDS, ScriptedHuman, SynthesisOrchestrator
from repro.core import Modularizer
from repro.llm import make_synthesis_models, synthesis_fault_catalog
from repro.topology import generate_star_network


def main(router_count: int = 7, seed: int = 0) -> None:
    star = generate_star_network(router_count)
    print("Topology description (network generator output)")
    print("-" * 72)
    print(star.description)
    print()

    modularizer = Modularizer(star.topology)
    print("Modularizer prompt for the hub (R1)")
    print("-" * 72)
    print(modularizer.router_task_prompt("R1"))
    print()

    models = make_synthesis_models(
        star.topology, iip_ids=DEFAULT_IIP_IDS, seed=seed
    )
    human = ScriptedHuman(synthesis_fault_catalog(star.topology))
    orchestrator = SynthesisOrchestrator(
        star.topology, models, human=human, iip_ids=DEFAULT_IIP_IDS
    )
    result = orchestrator.run()

    print("Run summary")
    print("-" * 72)
    print(result.prompt_log.summary())
    print(f"verified: {result.verified}")
    print(f"global check: {result.global_check.describe()}")
    print()

    print("Final hub configuration (R1.cfg)")
    print("-" * 72)
    print(result.router_texts["R1"])


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(count, seed)
