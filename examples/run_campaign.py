"""Run a small scenario campaign across topology families.

Usage::

    python examples/run_campaign.py [workers]

Enumerates a (family × size × seed) grid, fans it out over a worker
pool while streaming results to a resumable JSONL journal, and prints
the per-scenario rows plus per-family aggregates — the programmatic
equivalent of::

    python -m repro campaign --families star,chain,ring,mesh \
        --sizes 4,6 --seeds 2 --workers 4 --journal campaign_journal.jsonl

Re-running after an interruption picks up where the journal left off
(``resume=True`` below), producing the same summary byte for byte.
"""

import sys

from repro.experiments.campaign import build_grid, run_campaign


def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    grid = build_grid(
        families=["star", "chain", "ring", "mesh", "dumbbell"],
        sizes=[4, 6],
        seeds=2,
    )
    print(f"{len(grid)} scenarios on {workers} worker(s)\n")
    summary = run_campaign(
        grid,
        workers=workers,
        journal_path="campaign_journal.jsonl",
        resume=True,
    )
    print(summary.render())
    path = summary.write_json("campaign_results.json")
    print(f"\nwrote {path}")
    return 1 if summary.errors else 0


if __name__ == "__main__":
    sys.exit(main())
