"""Use the verifier suite directly, without any LLM in the loop.

Usage::

    python examples/verify_standalone.py

The verifiers COSYNTH orchestrates are ordinary libraries.  This example
drives each one by hand on a small two-router network:

1. the Batfish-substitute session (parse warnings, policy search, BGP
   simulation);
2. the Campion differ on a config pair;
3. the Lightyear local-invariant checker.
"""

from repro.batfish import Session
from repro.campion import compare_configs
from repro.cisco import parse_cisco
from repro.juniper import translate_cisco_to_juniper
from repro.lightyear import no_transit_invariants, verify_invariants
from repro.netmodel import Action, Community
from repro.sampleconfigs import load_translation_source
from repro.symbolic import RouteConstraint
from repro.topology import generate_star_network
from repro.topology.reference import build_reference_configs

A_CFG = """\
hostname edge1
interface eth0
 ip address 1.0.0.1 255.255.255.0
router bgp 100
 network 10.1.0.0 mask 255.255.0.0
 neighbor 1.0.0.2 remote-as 200
 neighbor 1.0.0.2 route-map TO_PEER out
route-map TO_PEER permit 10
 set community 100:7 additive
"""

B_CFG = """\
hostname edge2
interface eth0
 ip address 1.0.0.2 255.255.255.0
router bgp 200
 network 10.2.0.0 mask 255.255.0.0
 neighbor 1.0.0.1 remote-as 100
"""


def batfish_demo() -> None:
    print("1. Batfish substitute")
    print("-" * 72)
    session = Session()
    session.init_snapshot_from_texts({"edge1.cfg": A_CFG, "edge2.cfg": B_CFG})
    print(f"parse warnings: {len(session.q.parse_warning())}")
    for row in session.q.bgp_session_compatibility():
        status = "established" if row.established else "incompatible"
        print(f"  session {row.node} -> {row.remote_ip}: {status}")
    print("  edge2's RIB:")
    for row in session.q.routes("edge2"):
        print(
            f"    {row['prefix']} via {row['learned_from']} "
            f"communities [{row['communities']}]"
        )
    witnesses = session.q.search_route_policies(
        "edge1",
        "TO_PEER",
        action="permit",
        input_constraints=RouteConstraint.any_route(),
        limit=1,
    )
    print(f"  TO_PEER permits e.g.: {witnesses[0].input_route.describe()}")
    print()


def campion_demo() -> None:
    print("2. Campion differ (Cisco original vs its Juniper translation)")
    print("-" * 72)
    source = load_translation_source()
    translated, _ = translate_cisco_to_juniper(load_translation_source())
    clean = compare_configs(source, translated)
    print(f"reference translation: {clean.summary()}")
    # Break the translation and diff again.
    translated.bgp.neighbors["2.3.4.5"].export_policy = None
    broken = compare_configs(source, translated)
    print(f"after dropping the export policy: {broken.summary()}")
    print(f"  first finding: {broken.first_finding().describe()}")
    print()


def lightyear_demo() -> None:
    print("3. Lightyear local invariants on the 7-router star")
    print("-" * 72)
    star = generate_star_network(7)
    configs = build_reference_configs(star.topology)
    invariants = no_transit_invariants(star.topology)
    print(f"{len(invariants)} local invariants derived; e.g.:")
    print(f"  {invariants[0].describe()}")
    violations = verify_invariants(configs, invariants)
    print(f"violations on the reference configs: {len(violations)}")
    # Break the hub's egress filter and re-check.
    egress = configs["R1"].route_maps["FILTER_COMM_OUT_R2"]
    egress.clauses = [c for c in egress.clauses if c.action is Action.PERMIT]
    violations = verify_invariants(configs, invariants)
    print(f"after breaking FILTER_COMM_OUT_R2: {len(violations)} violation(s)")
    print(f"  {violations[0].message}")


if __name__ == "__main__":
    batfish_demo()
    campion_demo()
    lightyear_demo()
