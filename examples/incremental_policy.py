"""Incremental policy addition — the paper's §6 open question, answered.

Usage::

    python examples/incremental_policy.py [seed]

"Can GPT-4 add a new policy incrementally without interfering with
existing verified policy?"  Starting from the verified no-transit star,
we ask the (simulated) model to add an AS-path depref on one egress.
The model's draft rewrites the egress filter map — silently destroying
the no-transit filtering.  With the old invariants re-verified, COSYNTH
catches the interference and repairs it; without re-verification the
broken config ships.
"""

import sys

from repro.experiments import run_incremental_policy_experiment


def main(seed: int = 0) -> None:
    print("With re-verification of the existing no-transit invariants:")
    print("-" * 72)
    result = run_incremental_policy_experiment(seed=seed)
    for finding in result.findings:
        print(f"  [{finding.category.value}] {finding.message}")
    print(result.render())
    print()

    print("Negative control — new invariant only, old ones not re-checked:")
    print("-" * 72)
    control = run_incremental_policy_experiment(
        seed=seed, recheck_old_invariants=False
    )
    for finding in control.findings:
        print(f"  [{finding.category.value}] {finding.message}")
    print(control.render())
    print()
    print(
        "Lesson: incremental synthesis is safe exactly when the verifier "
        "re-checks the previously verified local policies alongside the "
        "new one."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
