"""Sweep seeds and model quality to study leverage.

Usage::

    python examples/leverage_sweep.py [num_seeds]

Two sweeps:

* **seed sweep** — leverage variability of both use cases under the
  default (paper-calibrated) behaviour profile;
* **model quality sweep** — the paper's GPT-6 prediction: "If a future
  LLM ... produces near-perfect configurations, leverage will decrease
  as there is less need for automatic correction."  We emulate better
  models by raising the fix probability and watch the automated prompt
  count (and thus leverage) fall.
"""

import statistics
import sys

from repro import run_no_transit_experiment, run_translation_experiment
from repro.llm import BehaviorProfile


def seed_sweep(num_seeds: int) -> None:
    print(f"Seed sweep over {num_seeds} seeds")
    print("-" * 72)
    rows = []
    for seed in range(num_seeds):
        translation = run_translation_experiment(seed=seed)
        synthesis = run_no_transit_experiment(seed=seed)
        rows.append((seed, translation, synthesis))
        print(
            f"seed={seed}: translation {translation.automated_prompts}a/"
            f"{translation.human_prompts}h = {translation.leverage:.1f}X | "
            f"synthesis {synthesis.automated_prompts}a/"
            f"{synthesis.human_prompts}h = {synthesis.leverage:.1f}X"
        )
    translation_leverages = [t.leverage for _, t, _ in rows]
    synthesis_leverages = [s.leverage for _, _, s in rows]
    print(
        f"mean leverage: translation "
        f"{statistics.mean(translation_leverages):.1f}X (paper ~10X), "
        f"synthesis {statistics.mean(synthesis_leverages):.1f}X (paper 6X)"
    )
    print()


def quality_sweep() -> None:
    print("Model quality sweep (the GPT-6 prediction)")
    print("-" * 72)
    profiles = [
        ("paper-calibrated", BehaviorProfile()),
        ("better", BehaviorProfile(fix=0.85, no_change=0.07,
                                   fix_with_new_error=0.05,
                                   fix_with_regression=0.03)),
        ("near-perfect", BehaviorProfile(fix=0.98, no_change=0.02,
                                         fix_with_new_error=0.0,
                                         fix_with_regression=0.0)),
    ]
    for label, profile in profiles:
        experiment = run_translation_experiment(seed=0, profile=profile)
        print(
            f"{label:<17} automated={experiment.automated_prompts:>3} "
            f"human={experiment.human_prompts} "
            f"leverage={experiment.leverage:.1f}X "
            f"verified={experiment.result.verified}"
        )
    print(
        "\nBetter models need fewer automated corrections; the human floor "
        "(the two unfixable error classes) stays, so leverage falls."
    )


if __name__ == "__main__":
    seed_sweep(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
    quality_sweep()
