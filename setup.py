"""Shim for legacy editable installs in offline environments without wheel."""
from setuptools import setup

setup()
