"""Reproducibility artifact: leverage distribution across seeds.

The paper reports single anecdotal runs; this bench quantifies the
variability of both headline numbers over a seed sweep, which is what a
reviewer would ask for next.
"""

import statistics

from conftest import run_and_print
from repro.experiments import (
    run_no_transit_experiment,
    run_translation_experiment,
)

SEEDS = range(5)


def _render() -> str:
    lines = ["Leverage distribution across seeds", "-" * 72]
    translation, synthesis = [], []
    for seed in SEEDS:
        t = run_translation_experiment(seed=seed)
        s = run_no_transit_experiment(seed=seed)
        translation.append(t.leverage)
        synthesis.append(s.leverage)
        lines.append(
            f"seed={seed}: translation {t.automated_prompts:>2}a/"
            f"{t.human_prompts}h = {t.leverage:>4.1f}X | synthesis "
            f"{s.automated_prompts:>2}a/{s.human_prompts}h = "
            f"{s.leverage:>4.1f}X"
        )
    lines.append(
        f"translation: mean {statistics.mean(translation):.1f}X "
        f"(paper ~10X); synthesis: mean {statistics.mean(synthesis):.1f}X "
        f"(paper 6X)"
    )
    return "\n".join(lines)


def test_seed_distribution(benchmark, capsys):
    text = run_and_print(benchmark, capsys, _render)
    assert "mean" in text
