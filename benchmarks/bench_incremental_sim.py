"""Full vs incremental BGP re-convergence across family × size.

For each grid cell: converge the family's reference network once, then
apply a rotation of single-router config edits (strip / restore one
border router's egress filter — the repair loop's canonical delta).
Each edit is re-converged twice, from scratch and incrementally, the
resulting RIBs are asserted identical, and the wall-clock plus
route-evaluation counts are compared.

Emits a ``BENCH_incremental_sim.json`` baseline at the repo root (the
perf trajectory's first data point).  Also runnable standalone for the
CI smoke job::

    python benchmarks/bench_incremental_sim.py --small --json out.json
"""

import argparse
import copy
import json
import sys
import time
from pathlib import Path

from repro.batfish.bgpsim import BgpSimulation, SimulationState, rib_snapshots
from repro.netmodel.routing_policy import Action, RouteMap, RouteMapClause
from repro.topology.families import generate_network
from repro.topology.reference import build_reference_configs

GRID = {
    "star": (6, 10, 14),
    "chain": (6, 10, 14),
    "ring": (6, 10, 14),
    "mesh": (6, 9, 12),
    "dumbbell": (6, 10, 14),
}

SMALL_GRID = {family: (4, 6) for family in GRID}

EDITS = 6  # single-router deltas per cell

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_incremental_sim.json"


def _policy_routers(configs):
    return [
        name
        for name in sorted(configs)
        if any(n.startswith("FILTER_COMM_OUT_") for n in configs[name].route_maps)
    ]


def _strip_filters(config):
    for name in list(config.route_maps):
        if name.startswith("FILTER_COMM_OUT_"):
            replacement = RouteMap(name)
            replacement.add_clause(RouteMapClause(seq=10, action=Action.PERMIT))
            config.route_maps[name] = replacement


def _edit_sequence(reference):
    """EDITS config snapshots, each one router away from the previous:
    strip a border router's egress filters, then restore it, rotating
    through the policy routers."""
    routers = _policy_routers(reference)
    sequence = []
    current = copy.deepcopy(reference)
    for step in range(EDITS):
        victim = routers[step % len(routers)]
        nxt = copy.deepcopy(current)
        if step % 2 == 0:
            _strip_filters(nxt[victim])
        else:
            nxt[victim] = copy.deepcopy(reference[victim])
        sequence.append((victim, nxt))
        current = nxt
    return sequence


def measure_cell(family, size):
    """One grid cell: returns a result row dict."""
    net = generate_network(family, size)
    reference = build_reference_configs(net.topology)
    sequence = _edit_sequence(reference)

    full_s = 0.0
    full_evals = 0
    full_ribs = []
    for _victim, configs in sequence:
        snapshot = copy.deepcopy(configs)
        started = time.perf_counter()
        simulation = BgpSimulation(snapshot)
        simulation.run()
        full_s += time.perf_counter() - started
        full_evals += simulation.evaluations
        full_ribs.append(rib_snapshots(simulation))

    state = SimulationState(copy.deepcopy(reference))
    incremental_s = 0.0
    incremental_evals = 0
    identical = True
    for index, (victim, configs) in enumerate(sequence):
        snapshot = copy.deepcopy(configs)
        started = time.perf_counter()
        stats = state.resimulate(snapshot, {victim})
        incremental_s += time.perf_counter() - started
        incremental_evals += stats.evaluations
        assert stats.incremental, f"{family}-{size} fell back to full"
        if rib_snapshots(state.simulation) != full_ribs[index]:
            identical = False
    assert identical, f"{family}-{size}: incremental diverged from full"

    return {
        "family": family,
        "size": size,
        "edits": EDITS,
        "sessions": len(state.simulation.sessions),
        "full_ms": round(1000 * full_s, 3),
        "incremental_ms": round(1000 * incremental_s, 3),
        "speedup": round(full_s / max(incremental_s, 1e-9), 2),
        "full_evals": full_evals,
        "incremental_evals": incremental_evals,
        "eval_ratio": round(full_evals / max(incremental_evals, 1), 2),
        "identical": identical,
    }


def run_grid(grid):
    rows = [
        measure_cell(family, size)
        for family in sorted(grid)
        for size in grid[family]
    ]
    largest_mesh = max(
        (row for row in rows if row["family"] == "mesh"),
        key=lambda row: row["size"],
    )
    return {
        "benchmark": "incremental_sim",
        "edits_per_cell": EDITS,
        "largest_mesh_speedup": largest_mesh["speedup"],
        "rows": rows,
    }


def render(report):
    lines = [
        "incremental re-simulation vs full convergence "
        f"({report['edits_per_cell']} single-router edits per cell)",
        f"{'family':>9} {'n':>3} {'full':>9} {'incr':>9} "
        f"{'speedup':>8} {'evals':>13}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['family']:>9} {row['size']:>3} "
            f"{row['full_ms']:>7.1f}ms {row['incremental_ms']:>7.1f}ms "
            f"{row['speedup']:>7.2f}x "
            f"{row['full_evals']:>6}/{row['incremental_evals']:<6}"
        )
    lines.append(
        f"largest mesh speedup: {report['largest_mesh_speedup']:.2f}x"
    )
    return "\n".join(lines)


def _write_baseline(report, path):
    target = Path(path)
    target.write_text(json.dumps(report, indent=2) + "\n")
    return target


def _bench(grid=GRID, json_path=BASELINE_PATH):
    report = run_grid(grid)
    _write_baseline(report, json_path)
    return render(report)


def test_incremental_sim_speedup(benchmark, capsys):
    from conftest import run_and_print

    text = run_and_print(benchmark, capsys, _bench)
    report = json.loads(BASELINE_PATH.read_text())
    assert all(row["identical"] for row in report["rows"])
    # The acceptance bar: ≥2x wall-clock for single-router deltas on
    # the largest mesh (measured ~5-10x; 2x absorbs CI noise).
    assert report["largest_mesh_speedup"] >= 2.0, report["largest_mesh_speedup"]
    assert "speedup" in text


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true",
        help="small grid for CI smoke runs",
    )
    parser.add_argument(
        "--json", default=str(BASELINE_PATH),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    grid = SMALL_GRID if args.small else GRID
    report = run_grid(grid)
    print(render(report))
    path = _write_baseline(report, args.json)
    print(f"wrote {path}")
    if not args.small and report["largest_mesh_speedup"] < 2.0:
        print("FAIL: largest-mesh speedup below 2x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
