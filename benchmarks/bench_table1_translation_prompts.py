"""Table 1: sample rectification prompts for translation.

Runs the full §3 VPP loop and harvests the humanizer's first generated
prompt for each of the four error classes (syntax, structural mismatch,
attribute difference, policy behaviour difference).
"""

from conftest import run_and_print
from repro.experiments.tables import render_table1


def test_table1_translation_prompts(benchmark, capsys):
    text = run_and_print(benchmark, capsys, render_table1, seed=0)
    assert "There is a syntax error" in text
    assert "no corresponding" in text
    assert "cost set to" in text
