"""Micro-benchmarks of the substrate layers.

Not a paper artifact — these measure the building blocks (parsers,
symbolic engine, BGP simulator) so performance regressions in the
substrates are visible independently of the experiment loops.
"""

from repro.batfish import BgpSimulation
from repro.campion import compare_configs
from repro.cisco import generate_cisco, parse_cisco
from repro.juniper import generate_juniper, parse_juniper, translate_cisco_to_juniper
from repro.netmodel import Action, Community
from repro.sampleconfigs import BATFISH_EXAMPLE_CISCO, load_translation_source
from repro.symbolic import RouteConstraint, search_route_policies
from repro.topology import generate_star_network
from repro.topology.reference import build_reference_configs


def test_parse_cisco_config(benchmark):
    result = benchmark(parse_cisco, BATFISH_EXAMPLE_CISCO)
    assert not result.warnings


def test_parse_juniper_config(benchmark):
    source = load_translation_source()
    juniper, _ = translate_cisco_to_juniper(source)
    text = generate_juniper(juniper)
    result = benchmark(parse_juniper, text)
    assert not result.warnings


def test_translate_and_render(benchmark):
    source = load_translation_source()

    def run():
        juniper, _ = translate_cisco_to_juniper(source)
        return generate_juniper(juniper)

    assert "policy-statement" in benchmark(run)


def test_campion_compare_clean_pair(benchmark):
    source = load_translation_source()
    juniper, _ = translate_cisco_to_juniper(load_translation_source())
    report = benchmark(
        compare_configs, source, juniper, False
    )
    assert report.clean


def test_search_route_policies(benchmark, star7_configs=None):
    star = generate_star_network(7)
    configs = build_reference_configs(star.topology)
    hub = configs["R1"]
    constraint = RouteConstraint.with_community(Community(101, 1))
    results = benchmark(
        search_route_policies,
        hub,
        "FILTER_COMM_OUT_R2",
        Action.PERMIT,
        constraint,
    )
    assert results == []


def test_bgp_simulation_star7(benchmark):
    star = generate_star_network(7)
    references = build_reference_configs(star.topology)
    texts = {name: generate_cisco(cfg) for name, cfg in references.items()}

    def run():
        configs = {
            name: parse_cisco(text, filename=name).config
            for name, text in texts.items()
        }
        simulation = BgpSimulation(configs)
        simulation.run()
        return simulation

    simulation = benchmark(run)
    assert simulation.iterations >= 2
