"""Figure 3 as data: the COSYNTH pipeline trace.

The architecture figure's claims are dynamic: syntax is verified before
semantics, and a semantic fix can re-enter the syntax stage (the
back-edge).  This bench runs the translation loop and prints the visited
verifier-stage sequence plus the back-edge count.
"""

from conftest import run_and_print
from repro.experiments import run_translation_experiment


def _render_trace(seed: int = 0) -> str:
    experiment = run_translation_experiment(seed=seed)
    transcript = experiment.result.transcript
    sequence = transcript.stage_sequence()
    lines = [
        "Figure 3: COSYNTH pipeline trace (translation use case)",
        "-" * 72,
        "stage sequence: " + " -> ".join(sequence),
        f"back edges (later stage returned to earlier): "
        f"{transcript.back_edges()}",
        f"punts to human: {transcript.punts()}",
        f"verified: {experiment.result.verified}",
    ]
    return "\n".join(lines)


def test_fig3_pipeline_trace(benchmark, capsys):
    text = run_and_print(benchmark, capsys, _render_trace, seed=0)
    assert "stage sequence: syntax" in text
    assert "verified: True" in text
