"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table or figure) and prints
it, so the ``--benchmark-only`` output can be read against the paper.
Experiment benches run a full VPP loop per round; they use a small fixed
round count to keep the harness fast.
"""


EXPERIMENT_ROUNDS = 3


def run_and_print(benchmark, capsys, producer, *args, **kwargs):
    """Benchmark ``producer`` and print its (string) result."""
    text = benchmark.pedantic(
        producer, args=args, kwargs=kwargs, rounds=EXPERIMENT_ROUNDS, iterations=1
    )
    with capsys.disabled():
        print("\n" + text + "\n")
    return text
