"""Route datapath A/B: v1 (per-attribute copies) vs v2 (transactional
builder + interned attributes).

For each mesh size the bench full-converges the border-policy mesh —
the workload whose route-attribute copying dominated the profile
(~45% of a large-mesh converge under v1) — alternating
``set_route_model("v1")`` / ``("v2")`` and keeping each model's best of
``rounds``.  Every cell asserts identical RIB snapshots and identical
evaluation counts before reporting a speedup, and a roled multi-homed
waxman cell extends the equivalence check to role-assigned graphs.

Emits a JSON report; runnable standalone for the CI smoke job::

    python benchmarks/bench_route_model.py --small --json out.json --check

The committed ``BENCH_route_model.json`` at the repo root records the
full run.  ``--check`` turns the acceptance gates into the exit code:
the largest-mesh speedup must stay >=1.5x and every row must report
``routes_reused > 0`` (a zero means the per-session candidate reuse
path stopped counting — the exact regression this gate exists to catch).
"""

import argparse
import copy
import json
import sys
import time
from pathlib import Path

from repro.batfish.bgpsim import BgpSimulation, rib_snapshots
from repro.netmodel.route import (
    reset_route_stats,
    route_totals,
    set_route_model,
)
from repro.topology.families import generate_network
from repro.topology.reference import build_reference_configs

MESH_SIZES = (10, 14, 18)
SMALL_MESH_SIZES = (8,)
ROLED_CELL = ("waxman", 10, "c2i2h2")
SMALL_ROLED_CELL = ("waxman", 8, "c2i2h2")
ROUNDS = 3


def _converge(configs):
    simulation = BgpSimulation(copy.deepcopy(configs))
    started = time.perf_counter()
    simulation.run()
    return simulation, time.perf_counter() - started


def measure_ab(configs, label, rounds=ROUNDS):
    """Best-of-``rounds`` v1-vs-v2 timing on one set of configs.

    Alternates the two models round by round (the usual best-of timing
    discipline — the minimum is the least noisy estimator) and asserts
    the equivalence contract on the final pair of simulations.
    """
    best = {"v1": float("inf"), "v2": float("inf")}
    sims = {}
    stats = {}
    try:
        for _round in range(rounds):
            for model in ("v1", "v2"):
                set_route_model(model)
                reset_route_stats()  # per-model: a run's counts are deterministic
                simulation, elapsed = _converge(configs)
                best[model] = min(best[model], elapsed)
                sims[model] = simulation
                stats[model] = route_totals()
    finally:
        set_route_model("v2")
    assert rib_snapshots(sims["v1"]) == rib_snapshots(sims["v2"]), (
        f"{label}: v1 and v2 converged to different RIBs"
    )
    assert sims["v1"].evaluations == sims["v2"].evaluations, (
        f"{label}: v1 and v2 disagree on evaluation counts"
    )
    return {
        "label": label,
        "evaluations": sims["v2"].evaluations,
        "v1_s": round(best["v1"], 4),
        "v2_s": round(best["v2"], 4),
        "speedup": round(best["v1"] / best["v2"], 2) if best["v2"] else None,
        "v1_routes_built": stats["v1"]["routes_built"],
        "routes_built": stats["v2"]["routes_built"],
        "routes_reused": stats["v2"]["routes_reused"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true",
        help="one small mesh + small roled cell (CI smoke)",
    )
    parser.add_argument("--json", default=None, help="write the report here")
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit 1 unless largest_mesh_speedup >= 1.5 and every row "
            "has routes_reused > 0 (the CI gate)"
        ),
    )
    args = parser.parse_args(argv)

    mesh_sizes = SMALL_MESH_SIZES if args.small else MESH_SIZES
    roled = SMALL_ROLED_CELL if args.small else ROLED_CELL

    rows = []
    for size in mesh_sizes:
        configs = build_reference_configs(generate_network("mesh", size).topology)
        row = measure_ab(configs, f"mesh-{size}")
        row["mesh_size"] = size
        rows.append(row)
        print(
            f"mesh-{size}: v1 {row['v1_s']:.3f}s -> v2 {row['v2_s']:.3f}s "
            f"({row['speedup']}x, {row['evaluations']} evaluations, "
            f"identical RIBs; v2 builds {row['routes_built']} routes vs "
            f"v1 {row['v1_routes_built']}, {row['routes_reused']} reused)"
        )

    family, size, roles = roled
    configs = build_reference_configs(
        generate_network(family, size, seed=1, roles=roles).topology
    )
    roled_row = measure_ab(configs, f"{family}-{size}-{roles}")
    print(
        f"{roled_row['label']}: v1 {roled_row['v1_s']:.3f}s -> "
        f"v2 {roled_row['v2_s']:.3f}s ({roled_row['speedup']}x, "
        f"identical RIBs on the multi-homed roled graph)"
    )

    largest = rows[-1]
    report = {
        "meshes": rows,
        "roled": roled_row,
        "largest_mesh_speedup": largest["speedup"],
    }
    print(
        f"\nlargest mesh (mesh-{largest['mesh_size']}): "
        f"{largest['speedup']}x (target >=1.5x on the full run)"
    )
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.check:
        failures = []
        if largest["speedup"] is None or largest["speedup"] < 1.5:
            failures.append(
                f"largest_mesh_speedup {largest['speedup']} < 1.5"
            )
        for row in rows + [roled_row]:
            if not row["routes_reused"]:
                failures.append(f"{row['label']}: routes_reused == 0")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("checks passed: speedup >= 1.5x, routes_reused > 0 everywhere")
    return 0


if __name__ == "__main__":
    sys.exit(main())
