"""Random/Waxman families: generation + pipeline timing, and the
batched-advertise A/B.

Two sections:

* **families** — for a grid of (family, size, seed, roles) cells,
  generate the seeded network (asserting byte-determinism against a
  second generation), build its reference configs, and run the full
  verification pipeline (local invariants → composition → global check
  with per-role verdicts), timing each stage.

* **batch** — the satellite perf change: full-converge a large mesh
  (the worst case the per-entry ``evaluate`` calls used to dominate)
  with batched route-map evaluation off and on, assert identical RIBs
  and evaluation counts, and report the before/after wall clock.

Emits a JSON report; runnable standalone for the CI smoke job::

    python benchmarks/bench_random_families.py --small --json out.json
"""

import argparse
import copy
import json
import sys
import time
from pathlib import Path

from repro.batfish.bgpsim import (
    BgpSimulation,
    rib_snapshots,
    set_batched_evaluation,
)
from repro.lightyear import (
    check_composition,
    check_global_no_transit,
    no_transit_invariants,
    verify_invariants,
)
from repro.lightyear.compose import reset_simulation_states
from repro.symbolic.memo import reset_caches
from repro.topology.families import generate_network
from repro.topology.reference import build_reference_configs

GRID = [
    ("random", 10, "c2i3h2", "p=0.35"),
    ("random", 14, "c2i3h2", "p=0.35"),
    ("random", 18, "c3i4h2p1", "p=0.25"),
    ("waxman", 10, "c2i3h2", "default"),
    ("waxman", 14, "c2i3h2", "default"),
    ("waxman", 18, "c3i4h2p1", "alpha=0.6,beta=0.7"),
]

SMALL_GRID = [
    ("random", 7, "c2i2h1", "p=0.45"),
    ("waxman", 7, "c2i2h1", "default"),
]

SEEDS = 3
BATCH_MESH_SIZE = 16
SMALL_BATCH_MESH_SIZE = 8


def measure_cell(family, size, roles, topo, seed):
    """One roled scenario through the offline pipeline, timed per stage."""
    t0 = time.perf_counter()
    network = generate_network(family, size, seed=seed, roles=roles, params=topo)
    again = generate_network(family, size, seed=seed, roles=roles, params=topo)
    assert network.topology.to_json() == again.topology.to_json(), (
        f"{family}-{size} seed {seed} is not byte-deterministic"
    )
    t_generate = time.perf_counter() - t0

    topology = network.topology
    t0 = time.perf_counter()
    configs = build_reference_configs(topology)
    t_reference = time.perf_counter() - t0

    t0 = time.perf_counter()
    invariants = no_transit_invariants(topology)
    violations = verify_invariants(configs, invariants)
    assert not violations, [v.message for v in violations]
    composition = check_composition(invariants, configs, topology)
    assert composition.holds, composition.describe()
    t_local = time.perf_counter() - t0

    t0 = time.perf_counter()
    check = check_global_no_transit(configs, topology)
    t_global = time.perf_counter() - t0
    assert check.holds, check.describe()
    assert check.role_verdicts and all(check.role_verdicts.values())

    return {
        "family": family,
        "size": size,
        "seed": seed,
        "roles": roles,
        "topo": topo,
        "links": len(topology.links),
        "role_count": len(check.role_verdicts),
        "invariants": len(invariants),
        "generate_s": round(t_generate, 6),
        "reference_s": round(t_reference, 6),
        "local_verify_s": round(t_local, 6),
        "global_check_s": round(t_global, 6),
    }


def measure_batch_ab(mesh_size, rounds=3):
    """Batched vs per-entry policy evaluation on a full mesh converge.

    Alternates the two modes and keeps each mode's best of ``rounds``
    (the usual best-of timing discipline — the minimum is the least
    noisy estimator of the true cost)."""
    configs = build_reference_configs(
        generate_network("mesh", mesh_size).topology
    )

    def converge():
        sim = BgpSimulation(copy.deepcopy(configs))
        started = time.perf_counter()
        sim.run()
        return sim, time.perf_counter() - started

    per_entry_s = batched_s = float("inf")
    per_entry_sim = batched_sim = None
    try:
        for _round in range(rounds):
            set_batched_evaluation(False)
            per_entry_sim, elapsed = converge()
            per_entry_s = min(per_entry_s, elapsed)
            set_batched_evaluation(True)
            batched_sim, elapsed = converge()
            batched_s = min(batched_s, elapsed)
    finally:
        set_batched_evaluation(True)
    assert rib_snapshots(per_entry_sim) == rib_snapshots(batched_sim)
    assert per_entry_sim.evaluations == batched_sim.evaluations
    return {
        "mesh_size": mesh_size,
        "evaluations": batched_sim.evaluations,
        "per_entry_s": round(per_entry_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(per_entry_s / batched_s, 2) if batched_s else None,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true",
        help="tiny grid + small mesh (CI smoke)",
    )
    parser.add_argument("--json", default=None, help="write the report here")
    args = parser.parse_args(argv)

    grid = SMALL_GRID if args.small else GRID
    seeds = 1 if args.small else SEEDS
    rows = []
    for family, size, roles, topo in grid:
        for seed in range(seeds):
            reset_caches()
            reset_simulation_states()
            row = measure_cell(family, size, roles, topo, seed)
            rows.append(row)
            print(
                f"{family:>7} n={size:<2} seed={seed} roles={roles:<10} "
                f"links={row['links']:>3} roles_ok={row['role_count']} "
                f"generate={row['generate_s'] * 1000:6.1f}ms "
                f"pipeline={(row['reference_s'] + row['local_verify_s'] + row['global_check_s']) * 1000:7.1f}ms"
            )

    mesh_size = SMALL_BATCH_MESH_SIZE if args.small else BATCH_MESH_SIZE
    batch = measure_batch_ab(mesh_size)
    print(
        f"\nbatched advertise A/B on mesh-{mesh_size}: "
        f"per-entry {batch['per_entry_s']:.3f}s -> batched "
        f"{batch['batched_s']:.3f}s ({batch['speedup']}x, "
        f"{batch['evaluations']} route evaluations, identical RIBs)"
    )

    report = {"families": rows, "batch_advertise": batch}
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
