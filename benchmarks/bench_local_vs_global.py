"""§4.1 local vs global specification prompts: the global-spec model
oscillates between its two plausible-but-wrong strategies; local
per-router specs converge."""

from conftest import run_and_print
from repro.experiments.tables import render_local_vs_global


def test_local_vs_global(benchmark, capsys):
    text = run_and_print(benchmark, capsys, render_local_vs_global, seed=0)
    assert "did NOT converge" in text
    assert "as-path-regex -> deny-at-customer" in text
