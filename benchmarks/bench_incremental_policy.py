"""Extension (paper §6): incremental policy addition.

"Can GPT-4 add a new policy incrementally without interfering with
existing verified policy?"  Measures the loop that adds an AS-path
depref on the hub while re-verifying the no-transit invariants, and the
negative control without re-verification.
"""

from conftest import run_and_print
from repro.experiments import run_incremental_policy_experiment


def _render(seed: int = 0) -> str:
    with_recheck = run_incremental_policy_experiment(seed=seed)
    control = run_incremental_policy_experiment(
        seed=seed, recheck_old_invariants=False
    )
    return "\n".join(
        [
            "Incremental policy addition (paper §6 question)",
            "-" * 72,
            "with re-verification:    " + with_recheck.render(),
            "without re-verification: " + control.render(),
        ]
    )


def test_incremental_policy(benchmark, capsys):
    text = run_and_print(benchmark, capsys, _render, seed=0)
    assert "caught and repaired" in text
    assert "NOT caught" in text
