"""Figure 1 vs Figure 2 as an ablation: the same faulty drafts corrected
under pair programming (all prompts human) vs VPP (verifier-automated)."""

from conftest import run_and_print
from repro.experiments.tables import render_vpp_ablation


def test_fig2_vpp_ablation(benchmark, capsys):
    text = run_and_print(benchmark, capsys, render_vpp_ablation, seed=0)
    assert "pair programming" in text
    assert "reduction" in text
