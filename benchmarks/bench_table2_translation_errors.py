"""Table 2: translation errors found and whether the generated prompt
sufficed (the two 'No' rows need a human, exactly as in the paper)."""

from conftest import run_and_print
from repro.experiments.tables import render_table2


def test_table2_translation_errors(benchmark, capsys):
    text = run_and_print(benchmark, capsys, render_table2, seed=0)
    assert "Different prefix lengths match in BGP" in text
    assert "Different redistribution into BGP" in text
    assert text.count("No") >= 2
