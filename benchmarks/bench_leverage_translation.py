"""§3.2 leverage: automated vs human prompts for Cisco→Juniper
translation (paper: ~20 automated / 2 human → 10X)."""

from conftest import run_and_print
from repro.experiments.tables import render_leverage_translation


def test_leverage_translation(benchmark, capsys):
    text = run_and_print(benchmark, capsys, render_leverage_translation, seed=0)
    assert "verified=True" in text
