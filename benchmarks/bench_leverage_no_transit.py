"""§4.2 leverage: automated vs human prompts for no-transit synthesis on
the 7-router star (paper: 12 automated / 2 human → 6X)."""

from conftest import run_and_print
from repro.experiments.tables import render_leverage_no_transit


def test_leverage_no_transit(benchmark, capsys):
    text = run_and_print(benchmark, capsys, render_leverage_no_transit, seed=0)
    assert "verified=True" in text
