"""Figure 4: the star network used for local synthesis, regenerated from
the network generator (text + JSON outputs)."""

from conftest import run_and_print
from repro.experiments.tables import render_figure4


def test_fig4_star_topology(benchmark, capsys):
    text = run_and_print(benchmark, capsys, render_figure4, router_count=7)
    assert "CUSTOMER" in text
    assert "routers: 7" in text
