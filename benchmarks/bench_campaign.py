"""Scenario-campaign engine: parallel speedup over serial execution.

Runs the same deterministic scenario grid serially and on a 4-worker
process pool and reports the wall-clock ratio.  The speedup tracks the
machine's core count — on a single-core box the two runs tie (pool
overhead aside); the row-level results are identical either way.
"""

from conftest import run_and_print
from repro.experiments.campaign import build_grid, run_campaign

WORKERS = 4


def _row_key(row):
    return (
        row.family, row.size, row.seed, row.profile, row.iips,
        row.automated_prompts, row.human_prompts, row.verified,
    )


def _campaign_speedup() -> str:
    grid = build_grid(
        ["star", "chain", "ring", "mesh"], [6, 8], seeds=2
    )
    serial = run_campaign(grid, workers=1)
    parallel = run_campaign(grid, workers=WORKERS)
    assert [_row_key(row) for row in serial.rows] == [
        _row_key(row) for row in parallel.rows
    ], "parallel campaign diverged from serial"
    speedup = serial.duration_s / max(parallel.duration_s, 1e-9)
    lines = [
        f"campaign speedup ({len(grid)} scenarios)",
        f"  serial   ( 1 worker ): {serial.duration_s:6.2f}s",
        f"  parallel ({WORKERS:2} workers): {parallel.duration_s:6.2f}s",
        f"  speedup: {speedup:.2f}x",
    ]
    for summary in serial.by_family():
        lines.append("  " + summary.render())
    return "\n".join(lines)


def test_campaign_parallel_speedup(benchmark, capsys):
    text = run_and_print(benchmark, capsys, _campaign_speedup)
    assert "speedup:" in text
    assert "verified (100.0%)" in text
