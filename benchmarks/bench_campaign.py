"""Scenario-campaign engine: parallel speedup and symbolic-cache gains.

Two comparisons on the same deterministic scenario grids:

* serial vs a 4-worker process pool (wall-clock ratio tracks the core
  count; row-level results are identical either way);
* `CandidateUniverse`/verdict memoization off vs on over a mesh grid —
  the ROADMAP's dominant cost — reporting the cache hit rate alongside
  the speedup.
"""

from conftest import run_and_print
from repro.experiments.campaign import build_grid, run_campaign
from repro.symbolic import reset_caches, set_memoization

WORKERS = 4


def _row_key(row):
    return (
        row.family, row.size, row.seed, row.profile, row.iips,
        row.automated_prompts, row.human_prompts, row.verified,
    )


def _campaign_speedup() -> str:
    grid = build_grid(
        ["star", "chain", "ring", "mesh"], [6, 8], seeds=2
    )
    serial = run_campaign(grid, workers=1)
    parallel = run_campaign(grid, workers=WORKERS)
    assert [_row_key(row) for row in serial.rows] == [
        _row_key(row) for row in parallel.rows
    ], "parallel campaign diverged from serial"
    speedup = serial.duration_s / max(parallel.duration_s, 1e-9)
    lines = [
        f"campaign speedup ({len(grid)} scenarios)",
        f"  serial   ( 1 worker ): {serial.duration_s:6.2f}s",
        f"  parallel ({WORKERS:2} workers): {parallel.duration_s:6.2f}s",
        f"  speedup: {speedup:.2f}x",
    ]
    for summary in serial.by_family():
        lines.append("  " + summary.render())
    lines.append("")
    lines.append(_memoization_speedup())
    return "\n".join(lines)


def _memoization_speedup() -> str:
    """Mesh grid with the symbolic caches disabled vs enabled."""
    grid = build_grid(["mesh"], [6, 8], seeds=2)
    reset_caches()
    set_memoization(False)
    try:
        cold = run_campaign(grid, workers=1)
    finally:
        set_memoization(True)
    reset_caches()
    warm = run_campaign(grid, workers=1)
    assert [_row_key(row) for row in cold.rows] == [
        _row_key(row) for row in warm.rows
    ], "memoized campaign diverged from unmemoized"
    speedup = cold.duration_s / max(warm.duration_s, 1e-9)
    rate = warm.cache_hit_rate
    return "\n".join(
        [
            f"universe memoization (mesh grid, {len(grid)} scenarios)",
            f"  memoization off: {cold.duration_s:6.2f}s",
            f"  memoization on : {warm.duration_s:6.2f}s",
            f"  speedup: {speedup:.2f}x  cache: {warm.cache_hits} hits / "
            f"{warm.cache_misses} misses "
            f"({100 * (rate or 0):.1f}% hit rate)",
        ]
    )


def test_campaign_parallel_speedup(benchmark, capsys):
    text = run_and_print(benchmark, capsys, _campaign_speedup)
    assert "speedup:" in text
    assert "verified (100.0%)" in text
    assert "hit rate" in text
