"""Table 3: sample rectification prompts for local synthesis (syntax /
topology / semantic), with verifier-supplied fields spliced in."""

from conftest import run_and_print
from repro.experiments.tables import render_table3


def test_table3_synthesis_prompts(benchmark, capsys):
    text = run_and_print(benchmark, capsys, render_table3, seed=0)
    assert "[topology]" in text
    assert "[semantic]" in text
