"""§4.2's IIP before/after: the four Initial Instruction Prompts prevent
the common draft errors, shrinking the syntax-correction load."""

from conftest import run_and_print
from repro.experiments import run_iip_ablation


def _render(seed: int = 0) -> str:
    return run_iip_ablation(seed=seed).render()


def test_iip_ablation(benchmark, capsys):
    text = run_and_print(benchmark, capsys, _render, seed=0)
    assert "draft error(s) prevented" in text
    assert "both verified: True" in text
