"""Extension: leverage vs star size (the paper's 'further testing in
more complex use cases' direction)."""

from conftest import run_and_print
from repro.experiments.tables import render_scaling


def test_scaling_star_size(benchmark, capsys):
    text = run_and_print(benchmark, capsys, render_scaling, seed=0)
    assert "n= 4" in text
    assert "n=10" in text
