"""Command-line interface: ``python -m repro <command>``.

Commands::

    tables        regenerate every paper table/figure and print them
    translate     run the §3 translation loop and print the summary
    synthesize    run the §4 no-transit loop and print the summary
    incremental   run the §6 incremental-policy extension
    sweep         leverage statistics across seeds
    campaign      parallel scenario campaign over family × size × seed
    serve         long-running campaign service (persistent workers + HTTP)
    submit        submit a grid to a running service
    status        live per-shard progress of a service campaign
    result        merged summary of a service campaign (works mid-run)
    fuzz          differential fuzzing of the optimization-toggle matrix
    lint          simulator-grounded static analysis of routing policy

All commands accept ``--seed`` (default 0); ``synthesize`` also accepts
``--routers`` (default 7), ``--family`` (default star), ``--no-iips``,
and — for the seeded random/waxman families — ``--roles`` (a role spec
such as ``c2i3h2``), ``--topo`` (family knobs such as ``p=0.4`` or
``alpha=0.5,beta=0.7``), ``--topo-seed``, and ``--place`` (``seeded``
or ``degree`` role placement).  ``campaign`` takes comma-separated
``--families`` and ``--sizes``, a ``--seeds`` count, a ``--workers``
pool size, repeatable ``--roles``/``--topo``/``--place`` axes for
seeded families, and writes a JSON summary (``--json``, default
``campaign_results.json``) plus an optional ``--csv``.  Results stream
to a JSONL journal (``--journal``, default ``campaign_journal.jsonl``;
``-`` disables) as each scenario completes; ``--resume <journal>``
skips scenarios the journal already holds, and ``--limit N`` stops
after N scenarios (a deterministic interrupt for smoke tests).
``--report <journal>`` renders the summary (and ``--json``/``--csv``
artifacts) from an existing journal without running anything — repeat
the flag to merge several campaigns into one cross-campaign summary
(duplicate scenario keys resolved last-flag-wins); a ``--report``
argument may also be a campaign-service directory, which expands to
its manifest plus shard journals; ``--timeout SECONDS`` aborts a
parallel run (resumably) when no scenario completes for that long;
``--no-incremental-sim`` disables warm incremental BGP re-simulation,
``--route-model v1`` restores the historical per-attribute route
copies, ``--no-decision-cache`` disables cached best-path decision
tuples, and ``--ship config`` pickles parent-materialized networks to
workers instead of shipping coordinates — all for A/B comparisons.
``--trace out.json`` (``campaign`` and ``synthesize``) writes a
Chrome trace-event file of every phase span (open in Perfetto or
``chrome://tracing``); ``--profile`` appends a phase/slowest-scenario/
cache-hit-rate breakdown to the campaign summary (works with
``--report`` too).  ``status`` with no campaign id prints service
health (uptime, version, per-worker metric summaries); ``status
--json`` emits the raw JSON and ``status --metrics`` the service's
Prometheus ``/metrics`` text.
``fuzz`` generates seeded random scenarios (``--fuzz-seed``,
``--iterations`` or a wall-clock ``--budget 300s``), runs each under
every toggle combination (or a ``--pairs`` covering subset), asserts
RIB/verdict/witness/memo equality against the all-legacy baseline,
shrinks any divergence to a minimal repro under ``--corpus``
(default ``tests/fuzz_corpus``), and journals progress for
``--resume``; ``fuzz --replay`` re-checks every corpus file.
``lint`` builds the reference configs for one topology cell
(``--family``/``--routers`` plus the seeded-family knobs), runs every
static-analysis rule over them, and exits 1 on any HIGH finding;
``--fault KEY`` first injects the named catalog fault at its designated
router (the lint should then fire), ``--json`` emits the structured
report, ``--out`` additionally writes it to a file, and ``--validate``
runs the full precision/recall harness over all nine canonical cells
and exits by its gate (zero clean HIGH findings, 100% catalog recall).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["build_parser", "main"]

DEFAULT_JOURNAL = "campaign_journal.jsonl"
DEFAULT_FUZZ_JOURNAL = "fuzz_journal.jsonl"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COSYNTH: Verified Prompt Programming reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tables = subparsers.add_parser("tables", help="print every paper artifact")
    tables.add_argument("--seed", type=int, default=0)

    translate = subparsers.add_parser("translate", help="run the translation loop")
    translate.add_argument("--seed", type=int, default=0)
    translate.add_argument(
        "--show-config", action="store_true", help="print the final Junos config"
    )

    synthesize = subparsers.add_parser("synthesize", help="run no-transit synthesis")
    synthesize.add_argument("--seed", type=int, default=0)
    synthesize.add_argument("--routers", type=int, default=7)
    synthesize.add_argument(
        "--family",
        default="star",
        help="topology family: star, chain, ring, mesh, dumbbell, random, waxman",
    )
    synthesize.add_argument(
        "--no-iips", action="store_true", help="disable the IIP database"
    )
    synthesize.add_argument(
        "--roles",
        default="default",
        help=(
            "role spec for the seeded families, e.g. c2i3h2 "
            "(2 customers, 3 ISPs with 2 homes each) or c1i2h1p1 "
            "(+1 transit-forbidden peer)"
        ),
    )
    synthesize.add_argument(
        "--topo",
        default="default",
        help=(
            "topology knobs for the seeded families, e.g. p=0.4 (random) "
            "or alpha=0.5,beta=0.7 (waxman)"
        ),
    )
    synthesize.add_argument(
        "--topo-seed",
        type=int,
        default=0,
        help="graph seed for the seeded families (random, waxman)",
    )
    synthesize.add_argument(
        "--place",
        default="default",
        help=(
            "role-placement strategy for the seeded families: seeded "
            "(default) or degree (customers pinned to the lowest-degree "
            "routers)"
        ),
    )
    synthesize.add_argument(
        "--trace",
        default=None,
        metavar="TRACE",
        help="write a Chrome trace-event JSON of the phase spans",
    )

    incremental = subparsers.add_parser(
        "incremental", help="incremental policy addition (paper §6)"
    )
    incremental.add_argument("--seed", type=int, default=0)
    incremental.add_argument(
        "--no-recheck",
        action="store_true",
        help="skip re-verifying the old invariants (negative control)",
    )

    sweep = subparsers.add_parser("sweep", help="leverage across seeds")
    sweep.add_argument("--seeds", type=int, default=5)

    campaign = subparsers.add_parser(
        "campaign", help="parallel scenario campaign over a grid"
    )
    campaign.add_argument(
        "--families",
        default="star,chain,ring,mesh",
        help="comma-separated topology families",
    )
    campaign.add_argument(
        "--sizes", default="4,6,8", help="comma-separated router counts"
    )
    campaign.add_argument(
        "--seeds", type=int, default=2, help="seeds per (family, size)"
    )
    campaign.add_argument(
        "--profiles",
        default="default",
        help="comma-separated behavior profiles (default, always-fix, sloppy)",
    )
    campaign.add_argument(
        "--iip-ablation",
        action="store_true",
        help="run every scenario with and without the IIP database",
    )
    campaign.add_argument(
        "--roles",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "role-spec axis for seeded families (repeatable), e.g. "
            "--roles c2i2h2 --roles c1i3h1p1; default keeps each "
            "family's fixed layout"
        ),
    )
    campaign.add_argument(
        "--topo",
        action="append",
        default=None,
        metavar="KNOBS",
        help=(
            "topology-knob axis for seeded families (repeatable), e.g. "
            "--topo p=0.4 or --topo alpha=0.5,beta=0.7"
        ),
    )
    campaign.add_argument(
        "--place",
        action="append",
        default=None,
        metavar="STRATEGY",
        help=(
            "role-placement axis for seeded families (repeatable): "
            "seeded or degree (customers on the lowest-degree routers)"
        ),
    )
    campaign.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    campaign.add_argument(
        "--json",
        default="campaign_results.json",
        help="JSON summary path ('-' to skip writing)",
    )
    campaign.add_argument(
        "--csv", default=None, help="optional CSV results path"
    )
    campaign.add_argument(
        "--journal",
        default=None,
        help=(
            "JSONL journal streamed as scenarios complete "
            f"(default {DEFAULT_JOURNAL}; '-' to disable)"
        ),
    )
    campaign.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="resume from an existing journal, skipping completed scenarios",
    )
    campaign.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="run at most N pending scenarios, then stop (for smoke tests)",
    )
    campaign.add_argument(
        "--report",
        action="append",
        default=None,
        metavar="JOURNAL",
        help=(
            "render the summary from existing journal(s) without "
            "re-running anything (offline mode); repeat the flag to "
            "merge several campaigns into one cross-campaign summary "
            "(duplicate scenario keys: last flag wins)"
        ),
    )
    campaign.add_argument(
        "--no-incremental-sim",
        action="store_true",
        help="disable warm incremental BGP re-simulation (A/B comparisons)",
    )
    campaign.add_argument(
        "--route-model",
        choices=("v1", "v2"),
        default="v2",
        help=(
            "route-transformation datapath: v2 (default, transactional "
            "builder + interning) or v1 (historical per-attribute "
            "copies, for A/B comparisons)"
        ),
    )
    campaign.add_argument(
        "--ship",
        choices=("coords", "config"),
        default="coords",
        help=(
            "campaign worker payload: coords (default, ship scenario "
            "coordinates and regenerate networks in the worker) or "
            "config (pickle parent-materialized networks to workers, "
            "for A/B comparisons)"
        ),
    )
    campaign.add_argument(
        "--no-decision-cache",
        action="store_true",
        help=(
            "disable the cached best-path decision tuples and batched "
            "candidate comparison (A/B comparisons)"
        ),
    )
    campaign.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "parallel runs only: if no scenario completes for SECONDS, "
            "kill the pool and raise a resumable error instead of letting "
            "one hung worker stall the grid forever"
        ),
    )
    campaign.add_argument(
        "--trace",
        default=None,
        metavar="TRACE",
        help=(
            "write a Chrome trace-event JSON of every phase span "
            "(serial and parallel runs; open in Perfetto)"
        ),
    )
    campaign.add_argument(
        "--profile",
        action="store_true",
        help=(
            "append a phase breakdown, the slowest scenarios, and "
            "cache hit rates to the summary (also works with --report)"
        ),
    )
    campaign.add_argument(
        "--lint",
        action="store_true",
        help=(
            "run the static policy analyzer over every scenario's final "
            "synthesized drafts and record the finding counts in the "
            "journal (v7) and summary"
        ),
    )
    campaign.add_argument(
        "--quiet", action="store_true", help="print only the aggregates"
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the campaign service (persistent workers + HTTP API)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642, help="0 picks a free port"
    )
    serve.add_argument(
        "--state-dir",
        default="campaign-service",
        help="where campaign specs and sharded journals live",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="persistent worker processes"
    )
    serve.add_argument(
        "--retry-limit",
        type=int,
        default=2,
        help="resubmissions per work unit after a worker death",
    )
    serve.add_argument(
        "--stall-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help=(
            "kill and replace a worker silent for SECONDS with a unit in "
            "flight (0 disables hang detection; hard death is always "
            "detected)"
        ),
    )

    submit = subparsers.add_parser(
        "submit", help="submit a campaign grid to a running service"
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    submit.add_argument("--families", default="star,chain,ring,mesh")
    submit.add_argument("--sizes", default="4,6,8")
    submit.add_argument("--seeds", type=int, default=2)
    submit.add_argument("--profiles", default="default")
    submit.add_argument("--iip-ablation", action="store_true")
    submit.add_argument("--roles", action="append", default=None)
    submit.add_argument("--topo", action="append", default=None)
    submit.add_argument("--place", action="append", default=None)
    submit.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="scenarios per work unit (default: sized to the worker pool)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the campaign settles and exit by its outcome",
    )
    submit.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SECONDS"
    )
    submit.add_argument(
        "--quiet", action="store_true", help="print only the campaign id"
    )

    status = subparsers.add_parser(
        "status", help="show a service campaign's live progress"
    )
    status.add_argument("id", nargs="?", default=None,
                        help="campaign id (omit for service health + list)")
    status.add_argument("--url", default="http://127.0.0.1:8642")
    status.add_argument(
        "--wait", action="store_true", help="poll until done or failed"
    )
    status.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SECONDS"
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="emit the raw JSON instead of rendered text",
    )
    status.add_argument(
        "--metrics",
        action="store_true",
        help="print the service's Prometheus /metrics text and exit",
    )

    result = subparsers.add_parser(
        "result",
        help="fetch a service campaign's merged summary (works mid-run)",
    )
    result.add_argument("id", help="campaign id")
    result.add_argument("--url", default="http://127.0.0.1:8642")
    result.add_argument(
        "--json",
        default=None,
        help="write the summary JSON (byte-identical to the batch CLI's)",
    )
    result.add_argument(
        "--quiet", action="store_true", help="print only the one-line status"
    )

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing of the toggle matrix against the "
        "all-legacy baseline",
    )
    fuzz.add_argument(
        "--fuzz-seed",
        type=int,
        default=0,
        help="seed of the deterministic scenario sequence (default 0)",
    )
    fuzz.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="fuzz exactly N scenario indices (deterministic mode)",
    )
    fuzz.add_argument(
        "--budget",
        default=None,
        metavar="TIME",
        help=(
            "fuzz until the wall-clock budget is spent, e.g. 300s, 5m, "
            "or a plain number of seconds (the nightly mode)"
        ),
    )
    fuzz.add_argument(
        "--pairs",
        action="store_true",
        help=(
            "run the pairwise-covering subset of toggle combinations "
            "instead of all 32 (cheaper, still covers every factor pair)"
        ),
    )
    fuzz.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    fuzz.add_argument(
        "--corpus",
        default="tests/fuzz_corpus",
        help="directory where shrunk repros are written (and replayed from)",
    )
    fuzz.add_argument(
        "--journal",
        default=None,
        help=(
            "JSONL journal streamed as iterations complete "
            f"(default {DEFAULT_FUZZ_JOURNAL}; '-' to disable)"
        ),
    )
    fuzz.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="resume from an existing fuzz journal, re-running only "
        "missing indices",
    )
    fuzz.add_argument(
        "--replay",
        action="store_true",
        help="replay every checked-in corpus file and exit (no fuzzing)",
    )
    fuzz.add_argument(
        "--quiet", action="store_true", help="print only the final status"
    )
    # Hidden: re-enable a known planted bug (the harness self-test —
    # proves the loop finds, shrinks, and serializes a real regression).
    fuzz.add_argument(
        "--plant", action="append", default=None, help=argparse.SUPPRESS
    )

    lint = subparsers.add_parser(
        "lint",
        help="simulator-grounded static analysis of routing policy",
    )
    lint.add_argument(
        "--family",
        default="star",
        help="topology family: star, chain, ring, mesh, dumbbell, random, waxman",
    )
    lint.add_argument(
        "--routers", type=int, default=7, help="router count (default 7)"
    )
    lint.add_argument(
        "--topo-seed",
        type=int,
        default=0,
        help="graph seed for the seeded families (random, waxman)",
    )
    lint.add_argument(
        "--roles",
        default=None,
        metavar="SPEC",
        help="role spec for the seeded families, e.g. c2i2h2",
    )
    lint.add_argument(
        "--topo",
        default=None,
        metavar="KNOBS",
        help="topology knobs for the seeded families, e.g. p=0.4",
    )
    lint.add_argument(
        "--place",
        default=None,
        metavar="STRATEGY",
        help="role placement for the seeded families: seeded or degree",
    )
    lint.add_argument(
        "--fault",
        default=None,
        metavar="KEY",
        help=(
            "inject the named synthesis-fault-catalog fault at its "
            "designated router before linting (the analyzer should fire)"
        ),
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the structured JSON report instead of text",
    )
    lint.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="additionally write the JSON report to PATH",
    )
    lint.add_argument(
        "--validate",
        action="store_true",
        help=(
            "run the precision/recall harness over all nine canonical "
            "cells and exit by its gate (clean HIGH findings or sub-100%% "
            "recall fail); the single-cell flags above are rejected"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "tables": _cmd_tables,
        "translate": _cmd_translate,
        "synthesize": _cmd_synthesize,
        "incremental": _cmd_incremental,
        "sweep": _cmd_sweep,
        "campaign": _cmd_campaign,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "result": _cmd_result,
        "fuzz": _cmd_fuzz,
        "lint": _cmd_lint,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # stdout piped into e.g. `head`, which exited first; redirect
        # the dangling descriptor so the interpreter's shutdown flush
        # doesn't print a spurious traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .experiments.tables import (
        render_figure4,
        render_leverage_no_transit,
        render_leverage_translation,
        render_local_vs_global,
        render_scaling,
        render_table1,
        render_table2,
        render_table3,
        render_vpp_ablation,
    )

    for renderer in (
        render_table1,
        render_table2,
        render_leverage_translation,
        render_table3,
        render_leverage_no_transit,
        render_vpp_ablation,
        render_local_vs_global,
        render_scaling,
    ):
        print(renderer(seed=args.seed))
        print()
    print(render_figure4())
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    from .experiments import run_translation_experiment

    experiment = run_translation_experiment(seed=args.seed)
    print(experiment.result.prompt_log.summary())
    for row in experiment.table2_rows():
        print("  " + row.render())
    if args.show_config:
        print()
        print(experiment.result.final_text)
    return 0 if experiment.result.verified else 1


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from .core import DEFAULT_IIP_IDS
    from .experiments import run_no_transit_experiment
    from .obs import drain_events, set_tracing, write_trace

    if args.trace:
        set_tracing(True)
    try:
        experiment = run_no_transit_experiment(
            router_count=args.routers,
            seed=args.seed,
            iip_ids=() if args.no_iips else DEFAULT_IIP_IDS,
            family=args.family,
            roles=args.roles,
            topo=args.topo,
            topology_seed=args.topo_seed,
            place=args.place,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if args.trace:
            write_trace(args.trace, drain_events())
            set_tracing(False)
    if args.trace:
        print(f"wrote {args.trace}")
    print(experiment.result.prompt_log.summary())
    print(experiment.result.global_check.describe())
    if experiment.result.global_check.role_verdicts:
        print("roles: " + experiment.result.global_check.describe_roles())
    return 0 if experiment.result.verified else 1


def _cmd_incremental(args: argparse.Namespace) -> int:
    from .experiments import run_incremental_policy_experiment

    result = run_incremental_policy_experiment(
        seed=args.seed, recheck_old_invariants=not args.no_recheck
    )
    print(result.render())
    return 0 if result.verified else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    import statistics

    from .experiments import (
        run_no_transit_experiment,
        run_translation_experiment,
    )

    translation, synthesis = [], []
    for seed in range(args.seeds):
        translation.append(run_translation_experiment(seed=seed))
        synthesis.append(run_no_transit_experiment(seed=seed))
        print(
            f"seed={seed}: translation "
            f"{translation[-1].leverage:.1f}X, synthesis "
            f"{synthesis[-1].leverage:.1f}X"
        )
    print(
        f"mean: translation "
        f"{statistics.mean(t.leverage for t in translation):.1f}X "
        f"(paper ~10X), synthesis "
        f"{statistics.mean(s.leverage for s in synthesis):.1f}X (paper 6X)"
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .batfish.bgpsim import set_decision_cache, set_incremental_simulation
    from .netmodel.route import set_route_model
    from .experiments.campaign import (
        CampaignInterrupted,
        build_grid,
        run_campaign,
        set_campaign_lint,
        set_worker_shipping,
        summary_from_journals,
    )

    if args.report is not None:
        # A report renders the journal(s) as-is: every flag that would
        # select or execute a grid is inert, so reject non-defaults
        # rather than let them look like they scoped the report.
        defaults = build_parser().parse_args(["campaign", "--report", "-"])
        conflicting = [
            flag
            for flag, given in (
                ("--resume", args.resume),
                ("--journal", args.journal is not None),
                ("--limit", args.limit is not None),
                ("--trace", args.trace is not None),
                ("--workers", args.workers != defaults.workers),
                ("--no-incremental-sim", args.no_incremental_sim),
                ("--iip-ablation", args.iip_ablation),
                ("--families", args.families != defaults.families),
                ("--sizes", args.sizes != defaults.sizes),
                ("--seeds", args.seeds != defaults.seeds),
                ("--profiles", args.profiles != defaults.profiles),
                ("--roles", args.roles is not None),
                ("--topo", args.topo is not None),
                ("--place", args.place is not None),
                ("--route-model", args.route_model != defaults.route_model),
                ("--ship", args.ship != defaults.ship),
                ("--no-decision-cache", args.no_decision_cache),
                ("--lint", args.lint),
            )
            if given
        ]
        if conflicting:
            print(
                f"error: --report renders existing journal(s) and cannot be "
                f"combined with {', '.join(conflicting)}",
                file=sys.stderr,
            )
            return 2
        try:
            summary = summary_from_journals(args.report)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _emit_campaign_summary(
            args,
            summary,
            journal=args.report[0] if len(args.report) == 1 else None,
        )

    if args.no_incremental_sim:
        set_incremental_simulation(False)
    if args.no_decision_cache:
        set_decision_cache(False)
    set_route_model(args.route_model)
    set_worker_shipping(args.ship)
    set_campaign_lint(args.lint)
    families = [item for item in args.families.split(",") if item]
    profiles = [item for item in args.profiles.split(",") if item]
    try:
        sizes = [int(item) for item in args.sizes.split(",") if item]
        grid = build_grid(
            families,
            sizes,
            seeds=args.seeds,
            profiles=profiles,
            iip_ablation=args.iip_ablation,
            roles=args.roles or ("default",),
            topos=args.topo or ("default",),
            places=args.place or ("default",),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    explicit_journal = args.journal is not None
    journal_arg = args.journal if explicit_journal else DEFAULT_JOURNAL
    journal = None if journal_arg in ("", "-") else journal_arg
    resume = False
    if args.resume:
        if explicit_journal and journal != args.resume:
            print(
                f"error: --journal {journal_arg} conflicts with --resume "
                f"{args.resume}; a resumed campaign appends to the journal "
                f"it resumes from",
                file=sys.stderr,
            )
            return 2
        journal = args.resume
        resume = True
    try:
        summary = run_campaign(
            grid,
            workers=args.workers,
            journal_path=journal,
            resume=resume,
            limit=args.limit,
            timeout=args.timeout,
            trace_path=args.trace,
        )
    except CampaignInterrupted as exc:
        # The pool died or stalled mid-grid.  Everything journaled so
        # far survives; the message names the --resume invocation.
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _emit_campaign_summary(args, summary, journal=journal)


def _emit_campaign_summary(
    args: argparse.Namespace, summary, journal: Optional[str]
) -> int:
    if args.quiet:
        print(
            f"campaign: {len(summary.rows)}/{summary.total} scenarios, "
            f"{len(summary.errors)} errors, {summary.workers} worker(s), "
            f"{summary.duration_s:.2f}s"
        )
        for family_summary in summary.by_family():
            print("  " + family_summary.render())
    else:
        print(summary.render())
    if getattr(args, "profile", False):
        print()
        print(summary.render_profile())
    if getattr(args, "trace", None):
        print(f"wrote {args.trace}")
    if args.json and args.json != "-":
        path = summary.write_json(args.json)
        print(f"wrote {path}")
    if args.csv:
        path = summary.write_csv(args.csv)
        print(f"wrote {path}")
    if summary.incomplete and journal is not None:
        print(
            f"incomplete: {summary.total - len(summary.rows)} scenarios "
            f"pending; continue with --resume {journal}"
        )
    return 1 if summary.errors else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import CampaignService
    from .service.httpapi import serve

    try:
        service = CampaignService(
            args.state_dir,
            workers=args.workers,
            retry_limit=args.retry_limit,
            stall_timeout_s=args.stall_timeout if args.stall_timeout > 0
            else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        ready: "asyncio.Future" = loop.create_future()
        server = asyncio.ensure_future(
            serve(service, host=args.host, port=args.port, ready=ready)
        )
        host, port = await ready
        # Scripts passing --port 0 parse this line for the bound port.
        print(f"repro service listening on http://{host}:{port}", flush=True)
        await server

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    except OSError as exc:  # port in use, unbindable host, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _render_campaign_status(status: dict) -> str:
    extras = []
    if status.get("resumed"):
        extras.append(f"{status['resumed']} resumed")
    if status.get("retries"):
        extras.append(f"{status['retries']} retried unit(s)")
    suffix = f" ({', '.join(extras)})" if extras else ""
    return (
        f"{status['id']}: {status['state']} "
        f"{status['completed']}/{status['total']} scenario(s), "
        f"{status['errors']} error(s){suffix}"
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, ServiceError

    spec = {
        "families": [item for item in args.families.split(",") if item],
        "seeds": args.seeds,
        "profiles": [item for item in args.profiles.split(",") if item],
        "iip_ablation": args.iip_ablation,
    }
    try:
        spec["sizes"] = [int(item) for item in args.sizes.split(",") if item]
    except ValueError:
        print(f"error: invalid --sizes {args.sizes!r}", file=sys.stderr)
        return 2
    if args.roles is not None:
        spec["roles"] = args.roles
    if args.topo is not None:
        spec["topos"] = args.topo
    if args.place is not None:
        spec["places"] = args.place
    if args.shard_size is not None:
        spec["shard_size"] = args.shard_size
    client = ServiceClient(args.url)
    try:
        accepted = client.submit(spec)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    campaign_id = accepted["id"]
    if args.quiet:
        print(campaign_id)
    else:
        print(
            f"submitted {campaign_id}: {accepted['total']} scenario(s) in "
            f"{accepted['units']} unit(s) of {accepted['shard_size']}"
        )
    if not args.wait:
        return 0
    try:
        status = client.wait(campaign_id, timeout_s=args.wait_timeout)
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(_render_campaign_status(status))
    return 0 if status["state"] == "done" else 1


def _render_service_health(health: dict) -> str:
    lines = [
        f"service v{health.get('version', '?')}: "
        f"up {health.get('uptime_s', 0.0):.1f}s, "
        f"{len(health.get('workers', []))} worker(s), "
        f"{health.get('campaigns', 0)} campaign(s)"
    ]
    for worker in health.get("workers", []):
        summary = worker.get("metrics") or {}
        lines.append(
            f"  worker {worker['slot']}: "
            f"{'alive' if worker.get('alive') else 'dead'}, "
            f"{worker.get('restarts', 0)} restart(s), "
            f"{summary.get('scenarios', 0)} scenario(s) in "
            f"{summary.get('scenario_time_s', 0.0):.2f}s, "
            f"{summary.get('cache_hits', 0)} cache hit(s)"
        )
    return "\n".join(lines)


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.metrics:
            print(client.metrics_text(), end="")
            return 0
        if args.id is None:
            health = client.health()
            campaigns = client.campaigns()["campaigns"]
            if args.json:
                print(json.dumps(
                    {"health": health, "campaigns": campaigns}, indent=2
                ))
                return 0
            print(_render_service_health(health))
            if not campaigns:
                print("no campaigns")
                return 0
            for status in campaigns:
                print(_render_campaign_status(status))
            return 0
        if args.wait:
            status = client.wait(args.id, timeout_s=args.wait_timeout)
        else:
            status = client.status(args.id)
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        print(_render_campaign_status(status))
        for unit in status["units"]:
            print(
                f"  unit {unit['unit']:3d}: {unit['state']:<8} "
                f"{unit['done']}/{unit['size']} done, "
                f"{unit['attempts']} attempt(s)"
            )
    return 1 if status["state"] == "failed" else 0


def _cmd_result(args: argparse.Namespace) -> int:
    import json

    from pathlib import Path

    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        payload = client.result(args.id)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    progress = (
        "complete" if payload["complete"]
        else f"incomplete, state {payload['state']}"
    )
    print(
        f"{payload['id']}: {payload['scenarios']}/{payload['total']} "
        f"scenario(s) merged ({progress})"
    )
    summary = payload["summary"]
    if not args.quiet:
        for family, stats in summary["families"].items():
            leverage = stats["mean_leverage"]
            rendered = "n/a" if leverage is None else f"{leverage:.1f}X"
            print(
                f"  {family:>8}: {stats['verified']}/{stats['scenarios']} "
                f"verified, mean leverage {rendered}"
            )
    if args.json:
        # The exact bytes CampaignSummary.write_json emits — a service
        # result is interchangeable with a batch-CLI artifact.
        target = Path(args.json)
        target.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {target}")
    return 1 if summary["errors"] else 0


def _parse_budget(text: str) -> float:
    """A wall-clock budget: ``300``, ``300s``, or ``5m``."""
    raw = text.strip().lower()
    scale = 1.0
    if raw.endswith("m"):
        raw, scale = raw[:-1], 60.0
    elif raw.endswith("s"):
        raw = raw[:-1]
    try:
        seconds = float(raw) * scale
    except ValueError:
        raise ValueError(
            f"invalid --budget {text!r} (expected e.g. 300, 300s, or 5m)"
        ) from None
    if seconds <= 0:
        raise ValueError(f"--budget must be positive, got {text!r}")
    return seconds


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import FuzzConfig, run_fuzz
    from .fuzz.corpus import corpus_files, replay_file

    if args.replay:
        files = corpus_files(args.corpus)
        if not files:
            print(f"fuzz: no corpus files under {args.corpus}")
            return 0
        failures = 0
        for path in files:
            mismatch = replay_file(path)
            if mismatch is None:
                if not args.quiet:
                    print(f"  ok   {path.name}")
            else:
                failures += 1
                print(f"  FAIL {path.name}: {mismatch}")
        print(
            f"fuzz replay: {len(files)} corpus file(s), "
            f"{failures} failure(s)"
        )
        return 1 if failures else 0

    budget_s = None
    if args.budget is not None:
        try:
            budget_s = _parse_budget(args.budget)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.iterations is None and budget_s is None:
        print(
            "error: fuzz needs --iterations N or --budget TIME",
            file=sys.stderr,
        )
        return 2

    explicit_journal = args.journal is not None
    journal_arg = args.journal if explicit_journal else DEFAULT_FUZZ_JOURNAL
    journal = None if journal_arg in ("", "-") else journal_arg
    resume = False
    if args.resume:
        if explicit_journal and journal != args.resume:
            print(
                f"error: --journal {journal_arg} conflicts with --resume "
                f"{args.resume}; a resumed fuzz run appends to the journal "
                f"it resumes from",
                file=sys.stderr,
            )
            return 2
        journal = args.resume
        resume = True

    config = FuzzConfig(
        fuzz_seed=args.fuzz_seed,
        iterations=args.iterations,
        budget_s=budget_s,
        pairs=args.pairs,
        workers=args.workers,
        corpus_dir=args.corpus,
        planted=tuple(args.plant or ()),
    )
    try:
        summary = run_fuzz(config, journal_path=journal, resume=resume)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.quiet:
        lines = summary.render().splitlines()
        print(lines[-1] if not summary.corpus_written else "\n".join(
            lines[-1 - len(summary.corpus_written):]
        ))
    else:
        print(summary.render())
    return 1 if summary.mismatches else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from pathlib import Path

    from .analysis import analyze_configs, run_validation

    if args.validate:
        # The harness fixes its own grid: any single-cell flag would be
        # inert, so reject non-defaults rather than let them look like
        # they scoped the validation.
        defaults = build_parser().parse_args(["lint", "--validate"])
        conflicting = [
            flag
            for flag, given in (
                ("--family", args.family != defaults.family),
                ("--routers", args.routers != defaults.routers),
                ("--topo-seed", args.topo_seed != defaults.topo_seed),
                ("--roles", args.roles is not None),
                ("--topo", args.topo is not None),
                ("--place", args.place is not None),
                ("--fault", args.fault is not None),
            )
            if given
        ]
        if conflicting:
            print(
                f"error: --validate runs the fixed nine-cell harness and "
                f"cannot be combined with {', '.join(conflicting)}",
                file=sys.stderr,
            )
            return 2
        report = run_validation()
        payload = report.to_dict()
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(report.render_text())
        if args.out:
            target = Path(args.out)
            target.write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {target}", file=sys.stderr)
        return 0 if report.ok else 1

    from .cisco.generator import generate_cisco
    from .topology.families import generate_network
    from .topology.reference import build_reference_configs

    try:
        network = generate_network(
            args.family,
            args.routers,
            seed=args.topo_seed,
            roles=args.roles,
            params=args.topo,
            place=args.place,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    topology = network.topology
    configs = dict(build_reference_configs(topology))
    texts = {name: generate_cisco(config) for name, config in configs.items()}

    if args.fault is not None:
        from .llm.faults import DraftState, FaultTargetError
        from .llm.synthesis_faults import (
            fault_designations,
            synthesis_fault_catalog,
        )

        catalog = synthesis_fault_catalog(topology)
        designations = fault_designations(topology)
        if args.fault not in catalog:
            known = ", ".join(sorted(catalog))
            print(
                f"error: unknown fault {args.fault!r} (known: {known})",
                file=sys.stderr,
            )
            return 2
        router = designations.get(args.fault)
        if router is None or router not in configs:
            print(
                f"error: fault {args.fault!r} has no designated router "
                f"on this topology",
                file=sys.stderr,
            )
            return 2
        state = DraftState(configs[router], generate_cisco)
        state.inject(catalog[args.fault])
        try:
            configs[router] = state.current_config()
            texts[router] = state.render()
        except FaultTargetError as exc:
            print(
                f"error: fault {args.fault!r} found no target on "
                f"{router}: {exc}",
                file=sys.stderr,
            )
            return 2

    report = analyze_configs(configs, topology=topology, texts=texts)
    payload = report.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(report.render_text())
    if args.out:
        target = Path(args.out)
        target.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {target}", file=sys.stderr)
    return 1 if report.high else 0


if __name__ == "__main__":
    sys.exit(main())
