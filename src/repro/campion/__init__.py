"""Campion substitute: semantic diffing of two router configurations.

Implements the three semantic error classes of §3.1 — structural
mismatches, attribute differences, and policy behaviour differences
(with example prefixes) — over the vendor-neutral IR.
"""

from .attributes import find_attribute_differences
from .correspond import InterfacePair, junos_style_name, pair_interfaces
from .differ import compare_configs
from .findings import (
    AttributeDifference,
    CampionReport,
    FindingSide,
    PolicyBehaviorFinding,
    StructuralMismatch,
)
from .policy import find_policy_differences, find_redistribution_differences
from .structure import find_structural_mismatches

__all__ = [
    "AttributeDifference",
    "CampionReport",
    "FindingSide",
    "InterfacePair",
    "PolicyBehaviorFinding",
    "StructuralMismatch",
    "compare_configs",
    "find_attribute_differences",
    "find_policy_differences",
    "find_redistribution_differences",
    "find_structural_mismatches",
    "junos_style_name",
    "pair_interfaces",
]
