"""Top-level Campion comparison: original config vs translation.

Runs the three semantic analyses in the order §3.1 prescribes (structure
masks attributes which mask policy behaviour) and bundles the findings
into a :class:`CampionReport` for the humanizer.
"""

from __future__ import annotations

from ..netmodel.device import RouterConfig
from .attributes import find_attribute_differences
from .findings import CampionReport
from .policy import find_policy_differences
from .structure import find_structural_mismatches

__all__ = ["compare_configs"]


def compare_configs(
    original: RouterConfig,
    translated: RouterConfig,
    stop_at_first_class: bool = True,
) -> CampionReport:
    """Compare two single-router configs.

    With ``stop_at_first_class`` (the default, matching the paper's
    verification discipline), attribute and policy analyses are skipped
    while structural mismatches remain, because those coarser errors
    "can mask attribute differences and policy behavior differences".
    """
    report = CampionReport()
    report.structural = find_structural_mismatches(original, translated)
    if report.structural and stop_at_first_class:
        return report
    report.attributes = find_attribute_differences(original, translated)
    if report.attributes and stop_at_first_class:
        return report
    report.policies = find_policy_differences(original, translated)
    return report
