"""Policy-behaviour difference detection (§3.1, error class 4).

For each BGP neighbor's import/export attachment point, the policies on
the two sides are compared with the symbolic engine; the first witness
route is reported with its example prefix, matching Campion's output
style ("for the prefix 1.2.3.0/25 ... ACCEPT ... but ... REJECT").

Attribute-transform diffing rides the v2 route datapath: candidate
routes and policy outputs carry interned AS-path/community instances,
so the common no-difference case in ``repro.symbolic.diff`` resolves on
pointer checks rather than set comparisons.
"""

from __future__ import annotations

from typing import List

from ..netmodel.device import RouterConfig
from ..netmodel.route import Protocol
from ..netmodel.routing_policy import MatchProtocol, RouteMap
from ..symbolic import (
    BehaviorDifference,
    DifferenceKind,
    RouteConstraint,
    compare_policies,
)
from .findings import PolicyBehaviorFinding

__all__ = ["find_policy_differences", "find_redistribution_differences"]

# The space over which neighbor import/export policies are compared:
# Cisco neighbor route-maps only ever see BGP routes (redistributed
# routes enter the BGP table through a separate pipeline, compared by
# :func:`find_redistribution_differences`).
_BGP_SPACE = RouteConstraint(protocol=Protocol.BGP)


def find_policy_differences(
    original: RouterConfig,
    translated: RouterConfig,
    per_policy_limit: int = 3,
) -> List[PolicyBehaviorFinding]:
    """Per-neighbor policy comparisons plus the redistribution pipeline."""
    findings: List[PolicyBehaviorFinding] = []
    if original.bgp is None or translated.bgp is None:
        return findings
    shared = sorted(set(original.bgp.neighbors) & set(translated.bgp.neighbors))
    for ip in shared:
        left = original.bgp.neighbors[ip]
        right = translated.bgp.neighbors[ip]
        for direction in ("import", "export"):
            left_name = getattr(left, f"{direction}_policy")
            right_name = getattr(right, f"{direction}_policy")
            if left_name is None or right_name is None:
                continue  # attachment mismatches are structural findings
            left_map = original.get_route_map(left_name)
            right_map = translated.get_route_map(right_name)
            if left_map is None or right_map is None:
                continue  # dangling references are structural findings
            findings.extend(
                _compare_attachment(
                    original,
                    left_map,
                    translated,
                    right_map,
                    ip,
                    direction,
                    per_policy_limit,
                )
            )
    findings.extend(
        find_redistribution_differences(original, translated, per_policy_limit)
    )
    return findings


def find_redistribution_differences(
    original: RouterConfig,
    translated: RouterConfig,
    per_policy_limit: int = 3,
) -> List[PolicyBehaviorFinding]:
    """Compare what each side redistributes into BGP (Table 2, row 8).

    On the Cisco side, routes from protocol P reach BGP iff a
    ``redistribute P [route-map M]`` statement admits them; on the Junos
    side, iff a neighbor's export policy admits a route whose protocol
    is P.  Comparing those two spaces per non-BGP protocol reproduces
    Campion "detect[ing] that the Juniper configuration was
    redistributing some routes that the Cisco configuration did not".
    """
    findings: List[PolicyBehaviorFinding] = []
    if original.bgp is None or translated.bgp is None:
        return findings
    protocols = {Protocol.OSPF, Protocol.CONNECTED, Protocol.STATIC}
    protocols.update(
        item.protocol for item in original.bgp.redistributions
    )
    for route_map in translated.route_maps.values():
        for clause in route_map.clauses:
            for condition in clause.matches:
                if isinstance(condition, MatchProtocol):
                    protocols.add(condition.protocol)
    protocols.discard(Protocol.BGP)
    shared = sorted(set(original.bgp.neighbors) & set(translated.bgp.neighbors))
    for ip in shared:
        right = translated.bgp.neighbors[ip]
        if right.export_policy is None:
            continue
        right_map = translated.get_route_map(right.export_policy)
        if right_map is None:
            continue
        for protocol in sorted(protocols, key=lambda item: item.value):
            left_map = _redistribution_policy(original, protocol)
            differences = compare_policies(
                original,
                left_map,
                translated,
                right_map,
                constraint=RouteConstraint(protocol=protocol),
                limit=per_policy_limit,
            )
            for difference in _dedupe_by_prefix(differences):
                findings.append(
                    PolicyBehaviorFinding(
                        policy_name=right_map.name,
                        direction=f"redistribution ({protocol.value})",
                        neighbor=ip,
                        example_prefix=difference.route.prefix,
                        original_action=difference.original_action,
                        translated_action=difference.translated_action,
                        transform_detail=(
                            difference.detail
                            if difference.kind
                            is DifferenceKind.ATTRIBUTE_TRANSFORM
                            else ""
                        ),
                    )
                )
    return findings


def _redistribution_policy(original: RouterConfig, protocol: Protocol) -> RouteMap:
    """The effective Cisco-side redistribution filter for a protocol."""
    assert original.bgp is not None
    for redistribution in original.bgp.redistributions:
        if redistribution.protocol is not protocol:
            continue
        if redistribution.route_map is not None:
            found = original.get_route_map(redistribution.route_map)
            if found is not None:
                return found
        from ..netmodel.routing_policy import permit_all

        return permit_all(f"__redistribute_{protocol.value}__")
    # Not redistributed: the empty route map denies everything.
    return RouteMap(f"__no_redistribution_{protocol.value}__")


def _compare_attachment(
    original: RouterConfig,
    original_map: RouteMap,
    translated: RouterConfig,
    translated_map: RouteMap,
    neighbor_ip: str,
    direction: str,
    limit: int,
) -> List[PolicyBehaviorFinding]:
    differences = compare_policies(
        original,
        original_map,
        translated,
        translated_map,
        constraint=_BGP_SPACE,
        limit=limit,
    )
    findings = []
    for difference in _dedupe_by_prefix(differences):
        findings.append(
            PolicyBehaviorFinding(
                policy_name=original_map.name,
                direction=direction,
                neighbor=neighbor_ip,
                example_prefix=difference.route.prefix,
                original_action=difference.original_action,
                translated_action=difference.translated_action,
                transform_detail=(
                    difference.detail
                    if difference.kind is DifferenceKind.ATTRIBUTE_TRANSFORM
                    else ""
                ),
            )
        )
    return findings


def _dedupe_by_prefix(
    differences: List[BehaviorDifference],
) -> List[BehaviorDifference]:
    """One witness per (prefix, kind) — Campion reports localized examples,
    not the whole space."""
    seen = set()
    kept = []
    for difference in differences:
        key = (difference.route.prefix, difference.kind, difference.detail[:40])
        if key not in seen:
            seen.add(key)
            kept.append(difference)
    return kept
