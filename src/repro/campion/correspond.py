"""Cross-vendor component correspondence.

Cisco and Juniper name things differently (``Loopback0`` vs ``lo0.0``),
so before diffing, Campion must decide which interface/neighbor on one
side corresponds to which on the other.  Interfaces correspond when
their addresses match (falling back to normalized-name heuristics);
BGP neighbors correspond by peer address, which is vendor-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netmodel.device import RouterConfig
from ..netmodel.interfaces import Interface

__all__ = ["InterfacePair", "pair_interfaces", "junos_style_name"]

_NAME_PREFIX_MAP = {
    "loopback": "lo",
    "gigabitethernet": "ge-",
    "tengigabitethernet": "xe-",
    "ethernet": "et-",
    "fastethernet": "fe-",
}


@dataclass(frozen=True)
class InterfacePair:
    """A matched (original, translated) interface pair."""

    original: Interface
    translated: Interface


def junos_style_name(cisco_name: str) -> str:
    """A best-effort Junos rendering of a Cisco interface name.

    Used only for *reporting* (the differ pairs by address); e.g.
    ``Loopback0`` → ``lo0.0``.
    """
    lowered = cisco_name.lower()
    for cisco_prefix, junos_prefix in _NAME_PREFIX_MAP.items():
        if lowered.startswith(cisco_prefix):
            suffix = lowered[len(cisco_prefix):]
            return f"{junos_prefix}{suffix}.0"
    return cisco_name


def pair_interfaces(
    original: RouterConfig, translated: RouterConfig
) -> Tuple[List[InterfacePair], List[Interface], List[Interface]]:
    """Match interfaces by address; return (pairs, only-original,
    only-translated)."""
    pairs: List[InterfacePair] = []
    unmatched_translated: Dict[str, Interface] = dict(translated.interfaces)
    only_original: List[Interface] = []
    for interface in original.sorted_interfaces():
        match = _find_match(interface, unmatched_translated)
        if match is not None:
            pairs.append(InterfacePair(original=interface, translated=match))
            unmatched_translated.pop(match.name)
        else:
            only_original.append(interface)
    only_translated = [
        unmatched_translated[name] for name in sorted(unmatched_translated)
    ]
    return pairs, only_original, only_translated


def _find_match(
    interface: Interface, candidates: Dict[str, Interface]
) -> Optional[Interface]:
    if interface.address is not None:
        for candidate in candidates.values():
            if candidate.address == interface.address:
                return candidate
    normalized = junos_style_name(interface.name)
    for candidate in candidates.values():
        if candidate.name in (interface.name, normalized, normalized.split(".")[0]):
            return candidate
    return None
