"""Structural-mismatch detection (§3.1, error class 2).

A structural mismatch is "a component, connection, or named policy
present in the original configuration but not in the translation (or
present in the translation but not the original)": interfaces, BGP
neighbors, per-neighbor import/export policy attachments, OSPF
processes, and dangling policy references.
"""

from __future__ import annotations

from typing import List

from ..netmodel.device import RouterConfig
from .correspond import pair_interfaces
from .findings import FindingSide, StructuralMismatch

__all__ = ["find_structural_mismatches"]


def find_structural_mismatches(
    original: RouterConfig, translated: RouterConfig
) -> List[StructuralMismatch]:
    findings: List[StructuralMismatch] = []
    findings.extend(_interface_mismatches(original, translated))
    findings.extend(_bgp_mismatches(original, translated))
    findings.extend(_ospf_mismatches(original, translated))
    findings.extend(_dangling_references(translated))
    return findings


def _interface_mismatches(
    original: RouterConfig, translated: RouterConfig
) -> List[StructuralMismatch]:
    _, only_original, only_translated = pair_interfaces(original, translated)
    findings = []
    for interface in only_original:
        findings.append(
            StructuralMismatch(
                component="interface",
                location="",
                present_in=FindingSide.ORIGINAL,
                name=interface.name,
            )
        )
    for interface in only_translated:
        findings.append(
            StructuralMismatch(
                component="interface",
                location="",
                present_in=FindingSide.TRANSLATION,
                name=interface.name,
            )
        )
    return findings


def _bgp_mismatches(
    original: RouterConfig, translated: RouterConfig
) -> List[StructuralMismatch]:
    findings: List[StructuralMismatch] = []
    original_neighbors = (
        dict(original.bgp.neighbors) if original.bgp is not None else {}
    )
    translated_neighbors = (
        dict(translated.bgp.neighbors) if translated.bgp is not None else {}
    )
    if original.bgp is not None and translated.bgp is None:
        findings.append(
            StructuralMismatch(
                component="BGP process",
                location="",
                present_in=FindingSide.ORIGINAL,
            )
        )
        return findings
    if translated.bgp is not None and original.bgp is None:
        findings.append(
            StructuralMismatch(
                component="BGP process",
                location="",
                present_in=FindingSide.TRANSLATION,
            )
        )
        return findings
    for ip in sorted(set(original_neighbors) | set(translated_neighbors)):
        in_original = ip in original_neighbors
        in_translated = ip in translated_neighbors
        if in_original and not in_translated:
            findings.append(
                StructuralMismatch(
                    component="bgp neighbor",
                    location="",
                    present_in=FindingSide.ORIGINAL,
                    name=ip,
                )
            )
            continue
        if in_translated and not in_original:
            findings.append(
                StructuralMismatch(
                    component="bgp neighbor",
                    location="",
                    present_in=FindingSide.TRANSLATION,
                    name=ip,
                )
            )
            continue
        findings.extend(
            _policy_attachment_mismatches(
                ip, original_neighbors[ip], translated_neighbors[ip]
            )
        )
    return findings


def _policy_attachment_mismatches(
    ip: str, original_neighbor, translated_neighbor
) -> List[StructuralMismatch]:
    """Per-neighbor import/export route-map presence (the Table 1 case)."""
    findings = []
    for direction in ("import", "export"):
        original_policy = getattr(original_neighbor, f"{direction}_policy")
        translated_policy = getattr(translated_neighbor, f"{direction}_policy")
        if original_policy is not None and translated_policy is None:
            findings.append(
                StructuralMismatch(
                    component=f"{direction} route map",
                    location=f"bgp neighbor {ip}",
                    present_in=FindingSide.ORIGINAL,
                )
            )
        elif translated_policy is not None and original_policy is None:
            findings.append(
                StructuralMismatch(
                    component=f"{direction} route map",
                    location=f"bgp neighbor {ip}",
                    present_in=FindingSide.TRANSLATION,
                )
            )
    return findings


def _ospf_mismatches(
    original: RouterConfig, translated: RouterConfig
) -> List[StructuralMismatch]:
    findings = []
    if original.ospf is not None and translated.ospf is None:
        findings.append(
            StructuralMismatch(
                component="OSPF process",
                location="",
                present_in=FindingSide.ORIGINAL,
            )
        )
    elif translated.ospf is not None and original.ospf is None:
        findings.append(
            StructuralMismatch(
                component="OSPF process",
                location="",
                present_in=FindingSide.TRANSLATION,
            )
        )
    return findings


def _dangling_references(translated: RouterConfig) -> List[StructuralMismatch]:
    """Policies attached on the translation but never defined there."""
    findings = []
    for reference in translated.undefined_references():
        kind, _, name = reference.partition(" ")
        findings.append(
            StructuralMismatch(
                component=f"definition of the referenced {kind}",
                location="",
                present_in=FindingSide.ORIGINAL,
                name=name,
            )
        )
    return findings
