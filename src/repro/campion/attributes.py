"""Attribute-difference detection (§3.1, error class 3).

"This is when a numerical attribute has a different value between the
two configurations.  An example is OSPF link cost difference between two
corresponding interfaces."  Campion reports the attribute values on both
corresponding components.
"""

from __future__ import annotations

from typing import List

from ..netmodel.device import RouterConfig
from ..netmodel.interfaces import Interface
from .correspond import InterfacePair, pair_interfaces
from .findings import AttributeDifference

__all__ = ["find_attribute_differences"]


def find_attribute_differences(
    original: RouterConfig, translated: RouterConfig
) -> List[AttributeDifference]:
    findings: List[AttributeDifference] = []
    pairs, _, _ = pair_interfaces(original, translated)
    for pair in pairs:
        findings.extend(_interface_differences(original, translated, pair))
    findings.extend(_bgp_differences(original, translated))
    return findings


def _interface_differences(
    original: RouterConfig, translated: RouterConfig, pair: InterfacePair
) -> List[AttributeDifference]:
    findings = []
    left, right = pair.original, pair.translated
    if left.address != right.address:
        findings.append(
            _difference(pair, "interface", "ip address", left.address, right.address)
        )
    if _ospf_cost(left) != _ospf_cost(right):
        findings.append(
            _difference(
                pair, "OSPF link", "cost", _ospf_cost(left), _ospf_cost(right)
            )
        )
    left_passive = _is_passive(original, left)
    right_passive = _is_passive(translated, right)
    if left_passive != right_passive:
        findings.append(
            _difference(
                pair,
                "OSPF link",
                "passive interface",
                left_passive,
                right_passive,
            )
        )
    return findings


def _ospf_cost(interface: Interface) -> int:
    """Explicit cost or the vendor-default cost.

    Both vendors default loopbacks to 0-cost stub semantics; a mismatch
    between an explicit value and the default is exactly Table 2's
    "Different OSPF link cost" (cost 1 vs cost 0).
    """
    if interface.ospf_cost is not None:
        return interface.ospf_cost
    return 0 if interface.is_loopback() else 1


def _is_passive(config: RouterConfig, interface: Interface) -> bool:
    if interface.ospf_passive:
        return True
    if config.ospf is None:
        return False
    return config.ospf.is_passive(interface.name) or config.ospf.is_passive(
        f"{interface.name}.{interface.unit}"
    )


def _bgp_differences(
    original: RouterConfig, translated: RouterConfig
) -> List[AttributeDifference]:
    findings: List[AttributeDifference] = []
    if original.bgp is None or translated.bgp is None:
        return findings
    if original.bgp.asn != translated.bgp.asn and translated.bgp.asn:
        findings.append(
            AttributeDifference(
                component="BGP process",
                original_name=f"AS {original.bgp.asn}",
                translated_name=f"AS {translated.bgp.asn}",
                attribute="autonomous system number",
                original_value=str(original.bgp.asn),
                translated_value=str(translated.bgp.asn),
            )
        )
    if (
        original.bgp.router_id is not None
        and translated.bgp.router_id is not None
        and original.bgp.router_id != translated.bgp.router_id
    ):
        findings.append(
            AttributeDifference(
                component="BGP process",
                original_name="router-id",
                translated_name="router-id",
                attribute="router id",
                original_value=str(original.bgp.router_id),
                translated_value=str(translated.bgp.router_id),
            )
        )
    for ip in sorted(set(original.bgp.neighbors) & set(translated.bgp.neighbors)):
        left = original.bgp.neighbors[ip]
        right = translated.bgp.neighbors[ip]
        if left.remote_as != right.remote_as:
            findings.append(
                AttributeDifference(
                    component="bgp neighbor",
                    original_name=ip,
                    translated_name=ip,
                    attribute="remote AS",
                    original_value=str(left.remote_as),
                    translated_value=str(right.remote_as),
                )
            )
    return findings


def _difference(
    pair: InterfacePair,
    component: str,
    attribute: str,
    original_value: object,
    translated_value: object,
) -> AttributeDifference:
    return AttributeDifference(
        component=component,
        original_name=pair.original.name,
        translated_name=f"{pair.translated.name}.{pair.translated.unit}"
        if "." not in pair.translated.name
        else pair.translated.name,
        attribute=attribute,
        original_value=str(original_value),
        translated_value=str(translated_value),
    )
