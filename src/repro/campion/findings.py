"""Typed findings produced by the Campion substitute.

Each finding class carries exactly the fields the paper's humanizer
splices into its formulaic prompts (Table 1): what component, where, and
the original-vs-translation values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..netmodel.ip import Prefix
from ..netmodel.routing_policy import Action

__all__ = [
    "AttributeDifference",
    "CampionReport",
    "FindingSide",
    "PolicyBehaviorFinding",
    "StructuralMismatch",
]


class FindingSide(enum.Enum):
    """Which config a structurally mismatched item is present in."""

    ORIGINAL = "original"
    TRANSLATION = "translation"

    @property
    def other(self) -> "FindingSide":
        if self is FindingSide.ORIGINAL:
            return FindingSide.TRANSLATION
        return FindingSide.ORIGINAL


@dataclass(frozen=True)
class StructuralMismatch:
    """A component/connection/named policy present on only one side.

    Example (Table 1): "In the original configuration, there is an import
    route map for bgp neighbor 2.3.4.5, but in the translation, there is
    no corresponding route map."
    """

    component: str  # e.g. "import route map", "bgp neighbor", "interface"
    location: str  # e.g. "bgp neighbor 2.3.4.5", "" for top level
    present_in: FindingSide
    name: str = ""  # the item's own name, when it has one

    def describe(self) -> str:
        where = f" for {self.location}" if self.location else ""
        named = f" {self.name}" if self.name else ""
        return (
            f"In the {self.present_in.value} configuration, there is "
            f"{_article(self.component)} {self.component}{named}{where}, but in "
            f"the {self.present_in.other.value}, there is no corresponding "
            f"{self.component}"
        )


@dataclass(frozen=True)
class AttributeDifference:
    """A numerical/boolean attribute differing between counterparts.

    Example (Table 1): "the OSPF link for Loopback0 has cost set to 1,
    but in the translation, the corresponding link to lo0.0 has cost set
    to 0."
    """

    component: str  # e.g. "OSPF link"
    original_name: str  # e.g. "Loopback0"
    translated_name: str  # e.g. "lo0.0"
    attribute: str  # e.g. "cost", "passive"
    original_value: str
    translated_value: str

    def describe(self) -> str:
        return (
            f"In the original configuration, the {self.component} for "
            f"{self.original_name} has {self.attribute} set to "
            f"{self.original_value}, but in the translation, the "
            f"corresponding {self.component} for {self.translated_name} has "
            f"{self.attribute} set to {self.translated_value}"
        )


@dataclass(frozen=True)
class PolicyBehaviorFinding:
    """A route-policy semantic difference with an example prefix.

    Example (Table 1): "for the prefix 1.2.3.0/25, the BGP export policy
    to_provider for BGP neighbor 2.3.4.5 performs the following action:
    ACCEPT.  But, in the translation, the corresponding BGP export policy
    to_provider performs the following action: REJECT."
    """

    policy_name: str
    direction: str  # "import" | "export"
    neighbor: str
    example_prefix: Prefix
    original_action: Action
    translated_action: Action
    transform_detail: str = ""

    def describe(self) -> str:
        if self.transform_detail:
            return (
                f"In the original configuration, for the prefix "
                f"{self.example_prefix}, the BGP {self.direction} policy "
                f"{self.policy_name} for BGP neighbor {self.neighbor} accepts "
                f"the route, and so does the translation, but the attribute "
                f"transformations differ: {self.transform_detail}"
            )
        original = "ACCEPT" if self.original_action is Action.PERMIT else "REJECT"
        translated = (
            "ACCEPT" if self.translated_action is Action.PERMIT else "REJECT"
        )
        return (
            f"In the original configuration, for the prefix "
            f"{self.example_prefix}, the BGP {self.direction} policy "
            f"{self.policy_name} for BGP neighbor {self.neighbor} performs "
            f"the following action: {original}. But, in the translation, "
            f"the corresponding BGP {self.direction} policy "
            f"{self.policy_name} performs the following action: {translated}"
        )


@dataclass
class CampionReport:
    """All findings from one comparison run, in verification order.

    Structural mismatches come first because — as §3.1 notes — they
    "have to be handled earlier since they can mask attribute differences
    and policy behavior differences".
    """

    structural: List[StructuralMismatch] = field(default_factory=list)
    attributes: List[AttributeDifference] = field(default_factory=list)
    policies: List[PolicyBehaviorFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.structural or self.attributes or self.policies)

    def all_findings(self) -> List[object]:
        return [*self.structural, *self.attributes, *self.policies]

    def first_finding(self) -> Optional[object]:
        findings = self.all_findings()
        return findings[0] if findings else None

    def summary(self) -> str:
        return (
            f"{len(self.structural)} structural mismatch(es), "
            f"{len(self.attributes)} attribute difference(s), "
            f"{len(self.policies)} policy behavior difference(s)"
        )


def _article(noun: str) -> str:
    return "an" if noun[:1].lower() in "aeiou" else "a"
