"""The policy analyzer: simulator-grounded static analysis of configs.

:class:`PolicyAnalyzer` walks every router's route-maps, prefix-lists,
community-lists, AS-path lists, ACLs, and BGP sessions and emits
structured :class:`~repro.analysis.findings.Finding` rows.  Rules fall
into four groups:

* **Reference rules** need only the config itself: undefined names
  (``undefined-ref``), unused definitions (``unused-list``), no-op set
  actions (``noop-set``), invalid inline community matches
  (``inline-community-match``), and community replacement where the
  reference idiom is additive tagging (``non-additive-community``).

* **Reachability rules** reuse the symbolic candidate grids of
  :mod:`repro.symbolic.candidates` the same way the invariant verifier
  does: a clause no grid route can reach is shadowed by earlier clauses
  (``shadowed-clause``).

* **Role rules** key on the PR 4 :class:`~repro.topology.roles.
  RoleAssignment`: export policies on transit-forbidden sessions are
  probed with routes carrying every *other* role slot's shared
  community (``transit-leak``), import policies with untagged routes
  that must come out tagged (``untagged-ingress``), and attachment
  sessions with only one policy direction (``asymmetric-session``).
  For hub-shaped topologies the guarded sessions are the hub's
  internal spoke sessions — where the paper's Figure 4 policy lives —
  not the policy-free spoke externals.

* **Conformance rules** compare a config against its
  :class:`~repro.topology.model.RouterSpec`: interface addresses,
  local AS, router id, the BGP neighbor set, and announced networks.

:func:`analyze_text` adds the rendered-text rules the IR cannot see
(CLI mode keywords, ``ip routing``, unindented ``neighbor`` lines —
the catalog's three text-only faults).

Every rule is validated against the simulator by
:mod:`repro.analysis.validation`: zero HIGH findings across all clean
family cells, and 100% recall over the fault catalog.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..netmodel.communities import Community
from ..netmodel.device import RouterConfig
from ..netmodel.route import Route
from ..netmodel.routebuilder import RouteBuilder
from ..netmodel.routing_policy import (
    Action,
    MatchAcl,
    MatchAsPathList,
    MatchCommunityInline,
    MatchCommunityList,
    MatchPrefixList,
    PolicyEvaluationError,
    RouteMap,
    SetAsPathPrepend,
    SetCommunity,
)
from ..obs import counter, span
from ..symbolic.candidates import CandidateUniverse
from ..topology.families import is_hub_star
from ..topology.generator import ingress_community
from ..topology.model import Topology
from ..topology.roles import RoleAssignment
from .findings import Finding, LintReport, Severity

__all__ = ["PolicyAnalyzer", "RULES", "analyze_configs", "analyze_text"]


#: rule id -> (severity, one-line description); the README table and
#: ``repro lint --rules`` render from this.
RULES: Dict[str, Tuple[Severity, str]] = {
    "undefined-ref": (
        Severity.HIGH,
        "a route-map clause or BGP session references an undefined "
        "prefix-list/community-list/as-path-list/ACL/route-map",
    ),
    "shadowed-clause": (
        Severity.MEDIUM,
        "no candidate route can reach the clause: earlier clauses "
        "capture its entire match set",
    ),
    "unused-list": (
        Severity.LOW,
        "a defined prefix-list/community-list/as-path-list/ACL is "
        "never referenced by any route-map",
    ),
    "noop-set": (
        Severity.LOW,
        "a set action can never change a route (sets on a deny "
        "clause, empty community set, non-positive prepend)",
    ),
    "inline-community-match": (
        Severity.HIGH,
        "a literal community in match position — invalid IOS; "
        "match must name a community-list",
    ),
    "non-additive-community": (
        Severity.MEDIUM,
        "set community without additive replaces every community "
        "the route carries",
    ),
    "transit-leak": (
        Severity.HIGH,
        "the export policy of a transit-forbidden session permits a "
        "route tagged with another role's shared community",
    ),
    "untagged-ingress": (
        Severity.HIGH,
        "the import policy of a transit-forbidden session permits "
        "routes without adding the session's role community",
    ),
    "asymmetric-session": (
        Severity.LOW,
        "an external session applies a policy in only one direction",
    ),
    "ifc-ip-mismatch": (
        Severity.HIGH,
        "an interface is missing or its address differs from the "
        "topology",
    ),
    "local-as-mismatch": (
        Severity.HIGH,
        "the BGP local AS differs from the topology's AS for this "
        "router",
    ),
    "router-id-mismatch": (
        Severity.HIGH,
        "the BGP router-id differs from the topology's router-id",
    ),
    "missing-neighbor": (
        Severity.HIGH,
        "a BGP session the topology requires is not configured",
    ),
    "extra-neighbor": (
        Severity.HIGH,
        "a configured BGP session has no peer in the topology",
    ),
    "missing-network": (
        Severity.HIGH,
        "a network the topology expects announced is not announced",
    ),
    "extra-network": (
        Severity.HIGH,
        "an announced network does not exist in the topology",
    ),
    "cli-keywords": (
        Severity.HIGH,
        "interactive CLI mode keywords (configure terminal / exit / "
        "write) in a config file",
    ),
    "stray-ip-routing": (
        Severity.HIGH,
        "'ip routing' — an interactive exec command, not config",
    ),
    "misplaced-neighbor": (
        Severity.HIGH,
        "a neighbor statement outside its router bgp block",
    ),
}


_NAMED_MATCHES = (
    (MatchPrefixList, "prefix-list", "get_prefix_list"),
    (MatchCommunityList, "community-list", "get_community_list"),
    (MatchAsPathList, "as-path list", "get_as_path_list"),
    (MatchAcl, "access-list", "get_access_list"),
)

#: Exec-mode keywords the cli_keywords fault wraps configs in.
_CLI_KEYWORDS = frozenset({"configure terminal", "conf t", "end", "exit", "write"})


def analyze_text(router: str, text: str) -> List[Finding]:
    """The rendered-text rules: syntax-level mistakes the IR cannot
    carry (the catalog's three text-only faults).

    Clean :func:`~repro.cisco.generator.generate_cisco` output indents
    every body line, so an *unindented* CLI keyword, ``ip routing``, or
    ``neighbor`` statement is always an injected artifact.
    """
    findings: List[Finding] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if raw != raw.lstrip():
            continue  # indented: body of a block, not a stray command
        line = raw.strip()
        if line in _CLI_KEYWORDS:
            findings.append(
                Finding(
                    rule="cli-keywords",
                    severity=Severity.HIGH,
                    router=router,
                    ref="text",
                    line=number,
                    message=f"interactive CLI keyword {line!r} in config",
                    fix_hint="remove exec-mode commands from the file",
                )
            )
        elif line == "ip routing":
            findings.append(
                Finding(
                    rule="stray-ip-routing",
                    severity=Severity.HIGH,
                    router=router,
                    ref="text",
                    line=number,
                    message="'ip routing' is an exec command, not config",
                    fix_hint="delete the line",
                )
            )
        elif line.startswith("neighbor "):
            findings.append(
                Finding(
                    rule="misplaced-neighbor",
                    severity=Severity.HIGH,
                    router=router,
                    ref="text",
                    line=number,
                    message="neighbor statement outside a router bgp block",
                    fix_hint="move the line under 'router bgp'",
                )
            )
    return findings


class PolicyAnalyzer:
    """One analysis pass over a set of router configs.

    ``topology`` unlocks the conformance rules and, via its role
    assignment, the transit-leak / untagged-ingress / asymmetric-session
    probes; without it only the per-config rules run.  ``texts`` maps
    router names to rendered config text for the text rules.
    """

    def __init__(
        self,
        configs: Dict[str, RouterConfig],
        topology: Optional[Topology] = None,
        texts: Optional[Dict[str, str]] = None,
    ) -> None:
        self.configs = configs
        self.topology = topology
        self.texts = texts or {}
        self.roles: Optional[RoleAssignment] = None
        self.hub = False
        if topology is not None and topology.externals:
            self.roles = RoleAssignment.from_topology(topology)
            self.hub = is_hub_star(topology)

    # -- entry point -----------------------------------------------------------

    def analyze(self) -> LintReport:
        report = LintReport()
        with span("lint", routers=len(self.configs)):
            counter("analysis.runs").inc()
            for name in sorted(self.configs):
                config = self.configs[name]
                self._check_references(report, config)
                self._check_route_maps(report, config)
                self._check_unused(report, config)
            if self.topology is not None:
                for name in sorted(self.configs):
                    if name in self.topology.routers:
                        self._check_conformance(
                            report,
                            self.configs[name],
                            self.topology.router(name),
                        )
            self._check_sessions(report)
            for name in sorted(self.texts):
                report.extend(analyze_text(name, self.texts[name]))
            report.sort()
            counter("analysis.findings").inc(len(report))
            counter("analysis.findings_high").inc(report.high)
        return report

    # -- reference rules -------------------------------------------------------

    def _map_undefined(self, config: RouterConfig, route_map: RouteMap) -> bool:
        """Whether any clause references an undefined named structure
        (such maps cannot be probed — evaluation would raise)."""
        for clause in route_map.clauses:
            for condition in clause.matches:
                for kind, _label, getter in _NAMED_MATCHES:
                    if isinstance(condition, kind):
                        if getattr(config, getter)(condition.name) is None:
                            return True
        return False

    def _check_references(self, report: LintReport, config: RouterConfig) -> None:
        for map_name in sorted(config.route_maps):
            route_map = config.route_maps[map_name]
            for clause in route_map.clauses:
                for condition in clause.matches:
                    for kind, label, getter in _NAMED_MATCHES:
                        if not isinstance(condition, kind):
                            continue
                        if getattr(config, getter)(condition.name) is None:
                            report.add(
                                Finding(
                                    rule="undefined-ref",
                                    severity=Severity.HIGH,
                                    router=config.hostname,
                                    ref=f"route-map {map_name}",
                                    clause_seq=clause.seq,
                                    message=(
                                        f"undefined {label} "
                                        f"{condition.name!r}"
                                    ),
                                    fix_hint=(
                                        f"define {label} {condition.name} "
                                        f"or drop the match"
                                    ),
                                )
                            )
        if config.bgp is None:
            return
        for neighbor in config.bgp.sorted_neighbors():
            for direction, policy in (
                ("in", neighbor.import_policy),
                ("out", neighbor.export_policy),
            ):
                if policy is not None and policy not in config.route_maps:
                    report.add(
                        Finding(
                            rule="undefined-ref",
                            severity=Severity.HIGH,
                            router=config.hostname,
                            ref=f"session {neighbor.key()}",
                            message=(
                                f"undefined route-map {policy!r} "
                                f"applied {direction}"
                            ),
                            fix_hint=f"define route-map {policy}",
                        )
                    )
        for redistribution in config.bgp.redistributions:
            name = redistribution.route_map
            if name is not None and name not in config.route_maps:
                report.add(
                    Finding(
                        rule="undefined-ref",
                        severity=Severity.HIGH,
                        router=config.hostname,
                        ref=f"redistribute {redistribution.protocol.value}",
                        message=f"undefined route-map {name!r}",
                        fix_hint=f"define route-map {name}",
                    )
                )

    # -- per-map rules (shadowing, no-op sets, inline matches) -----------------

    def _check_route_maps(self, report: LintReport, config: RouterConfig) -> None:
        for map_name in sorted(config.route_maps):
            route_map = config.route_maps[map_name]
            self._check_set_actions(report, config, route_map)
            self._check_shadowing(report, config, route_map)

    def _check_set_actions(
        self, report: LintReport, config: RouterConfig, route_map: RouteMap
    ) -> None:
        for clause in route_map.clauses:
            ref = f"route-map {route_map.name}"
            for condition in clause.matches:
                if isinstance(condition, MatchCommunityInline):
                    report.add(
                        Finding(
                            rule="inline-community-match",
                            severity=Severity.HIGH,
                            router=config.hostname,
                            ref=ref,
                            clause_seq=clause.seq,
                            message=(
                                f"literal community "
                                f"{condition.community} in match "
                                f"position (invalid IOS)"
                            ),
                            fix_hint=(
                                "declare a community-list and match it "
                                "by name"
                            ),
                        )
                    )
            if clause.action is Action.DENY and clause.sets:
                report.add(
                    Finding(
                        rule="noop-set",
                        severity=Severity.LOW,
                        router=config.hostname,
                        ref=ref,
                        clause_seq=clause.seq,
                        message=(
                            f"{len(clause.sets)} set action(s) on a deny "
                            f"clause are never applied"
                        ),
                        fix_hint="drop the sets or make the clause permit",
                    )
                )
            for action in clause.sets:
                if isinstance(action, SetCommunity):
                    if not action.communities:
                        report.add(
                            Finding(
                                rule="noop-set",
                                severity=Severity.LOW,
                                router=config.hostname,
                                ref=ref,
                                clause_seq=clause.seq,
                                message="set community with no communities",
                                fix_hint="name the communities to set",
                            )
                        )
                    elif not action.additive and clause.action is Action.PERMIT:
                        report.add(
                            Finding(
                                rule="non-additive-community",
                                severity=Severity.MEDIUM,
                                router=config.hostname,
                                ref=ref,
                                clause_seq=clause.seq,
                                message=(
                                    "set community without additive "
                                    "replaces the route's communities"
                                ),
                                fix_hint="append the additive keyword",
                            )
                        )
                elif isinstance(action, SetAsPathPrepend) and action.count <= 0:
                    report.add(
                        Finding(
                            rule="noop-set",
                            severity=Severity.LOW,
                            router=config.hostname,
                            ref=ref,
                            clause_seq=clause.seq,
                            message="as-path prepend with count <= 0",
                            fix_hint="prepend at least once",
                        )
                    )

    def _check_shadowing(
        self, report: LintReport, config: RouterConfig, route_map: RouteMap
    ) -> None:
        if len(route_map.clauses) < 2:
            return
        if self._map_undefined(config, route_map):
            return  # undefined-ref already reported; probing would raise
        for clause in route_map.clauses:
            for condition in clause.matches:
                # Grid routes carry empty AS paths and the grid has no
                # ACL-derived prefixes, so reachability over the grid
                # would under-approximate these match kinds.
                if isinstance(condition, (MatchAsPathList, MatchAcl)):
                    return
        universe = CandidateUniverse.for_policy(config, route_map)
        prepared = route_map.prepare(config)
        fired: Set[int] = set()
        try:
            for route in universe.cached_routes():
                clause = prepared.find_clause(route)
                if clause is not None:
                    fired.add(clause.seq)
        except PolicyEvaluationError:
            return
        for clause in route_map.clauses:
            if clause.seq not in fired:
                report.add(
                    Finding(
                        rule="shadowed-clause",
                        severity=Severity.MEDIUM,
                        router=config.hostname,
                        ref=f"route-map {route_map.name}",
                        clause_seq=clause.seq,
                        message=(
                            "clause is unreachable: earlier clauses "
                            "capture every candidate route it matches"
                        ),
                        fix_hint=(
                            "reorder the clauses or delete the dead one"
                        ),
                    )
                )

    # -- unused definitions ----------------------------------------------------

    def _check_unused(self, report: LintReport, config: RouterConfig) -> None:
        referenced: Dict[str, Set[str]] = {
            "prefix-list": set(),
            "community-list": set(),
            "as-path list": set(),
            "access-list": set(),
        }
        originated: Set[Community] = set()
        for route_map in config.route_maps.values():
            for clause in route_map.clauses:
                for condition in clause.matches:
                    for kind, label, _getter in _NAMED_MATCHES:
                        if isinstance(condition, kind):
                            referenced[label].add(condition.name)
                for action in clause.sets:
                    if isinstance(action, SetCommunity):
                        originated.update(action.communities)
        defined = (
            ("prefix-list", config.prefix_lists),
            ("community-list", config.community_lists),
            ("as-path list", config.as_path_lists),
            ("access-list", config.access_lists),
        )
        for label, table in defined:
            for name in sorted(table):
                if name in referenced[label]:
                    continue
                if label == "community-list":
                    # The reference layout defines every role slot's
                    # list on every border, but a router's own slot is
                    # only *originated* (tagged on ingress), never
                    # matched — that is by design, not dead config.
                    permitted = table[name].permitted_communities()
                    if permitted and permitted <= originated:
                        continue
                report.add(
                    Finding(
                        rule="unused-list",
                        severity=Severity.LOW,
                        router=config.hostname,
                        ref=f"{label} {name}",
                        message=f"{label} {name!r} is never referenced",
                        fix_hint="delete it or reference it",
                    )
                )

    # -- conformance rules (config vs topology) --------------------------------

    def _check_conformance(
        self, report: LintReport, config: RouterConfig, spec
    ) -> None:
        router = config.hostname
        for interface_spec in spec.interfaces:
            interface = config.get_interface(interface_spec.name)
            if interface is None:
                report.add(
                    Finding(
                        rule="ifc-ip-mismatch",
                        severity=Severity.HIGH,
                        router=router,
                        ref=f"interface {interface_spec.name}",
                        message="interface missing from the config",
                        fix_hint=f"configure {interface_spec.cidr()}",
                    )
                )
            elif interface.address != interface_spec.address:
                report.add(
                    Finding(
                        rule="ifc-ip-mismatch",
                        severity=Severity.HIGH,
                        router=router,
                        ref=f"interface {interface_spec.name}",
                        message=(
                            f"address {interface.address} does not match "
                            f"the topology's {interface_spec.address}"
                        ),
                        fix_hint=f"set address {interface_spec.cidr()}",
                    )
                )
        if config.bgp is None:
            report.add(
                Finding(
                    rule="local-as-mismatch",
                    severity=Severity.HIGH,
                    router=router,
                    ref="bgp",
                    message="no BGP process configured",
                    fix_hint=f"configure router bgp {spec.asn}",
                )
            )
            return
        if config.bgp.asn != spec.asn:
            report.add(
                Finding(
                    rule="local-as-mismatch",
                    severity=Severity.HIGH,
                    router=router,
                    ref="bgp",
                    message=(
                        f"local AS {config.bgp.asn} does not match the "
                        f"topology's AS {spec.asn}"
                    ),
                    fix_hint=f"use router bgp {spec.asn}",
                )
            )
        if (
            config.bgp.router_id is not None
            and config.bgp.router_id != spec.router_id
        ):
            report.add(
                Finding(
                    rule="router-id-mismatch",
                    severity=Severity.HIGH,
                    router=router,
                    ref="bgp",
                    message=(
                        f"router-id {config.bgp.router_id} does not match "
                        f"the topology's {spec.router_id}"
                    ),
                    fix_hint=f"set bgp router-id {spec.router_id}",
                )
            )
        spec_ips = {str(item.ip): item for item in spec.neighbors}
        config_ips = set(config.bgp.neighbors)
        for ip in sorted(set(spec_ips) - config_ips):
            peer = spec_ips[ip].peer_name or "peer"
            report.add(
                Finding(
                    rule="missing-neighbor",
                    severity=Severity.HIGH,
                    router=router,
                    ref=f"session {ip}",
                    message=f"session to {peer} ({ip}) is not configured",
                    fix_hint=(
                        f"add neighbor {ip} remote-as {spec_ips[ip].asn}"
                    ),
                )
            )
        for ip in sorted(config_ips - set(spec_ips)):
            report.add(
                Finding(
                    rule="extra-neighbor",
                    severity=Severity.HIGH,
                    router=router,
                    ref=f"session {ip}",
                    message=f"neighbor {ip} has no peer in the topology",
                    fix_hint="remove the neighbor",
                )
            )
        spec_networks = {str(prefix) for prefix in spec.networks}
        config_networks = {str(prefix) for prefix in config.bgp.networks}
        for network in sorted(spec_networks - config_networks):
            report.add(
                Finding(
                    rule="missing-network",
                    severity=Severity.HIGH,
                    router=router,
                    ref=f"network {network}",
                    message=f"network {network} is not announced",
                    fix_hint=f"add network {network}",
                )
            )
        for network in sorted(config_networks - spec_networks):
            report.add(
                Finding(
                    rule="extra-network",
                    severity=Severity.HIGH,
                    router=router,
                    ref=f"network {network}",
                    message=(
                        f"announced network {network} does not exist in "
                        f"the topology"
                    ),
                    fix_hint="remove the network statement",
                )
            )

    # -- role rules (transit-leak, untagged-ingress, asymmetry) ----------------

    def _guarded_sessions(self) -> List[Tuple[str, str, int, str]]:
        """``(router, neighbor_ip, slot, peer_label)`` for every session
        whose policies enforce a transit-forbidden role slot.

        Border topologies guard the external attachment session itself;
        hub-shaped ones guard the hub's internal session toward each
        attached spoke (the spoke's external session is policy-free by
        design).
        """
        if self.roles is None or self.topology is None:
            return []
        sessions: List[Tuple[str, str, int, str]] = []
        for attachment in self.roles.transit_forbidden():
            if not self.hub:
                sessions.append(
                    (
                        attachment.router,
                        str(attachment.peer.peer_ip),
                        attachment.index,
                        attachment.role_name,
                    )
                )
                continue
            hub_spec = self.topology.router("R1")
            for neighbor in hub_spec.neighbors:
                if neighbor.peer_name == attachment.router:
                    sessions.append(
                        (
                            "R1",
                            str(neighbor.ip),
                            attachment.index,
                            attachment.role_name,
                        )
                    )
        return sessions

    def _forbidden_tags(self, slot: int) -> List[Tuple[int, Community]]:
        """Every *other* transit-forbidden slot's shared community."""
        assert self.roles is not None
        tags = []
        for index in self.roles.indices():
            if index == slot:
                continue
            try:
                tags.append((index, ingress_community(index)))
            except ValueError:
                continue  # slot below the community numbering floor
        return tags

    def _check_sessions(self, report: LintReport) -> None:
        if self.roles is None:
            return
        for router, ip, slot, label in self._guarded_sessions():
            config = self.configs.get(router)
            if config is None or config.bgp is None:
                continue  # conformance rules already flag missing BGP
            neighbor = config.bgp.neighbors.get(ip)
            if neighbor is None:
                continue  # missing-neighbor already flags the session
            self._check_transit_leak(report, config, neighbor, slot, label)
            self._check_untagged_ingress(report, config, neighbor, slot, label)
        if not self.hub:
            self._check_session_symmetry(report)

    def _probe_routes(
        self, config: RouterConfig, route_map: RouteMap, communities: Iterable[Community]
    ) -> Iterable[Route]:
        """Grid prefixes carrying exactly ``communities`` — explicit
        probes, because a faulted map may no longer *mention* the tag
        it ought to filter (the grid alone would miss the leak)."""
        universe = CandidateUniverse.for_policy(config, route_map)
        carried = frozenset(communities)
        for prefix in universe.candidate_prefixes():
            base = Route(prefix=prefix)
            if not carried:
                yield base
                continue
            builder = RouteBuilder(base)
            builder.set_communities(carried)
            yield builder.freeze()

    def _check_transit_leak(
        self, report: LintReport, config, neighbor, slot: int, label: str
    ) -> None:
        if neighbor.export_policy is None:
            report.add(
                Finding(
                    rule="transit-leak",
                    severity=Severity.HIGH,
                    router=config.hostname,
                    ref=f"session {neighbor.key()}",
                    message=(
                        f"transit-forbidden session to {label} has no "
                        f"export filter"
                    ),
                    fix_hint="attach the role's egress filter map",
                )
            )
            return
        route_map = config.route_maps.get(neighbor.export_policy)
        if route_map is None:
            return  # undefined-ref already flags the attachment
        prepared = route_map.prepare(config)
        for index, tag in self._forbidden_tags(slot):
            try:
                for route in self._probe_routes(config, route_map, (tag,)):
                    # Permitting the probe at all is the leak: even a
                    # clause that strips the tag still transits the
                    # route, it just hides the evidence.
                    result = prepared.evaluate(route)
                    if result.permitted:
                        report.add(
                            Finding(
                                rule="transit-leak",
                                severity=Severity.HIGH,
                                router=config.hostname,
                                ref=f"route-map {route_map.name}",
                                clause_seq=result.clause_seq,
                                message=(
                                    f"exports routes tagged {tag} "
                                    f"(role slot {index}) to {label} — "
                                    f"transit"
                                ),
                                fix_hint=(
                                    f"deny community {tag} before the "
                                    f"final permit"
                                ),
                            )
                        )
                        break
            except PolicyEvaluationError:
                return  # undefined-ref already reported

    def _check_untagged_ingress(
        self, report: LintReport, config, neighbor, slot: int, label: str
    ) -> None:
        try:
            tag = ingress_community(slot)
        except ValueError:
            return
        session_ref = f"session {neighbor.key()}"
        if neighbor.import_policy is None:
            report.add(
                Finding(
                    rule="untagged-ingress",
                    severity=Severity.HIGH,
                    router=config.hostname,
                    ref=session_ref,
                    message=(
                        f"transit-forbidden session to {label} has no "
                        f"import policy tagging {tag}"
                    ),
                    fix_hint="attach the role's ingress tagging map",
                )
            )
            return
        route_map = config.route_maps.get(neighbor.import_policy)
        if route_map is None:
            return  # undefined-ref already flags the attachment
        try:
            prepared = route_map.prepare(config)
            for route in self._probe_routes(config, route_map, ()):
                result = prepared.evaluate(route)
                if result.permitted and tag not in result.route.communities:
                    report.add(
                        Finding(
                            rule="untagged-ingress",
                            severity=Severity.HIGH,
                            router=config.hostname,
                            ref=f"route-map {route_map.name}",
                            clause_seq=result.clause_seq,
                            message=(
                                f"imports routes from {label} without "
                                f"tagging {tag} — egress filters cannot "
                                f"recognize them"
                            ),
                            fix_hint=f"set community {tag} additive",
                        )
                    )
                    return
        except PolicyEvaluationError:
            return  # undefined-ref already reported

    def _check_session_symmetry(self, report: LintReport) -> None:
        assert self.roles is not None
        attachments = list(self.roles.transit_forbidden()) + list(
            self.roles.customers
        )
        for attachment in attachments:
            config = self.configs.get(attachment.router)
            if config is None or config.bgp is None:
                continue
            neighbor = config.bgp.neighbors.get(str(attachment.peer.peer_ip))
            if neighbor is None:
                continue
            has_import = neighbor.import_policy is not None
            has_export = neighbor.export_policy is not None
            if has_import != has_export:
                missing = "import" if has_export else "export"
                report.add(
                    Finding(
                        rule="asymmetric-session",
                        severity=Severity.LOW,
                        router=config.hostname,
                        ref=f"session {neighbor.key()}",
                        message=(
                            f"external session to "
                            f"{attachment.role_name} has no "
                            f"{missing} policy"
                        ),
                        fix_hint=f"attach an {missing} policy or drop both",
                    )
                )


def analyze_configs(
    configs: Dict[str, RouterConfig],
    topology: Optional[Topology] = None,
    texts: Optional[Dict[str, str]] = None,
) -> LintReport:
    """Run the full analyzer over a config set (the `repro lint` core)."""
    return PolicyAnalyzer(configs, topology=topology, texts=texts).analyze()
