"""Structured lint findings: the static-analysis counterpart of
:mod:`repro.campion.findings`.

A :class:`Finding` names the rule that fired, its severity, and the
*site* — router, route-map/list/session reference, clause sequence, or
rendered-text line — precisely enough that the validation harness can
match a finding against a fault-injection site, and an operator can
jump straight to the offending stanza.  A :class:`LintReport` is the
deterministic container the CLI, campaign journal, and fuzz harness
all consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Finding", "LintReport", "Severity"]


class Severity(enum.Enum):
    """How bad a finding is.

    HIGH findings are simulator-grounded correctness risks (the
    validation harness proves clean reference configs produce zero);
    MEDIUM are likely-wrong constructs; LOW are hygiene.
    """

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"

    @property
    def rank(self) -> int:
        """Sort key: most severe first."""
        return _SEVERITY_RANK[self]

    def __str__(self) -> str:
        return self.value


_SEVERITY_RANK = {Severity.HIGH: 0, Severity.MEDIUM: 1, Severity.LOW: 2}


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a config site.

    ``ref`` names the artifact the finding is about (``route-map
    FILTER_COMM_OUT_R3``, ``session 10.0.3.2``, ``community-list 2``);
    ``clause_seq`` pins a route-map clause and ``line`` a rendered-text
    line, when the rule can localize that far.
    """

    rule: str
    severity: Severity
    router: str
    ref: str
    message: str
    fix_hint: str = ""
    clause_seq: Optional[int] = None
    line: Optional[int] = None

    def site(self) -> str:
        """The finding's location, most specific part last."""
        parts = [self.router]
        if self.ref:
            parts.append(self.ref)
        if self.clause_seq is not None:
            parts.append(f"seq {self.clause_seq}")
        if self.line is not None:
            parts.append(f"line {self.line}")
        return " ".join(parts)

    def describe(self) -> str:
        text = (
            f"[{self.severity.value.upper():>6}] {self.rule}: "
            f"{self.site()}: {self.message}"
        )
        if self.fix_hint:
            text += f" (fix: {self.fix_hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "router": self.router,
            "ref": self.ref,
            "clause_seq": self.clause_seq,
            "line": self.line,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def sort_key(self) -> tuple:
        return (
            self.severity.rank,
            self.router,
            self.rule,
            self.ref,
            self.clause_seq if self.clause_seq is not None else -1,
            self.line if self.line is not None else -1,
            self.message,
        )


@dataclass
class LintReport:
    """Every finding one analysis pass produced, deterministically ordered.

    Ordering is severity-major then site-lexicographic — a pure function
    of the finding set, so two runs over the same configs render and
    serialize byte-identically (the fuzz corpus determinism test relies
    on this).
    """

    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: "LintReport | List[Finding]") -> None:
        items = (
            findings.findings
            if isinstance(findings, LintReport)
            else findings
        )
        self.findings.extend(items)

    def sort(self) -> "LintReport":
        self.findings.sort(key=Finding.sort_key)
        return self

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    @property
    def high(self) -> int:
        return self.count(Severity.HIGH)

    def count(self, severity: Severity) -> int:
        return sum(1 for item in self.findings if item.severity is severity)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for item in self.findings:
            counts[item.rule] = counts.get(item.rule, 0) + 1
        return dict(sorted(counts.items()))

    def for_router(self, router: str) -> List[Finding]:
        return [item for item in self.findings if item.router == router]

    def to_dict(self) -> dict:
        ordered = sorted(self.findings, key=Finding.sort_key)
        return {
            "findings": [item.to_dict() for item in ordered],
            "counts": {
                "total": len(self.findings),
                "high": self.count(Severity.HIGH),
                "medium": self.count(Severity.MEDIUM),
                "low": self.count(Severity.LOW),
            },
            "by_rule": self.by_rule(),
        }

    def render_text(self) -> str:
        ordered = sorted(self.findings, key=Finding.sort_key)
        lines = [item.describe() for item in ordered]
        lines.append(
            f"lint: {len(self.findings)} finding(s) — "
            f"{self.count(Severity.HIGH)} high, "
            f"{self.count(Severity.MEDIUM)} medium, "
            f"{self.count(Severity.LOW)} low"
        )
        return "\n".join(lines)
