"""Static analysis of routing policy, grounded in the simulator.

``repro lint`` front-end, campaign ``--lint`` axis, and fuzz-harness
cross-checks all build on :func:`analyze_configs`; the precision/recall
story lives in :mod:`repro.analysis.validation`.
"""

from .analyzer import PolicyAnalyzer, RULES, analyze_configs, analyze_text
from .findings import Finding, LintReport, Severity
from .validation import (
    CELLS,
    EXPECTED_RULES,
    FaultOutcome,
    ValidationReport,
    run_validation,
    validate_cell,
)

__all__ = [
    "CELLS",
    "EXPECTED_RULES",
    "FaultOutcome",
    "Finding",
    "LintReport",
    "PolicyAnalyzer",
    "RULES",
    "Severity",
    "ValidationReport",
    "analyze_configs",
    "analyze_text",
    "run_validation",
    "validate_cell",
]
