"""Simulator-grounded validation of the analyzer: precision + recall.

Static-analysis rules are cheap to write and easy to get subtly wrong;
this harness holds every rule to the same ground truth the rest of the
repo trusts — the reference configs and fault catalog the simulator is
validated against:

* **Precision**: across all nine canonical family cells (the same grid
  the route-model differential suite runs), the *clean* reference
  configs must produce **zero HIGH findings**.  Any HIGH finding on a
  config the simulator proves correct is a false positive by
  construction.

* **Recall**: every fault in the :mod:`repro.llm.synthesis_faults`
  catalog (including ``multihome_untagged_home``) is injected at its
  designated router via the same :class:`~repro.llm.faults.DraftState`
  machinery the synthesis loop uses; the analyzer must then emit at
  least one finding **at the injection site**.  A fault whose transform
  is an identity on a given cell (e.g. merging a single-stanza egress
  map) is recorded as not applicable rather than silently passing.

The per-rule table this produces is checked in under ``reports/`` and
gated in CI: clean HIGH findings or sub-100% recall fail the build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cisco.generator import generate_cisco
from ..llm.faults import FaultTargetError
from ..llm.synthesis_faults import fault_designations, synthesis_fault_catalog
from ..topology.families import generate_network
from ..topology.reference import build_reference_configs
from .analyzer import RULES, analyze_configs
from .findings import Severity

__all__ = [
    "CELLS",
    "EXPECTED_RULES",
    "FaultOutcome",
    "ValidationReport",
    "run_validation",
    "validate_cell",
]

#: The nine canonical family cells — same grid as the route-model
#: differential suite, so "clean" here means "the simulator verifies
#: the global invariant on these configs".
CELLS: List[Tuple[str, int, dict]] = [
    ("star", 7, {}),
    ("chain", 6, {}),
    ("ring", 6, {}),
    ("mesh", 6, {}),
    ("dumbbell", 6, {}),
    ("random", 8, {"seed": 1, "roles": "c2i2h2"}),
    ("random", 8, {"seed": 2, "roles": "c2i2h1", "place": "degree"}),
    ("waxman", 8, {"seed": 1, "roles": "c2i2h2"}),
    ("waxman", 8, {"seed": 3, "roles": "c1i3h1p1", "place": "degree"}),
]

#: fault key -> the rule(s) expected to localize it.  Site-matching
#: findings outside this set still count toward overall recall (any
#: finding at the injection site detects the fault), but per-rule
#: recall is attributed through this map.
EXPECTED_RULES: Dict[str, Tuple[str, ...]] = {
    "cli_keywords": ("cli-keywords",),
    "stray_ip_routing": ("stray-ip-routing",),
    "misplaced_neighbor_command": ("misplaced-neighbor",),
    "inline_match_community": ("inline-community-match",),
    "non_additive_set_community": ("non-additive-community",),
    "and_or_semantics": ("transit-leak",),
    "egress_permits_tagged": ("transit-leak",),
    "missing_ingress_tag": ("untagged-ingress",),
    "multihome_untagged_home": ("untagged-ingress",),
    "wrong_interface_ip": ("ifc-ip-mismatch",),
    "wrong_local_as": ("local-as-mismatch",),
    "wrong_router_id": ("router-id-mismatch",),
    "missing_neighbor": ("missing-neighbor",),
    "extra_neighbor": ("extra-neighbor",),
    "missing_network": ("missing-network",),
    "extra_network": ("extra-network",),
}


def cell_id(family: str, size: int, extra: dict) -> str:
    return f"{family}-{size}" + "".join(f"-{value}" for value in extra.values())


@dataclass(frozen=True)
class FaultOutcome:
    """One (cell, fault) injection and what the analyzer saw."""

    cell: str
    fault: str
    router: str
    applicable: bool
    detected: bool
    rules: Tuple[str, ...] = ()  # rules that fired at the injection site
    reason: str = ""  # why not applicable

    def to_dict(self) -> dict:
        return {
            "cell": self.cell,
            "fault": self.fault,
            "router": self.router,
            "applicable": self.applicable,
            "detected": self.detected,
            "rules": list(self.rules),
            "reason": self.reason,
        }


@dataclass
class RuleStats:
    """Per-rule precision/recall over the whole harness."""

    rule: str
    severity: str
    clean_findings: int = 0  # false positives by construction
    site_findings: int = 0  # true positives: fired at an injection site
    expected: int = 0  # applicable faults this rule should localize
    localized: int = 0  # of those, how many it actually localized

    @property
    def precision(self) -> Optional[float]:
        fired = self.site_findings + self.clean_findings
        return self.site_findings / fired if fired else None

    @property
    def recall(self) -> Optional[float]:
        return self.localized / self.expected if self.expected else None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "clean_findings": self.clean_findings,
            "site_findings": self.site_findings,
            "expected": self.expected,
            "localized": self.localized,
            "precision": self.precision,
            "recall": self.recall,
        }


@dataclass
class ValidationReport:
    """Everything the harness measured, with the CI gates as properties."""

    cells: List[str] = field(default_factory=list)
    clean_findings: int = 0
    clean_high: int = 0
    clean_by_rule: Dict[str, int] = field(default_factory=dict)
    outcomes: List[FaultOutcome] = field(default_factory=list)

    @property
    def applicable(self) -> int:
        return sum(1 for item in self.outcomes if item.applicable)

    @property
    def detected(self) -> int:
        return sum(
            1 for item in self.outcomes if item.applicable and item.detected
        )

    @property
    def recall(self) -> Optional[float]:
        return self.detected / self.applicable if self.applicable else None

    @property
    def missed(self) -> List[FaultOutcome]:
        return [
            item
            for item in self.outcomes
            if item.applicable and not item.detected
        ]

    @property
    def ok(self) -> bool:
        """The CI gate: no clean HIGH findings, full catalog recall."""
        return self.clean_high == 0 and self.recall == 1.0

    def per_rule(self) -> List[RuleStats]:
        stats = {
            rule: RuleStats(rule=rule, severity=severity.value)
            for rule, (severity, _description) in RULES.items()
        }
        for rule, count in self.clean_by_rule.items():
            stats.setdefault(
                rule, RuleStats(rule=rule, severity="?")
            ).clean_findings += count
        for outcome in self.outcomes:
            if not outcome.applicable:
                continue
            expected = EXPECTED_RULES.get(outcome.fault, ())
            for rule in outcome.rules:
                entry = stats.setdefault(
                    rule, RuleStats(rule=rule, severity="?")
                )
                entry.site_findings += 1
            for rule in expected:
                entry = stats.setdefault(
                    rule, RuleStats(rule=rule, severity="?")
                )
                entry.expected += 1
                if rule in outcome.rules:
                    entry.localized += 1
        return [stats[rule] for rule in sorted(stats)]

    def to_dict(self) -> dict:
        return {
            "cells": self.cells,
            "clean": {
                "findings": self.clean_findings,
                "high": self.clean_high,
                "by_rule": dict(sorted(self.clean_by_rule.items())),
            },
            "faults": {
                "total": len(self.outcomes),
                "applicable": self.applicable,
                "detected": self.detected,
                "recall": self.recall,
            },
            "rules": [item.to_dict() for item in self.per_rule()],
            "outcomes": [item.to_dict() for item in self.outcomes],
            "ok": self.ok,
        }

    def render_text(self) -> str:
        lines = [
            f"lint validation: {len(self.cells)} cell(s), "
            f"{len(self.outcomes)} fault injection(s)"
        ]
        lines.append(
            f"  clean: {self.clean_findings} finding(s), "
            f"{self.clean_high} HIGH"
        )
        recall = self.recall
        rendered = "n/a" if recall is None else f"{100 * recall:.1f}%"
        lines.append(
            f"  faults: {self.detected}/{self.applicable} applicable "
            f"detected at site (recall {rendered})"
        )
        for item in self.missed:
            lines.append(
                f"    MISSED {item.fault} at {item.router} ({item.cell})"
            )
        lines.append(
            f"  {'rule':<24} {'sev':<6} {'clean':>5} {'site':>5} "
            f"{'recall':>7} {'precision':>9}"
        )
        for stats in self.per_rule():
            if not (
                stats.clean_findings or stats.site_findings or stats.expected
            ):
                continue
            recall_text = (
                "    -" if stats.recall is None else f"{stats.recall:5.2f}"
            )
            precision_text = (
                "        -"
                if stats.precision is None
                else f"{stats.precision:9.2f}"
            )
            lines.append(
                f"  {stats.rule:<24} {stats.severity:<6} "
                f"{stats.clean_findings:>5} {stats.site_findings:>5} "
                f"{recall_text:>7} {precision_text}"
            )
        lines.append(f"  gate: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def validate_cell(
    family: str, size: int, extra: Optional[dict] = None
) -> Tuple[int, int, Dict[str, int], List[FaultOutcome]]:
    """Run the harness over one cell.

    Returns ``(clean_findings, clean_high, clean_by_rule, outcomes)``.
    """
    from ..llm.faults import DraftState

    extra = extra or {}
    label = cell_id(family, size, extra)
    topology = generate_network(family, size, **extra).topology
    configs = build_reference_configs(topology)
    clean_texts = {
        name: generate_cisco(config) for name, config in configs.items()
    }
    clean = analyze_configs(configs, topology=topology, texts=clean_texts)
    catalog = synthesis_fault_catalog(topology)
    designations = fault_designations(topology)
    outcomes: List[FaultOutcome] = []
    for key in sorted(designations):
        fault = catalog.get(key)
        router = designations[key]
        if fault is None or router not in configs:
            continue
        state = DraftState(configs[router], generate_cisco)
        state.inject(fault)
        try:
            faulted = state.current_config()
            text = state.render()
        except FaultTargetError as exc:
            outcomes.append(
                FaultOutcome(
                    cell=label,
                    fault=key,
                    router=router,
                    applicable=False,
                    detected=False,
                    reason=f"no target: {exc}",
                )
            )
            continue
        if text == clean_texts[router]:
            # The transform was an identity on this cell (e.g. merging
            # the deny stanzas of a single-stanza egress map): there is
            # nothing for any analysis to find.
            outcomes.append(
                FaultOutcome(
                    cell=label,
                    fault=key,
                    router=router,
                    applicable=False,
                    detected=False,
                    reason="identity transform on this cell",
                )
            )
            continue
        mutated = dict(configs)
        mutated[router] = faulted
        report = analyze_configs(
            mutated, topology=topology, texts={router: text}
        )
        site = report.for_router(router)
        outcomes.append(
            FaultOutcome(
                cell=label,
                fault=key,
                router=router,
                applicable=True,
                detected=bool(site),
                rules=tuple(sorted({item.rule for item in site})),
            )
        )
    by_rule = clean.by_rule()
    return len(clean), clean.count(Severity.HIGH), by_rule, outcomes


def run_validation(
    cells: Optional[List[Tuple[str, int, dict]]] = None,
) -> ValidationReport:
    """Run the full harness (all nine cells unless narrowed)."""
    report = ValidationReport()
    for family, size, extra in cells if cells is not None else CELLS:
        report.cells.append(cell_id(family, size, extra))
        findings, high, by_rule, outcomes = validate_cell(family, size, extra)
        report.clean_findings += findings
        report.clean_high += high
        for rule, count in by_rule.items():
            report.clean_by_rule[rule] = (
                report.clean_by_rule.get(rule, 0) + count
            )
        report.outcomes.extend(outcomes)
    return report
