"""Process-local memo caches for the symbolic analysis hot path.

Large campaign grids re-verify the same route-map *shapes* thousands of
times: every scenario of a family × size cell builds the same reference
policies, and within one scenario the synthesis loop re-checks every
router's invariants after each correction round even though most drafts
did not change.  The caches here let those repeated questions hit a
dictionary instead of re-enumerating a candidate-route universe.

Each cache is a :class:`MemoCache`: a FIFO-bounded mapping with hit/miss
accounting, registered in a module-level registry so campaign tooling
can report an aggregate hit rate (``cache_totals``) and tests can reset
everything (``reset_caches``) or compare memoized against unmemoized
runs (``set_memoization``).

Caches are process-local by design: campaign worker processes each grow
their own, which keeps the engine fork-safe with zero coordination.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

from ..obs import counter

__all__ = [
    "MemoCache",
    "cache_stats",
    "cache_totals",
    "memoization_enabled",
    "reset_caches",
    "set_memoization",
]

_MISS = object()

_REGISTRY: List["MemoCache"] = []

_ENABLED = True


class MemoCache:
    """A FIFO-bounded dict with hit/miss counters.

    ``lookup`` returns ``(hit, value)``; ``store`` inserts, evicting the
    oldest entry past ``max_entries``.  Honors the module-wide
    memoization switch: when disabled, every lookup misses and stores
    are dropped, so memoized and unmemoized code paths can be compared
    without touching call sites.
    """

    def __init__(self, name: str, max_entries: int = 4096) -> None:
        self.name = name
        self.max_entries = max_entries
        # Hit/miss accounting lives in the process-wide metrics registry
        # under ``memo.<name>.*`` so campaign workers ship it home with
        # every other counter.  A new instance starts its series at zero
        # (tests recreate same-named caches; stale values would lie).
        self._hits = counter(f"memo.{name}.hits")
        self._misses = counter(f"memo.{name}.misses")
        self._hits.reset()
        self._misses.reset()
        self._entries: Dict[Hashable, Any] = {}
        _REGISTRY.append(self)

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def lookup(self, key: Hashable) -> Tuple[bool, Any]:
        if not _ENABLED:
            self._misses.inc()
            return False, None
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self._misses.inc()
            return False, None
        self._hits.inc()
        return True, value

    def store(self, key: Hashable, value: Any) -> None:
        if not _ENABLED:
            return
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()
        self._hits.reset()
        self._misses.reset()

    def __len__(self) -> int:
        return len(self._entries)


def set_memoization(enabled: bool) -> None:
    """Globally enable/disable every registered cache (for benchmarks
    and memoized-vs-unmemoized regression tests)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def memoization_enabled() -> bool:
    return _ENABLED


def reset_caches() -> None:
    """Drop every entry and zero every counter."""
    for cache in _REGISTRY:
        cache.clear()


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-cache ``{name: {hits, misses, entries}}``."""
    return {
        cache.name: {
            "hits": cache.hits,
            "misses": cache.misses,
            "entries": len(cache),
        }
        for cache in _REGISTRY
    }


def cache_totals() -> Tuple[int, int]:
    """Aggregate ``(hits, misses)`` across every registered cache.

    Same-named caches share one registry counter pair, so totals sum
    over distinct names (summing instances would double-count).
    """
    by_name = {cache.name: cache for cache in _REGISTRY}
    hits = sum(cache.hits for cache in by_name.values())
    misses = sum(cache.misses for cache in by_name.values())
    return hits, misses
