"""Structured candidate-route enumeration for policy analysis.

The route-map guard language used by the experiments tests only three
kinds of facts about a route: membership of its prefix in mentioned
prefix ranges, presence of mentioned communities, and its source
protocol.  The analysis therefore enumerates a finite candidate set that
exercises every *region* those predicates can distinguish:

* for each mentioned :class:`PrefixRange` — the base prefix, examples at
  the boundary lengths (``low``, ``low+1``, midpoint, ``high``), a
  sibling prefix outside the range's cone, and a canonical prefix
  disjoint from everything mentioned;
* every subset of mentioned communities up to a configurable size (plus
  the empty and the full set);
* every mentioned protocol plus BGP/OSPF/CONNECTED defaults.

Evaluating the real (concrete) route-map on this grid gives a sound and,
for the guard language above, effectively exhaustive search — the same
role Batfish's BDD-based engine plays for SearchRoutePolicies, at a
scale a pure-Python reproduction can afford.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..netmodel.communities import Community, intern_communities
from ..netmodel.device import RouterConfig
from ..netmodel.ip import Prefix, PrefixRange
from ..netmodel.route import Protocol, Route
from ..netmodel.routebuilder import RouteBuilder
from ..netmodel.routing_policy import (
    MatchAcl,
    MatchAsPathList,
    MatchCommunityInline,
    MatchCommunityList,
    MatchPrefixList,
    MatchPrefixRanges,
    MatchProtocol,
    RouteMap,
    SetCommunity,
)
from .constraints import RouteConstraint
from .memo import MemoCache

__all__ = [
    "CandidateUniverse",
    "canonical_route_map_key",
    "mentioned_communities",
    "mentioned_prefix_ranges",
    "mentioned_protocols",
]

# A prefix no experiment config mentions, exercising the "everything
# else" region of the prefix algebra.
_CANONICAL_OUTSIDE = Prefix.parse("203.0.113.0/24")

MAX_COMMUNITY_SUBSET = 2

# (canonical route-map key) -> the (ranges, communities, protocols)
# structure extracted from that policy.  Two policies with the same
# canonicalized structure share one extraction.
_POLICY_CACHE = MemoCache("universe-policy")

# (universe fingerprint, constraint) -> materialized candidate routes.
_ROUTES_CACHE = MemoCache("universe-routes")


def canonical_route_map_key(
    config: RouterConfig, route_map: RouteMap
) -> "tuple | None":
    """A hashable key capturing everything policy evaluation can see.

    Each clause is serialized in evaluation order with its match
    conditions *resolved through the config* (a ``match ip address
    prefix-list PL`` contributes PL's entries, not just its name), so
    two (config, route_map) pairs with equal keys evaluate identically
    on every route.  Returns ``None`` — "don't memoize" — when the map
    contains a condition this canonicalizer does not understand.
    """
    clauses = []
    for clause in route_map.clauses:
        matches = []
        for condition in clause.matches:
            part = _canonical_match(config, condition)
            if part is None:
                return None
            matches.append(part)
        clauses.append(
            (clause.seq, clause.action, tuple(matches), tuple(clause.sets))
        )
    return (route_map.name, tuple(clauses))


def _canonical_match(config: RouterConfig, condition) -> "tuple | None":
    """One resolved match condition, or None if unrecognized."""
    if isinstance(condition, MatchPrefixList):
        prefix_list = config.get_prefix_list(condition.name)
        entries = tuple(prefix_list.entries) if prefix_list is not None else None
        return ("prefix-list", condition.name, entries)
    if isinstance(condition, MatchAcl):
        access_list = config.get_access_list(condition.name)
        entries = tuple(access_list.entries) if access_list is not None else None
        return ("acl", condition.name, entries)
    if isinstance(condition, MatchPrefixRanges):
        return ("ranges", condition.ranges)
    if isinstance(condition, MatchCommunityList):
        community_list = config.get_community_list(condition.name)
        entries = (
            tuple(community_list.entries) if community_list is not None else None
        )
        return ("community-list", condition.name, entries)
    if isinstance(condition, MatchCommunityInline):
        return ("community-inline", condition.community)
    if isinstance(condition, MatchAsPathList):
        as_path_list = config.get_as_path_list(condition.name)
        entries = (
            tuple(as_path_list.entries) if as_path_list is not None else None
        )
        return ("as-path", condition.name, entries)
    if isinstance(condition, MatchProtocol):
        return ("protocol", condition.protocol)
    return None


def mentioned_prefix_ranges(
    config: RouterConfig, route_map: RouteMap
) -> List[PrefixRange]:
    """All prefix ranges the policy can test, resolved through the config."""
    ranges: List[PrefixRange] = []
    for clause in route_map.clauses:
        for condition in clause.matches:
            if isinstance(condition, MatchPrefixRanges):
                ranges.extend(condition.ranges)
            elif isinstance(condition, MatchPrefixList):
                prefix_list = config.get_prefix_list(condition.name)
                if prefix_list is not None:
                    ranges.extend(entry.range for entry in prefix_list.entries)
            elif isinstance(condition, MatchAcl):
                access_list = config.get_access_list(condition.name)
                if access_list is not None:
                    ranges.extend(access_list.permitted_ranges())
    return _dedupe(ranges)


def mentioned_communities(
    config: RouterConfig, route_map: RouteMap
) -> List[Community]:
    """All communities the policy can test or set."""
    values: List[Community] = []
    for clause in route_map.clauses:
        for condition in clause.matches:
            if isinstance(condition, MatchCommunityList):
                community_list = config.get_community_list(condition.name)
                if community_list is not None:
                    for entry in community_list.entries:
                        values.extend(entry.communities)
            elif isinstance(condition, MatchCommunityInline):
                values.append(condition.community)
        for set_action in clause.sets:
            if isinstance(set_action, SetCommunity):
                values.extend(set_action.communities)
    return _dedupe(values)


def mentioned_protocols(route_map: RouteMap) -> List[Protocol]:
    """All protocols the policy can test."""
    values: List[Protocol] = []
    for clause in route_map.clauses:
        for condition in clause.matches:
            if isinstance(condition, MatchProtocol):
                values.append(condition.protocol)
    return _dedupe(values)


class CandidateUniverse:
    """A candidate-route grid built from one or more policies.

    Multiple (config, route_map) pairs can contribute structure — the
    Campion differ feeds both the original and the translation so the
    grid distinguishes every region either policy can see.
    """

    def __init__(self) -> None:
        self._ranges: List[PrefixRange] = []
        self._communities: List[Community] = []
        self._protocols: List[Protocol] = []

    @classmethod
    def for_policy(
        cls, config: RouterConfig, route_map: RouteMap
    ) -> "CandidateUniverse":
        """A universe seeded from one policy, memoized per canonicalized
        route-map structure.

        Repeated route-map shapes — the common case across a campaign
        grid's seeds, profiles, and correction rounds — reuse one
        extraction instead of re-walking the clauses.  The returned
        universe is a fresh object; callers may keep calling
        :meth:`add_constraint` / :meth:`add_prefix` on it.
        """
        key = canonical_route_map_key(config, route_map)
        if key is None:
            universe = cls()
            universe.add_policy(config, route_map)
            return universe
        hit, structure = _POLICY_CACHE.lookup(key)
        if not hit:
            universe = cls()
            universe.add_policy(config, route_map)
            structure = (
                tuple(universe._ranges),
                tuple(universe._communities),
                tuple(universe._protocols),
            )
            _POLICY_CACHE.store(key, structure)
        universe = cls()
        universe._ranges = list(structure[0])
        universe._communities = list(structure[1])
        universe._protocols = list(structure[2])
        return universe

    def fingerprint(self) -> tuple:
        """A hashable identity for the accumulated structure (the grid
        is a pure function of it, order included)."""
        return (
            tuple(self._ranges),
            tuple(self._communities),
            tuple(self._protocols),
        )

    def add_policy(self, config: RouterConfig, route_map: RouteMap) -> None:
        self._ranges = _dedupe(
            self._ranges + mentioned_prefix_ranges(config, route_map)
        )
        self._communities = _dedupe(
            self._communities + mentioned_communities(config, route_map)
        )
        self._protocols = _dedupe(self._protocols + mentioned_protocols(route_map))

    def add_constraint(self, constraint: RouteConstraint) -> None:
        self._ranges = _dedupe(self._ranges + list(constraint.prefix_ranges))
        self._communities = _dedupe(
            self._communities
            + sorted(constraint.required_communities)
            + sorted(constraint.forbidden_communities)
        )
        if constraint.protocol is not None:
            self._protocols = _dedupe(self._protocols + [constraint.protocol])

    def add_prefix(self, prefix: Prefix) -> None:
        self._ranges = _dedupe(self._ranges + [PrefixRange.exact(prefix)])

    # -- grid construction ---------------------------------------------------

    def candidate_prefixes(self) -> List[Prefix]:
        prefixes: Set[Prefix] = {_CANONICAL_OUTSIDE}
        for item in self._ranges:
            base = item.prefix
            prefixes.add(base)
            lengths = {
                item.low,
                min(item.low + 1, item.high),
                (item.low + item.high) // 2,
                item.high,
            }
            for length in lengths:
                prefixes.add(Prefix(base.network, length))
            if base.length > 0:
                sibling_bit = 1 << (32 - base.length)
                prefixes.add(Prefix(base.network ^ sibling_bit, base.length))
                prefixes.add(Prefix(base.network, base.length - 1))
        return sorted(prefixes)

    def candidate_community_sets(self) -> List[FrozenSet[Community]]:
        # Interned so every candidate route carrying the same community
        # combination shares one canonical frozenset — memo keys built
        # from these routes stay pointer-comparable.
        sets: Set[FrozenSet[Community]] = {intern_communities(frozenset())}
        values = self._communities
        for size in range(1, min(MAX_COMMUNITY_SUBSET, len(values)) + 1):
            for combo in itertools.combinations(values, size):
                sets.add(intern_communities(frozenset(combo)))
        if values:
            sets.add(intern_communities(frozenset(values)))
        return sorted(sets, key=lambda item: (len(item), sorted(map(str, item))))

    def candidate_protocols(self) -> List[Protocol]:
        return _dedupe(
            self._protocols + [Protocol.BGP, Protocol.OSPF, Protocol.CONNECTED]
        )

    def routes(
        self, constraint: "RouteConstraint | None" = None
    ) -> Iterable[Route]:
        """Yield the grid, filtered by an optional input constraint.

        Routes are derived through the same :class:`RouteBuilder`
        datapath policy evaluation uses, so every attribute is the
        canonical interned instance and memo keys over these routes
        compare pointer-cheap.
        """
        community_sets = self.candidate_community_sets()
        protocols = self.candidate_protocols()
        for prefix in self.candidate_prefixes():
            base = Route(prefix=prefix)
            for communities in community_sets:
                for protocol in protocols:
                    if not communities and protocol is base.protocol:
                        # No attribute differs from the base: yield it
                        # directly instead of freezing a clean builder,
                        # so the routes_reused counter stays a measure
                        # of real datapath reuse, not enumeration churn.
                        route = base
                    else:
                        builder = RouteBuilder(base)
                        if communities:
                            builder.set_communities(communities)
                        if protocol is not base.protocol:
                            builder.set_protocol(protocol)
                        route = builder.freeze()
                    if constraint is None or constraint.admits(route):
                        yield route

    def cached_routes(
        self, constraint: "RouteConstraint | None" = None
    ) -> "Tuple[Route, ...]":
        """The grid as a shared, memoized tuple.

        Routes are immutable, so one materialization is safely shared by
        every caller whose universe has the same fingerprint — the hot
        path of :mod:`repro.lightyear.verifier`, where each invariant
        check walks the full grid.
        """
        key = (self.fingerprint(), constraint)
        hit, routes = _ROUTES_CACHE.lookup(key)
        if not hit:
            routes = tuple(self.routes(constraint))
            _ROUTES_CACHE.store(key, routes)
        return routes

    def size_estimate(self) -> int:
        """Grid cardinality before constraint filtering."""
        return (
            len(self.candidate_prefixes())
            * len(self.candidate_community_sets())
            * len(self.candidate_protocols())
        )


def _dedupe(items: Sequence) -> List:
    """Order-preserving deduplication (hashable items)."""
    seen = set()
    result = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result
