"""Input-space constraints for symbolic route-policy questions.

A :class:`RouteConstraint` describes the set of candidate route
advertisements a question ranges over — the same role as the
``inputConstraints`` argument of Batfish's SearchRoutePolicies question.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..netmodel.communities import Community
from ..netmodel.ip import PrefixRange
from ..netmodel.route import Protocol, Route

__all__ = ["RouteConstraint"]


@dataclass(frozen=True)
class RouteConstraint:
    """A predicate over routes, conjunctive across fields.

    * ``prefix_ranges`` — if non-empty, the route's prefix must match at
      least one range (disjunction within the field);
    * ``required_communities`` — all must be carried;
    * ``forbidden_communities`` — none may be carried;
    * ``protocol`` — if set, the route's source protocol must equal it.
    """

    prefix_ranges: Tuple[PrefixRange, ...] = ()
    required_communities: FrozenSet[Community] = frozenset()
    forbidden_communities: FrozenSet[Community] = frozenset()
    protocol: Optional[Protocol] = None

    @classmethod
    def any_route(cls) -> "RouteConstraint":
        """The unconstrained input space."""
        return cls()

    @classmethod
    def with_community(cls, community: Community) -> "RouteConstraint":
        """Routes that carry ``community`` (the §4 semantic question)."""
        return cls(required_communities=frozenset({community}))

    @classmethod
    def without_community(cls, community: Community) -> "RouteConstraint":
        """Routes that do not carry ``community``."""
        return cls(forbidden_communities=frozenset({community}))

    def admits(self, route: Route) -> bool:
        """Whether a concrete route lies in the constrained space."""
        if self.prefix_ranges and not any(
            item.matches(route.prefix) for item in self.prefix_ranges
        ):
            return False
        if not self.required_communities <= route.communities:
            return False
        if self.forbidden_communities & route.communities:
            return False
        if self.protocol is not None and route.protocol != self.protocol:
            return False
        return True

    def describe(self) -> str:
        parts = []
        if self.prefix_ranges:
            rendered = ", ".join(str(item) for item in self.prefix_ranges)
            parts.append(f"prefix in [{rendered}]")
        if self.required_communities:
            rendered = ", ".join(
                sorted(str(item) for item in self.required_communities)
            )
            parts.append(f"has communities {{{rendered}}}")
        if self.forbidden_communities:
            rendered = ", ".join(
                sorted(str(item) for item in self.forbidden_communities)
            )
            parts.append(f"lacks communities {{{rendered}}}")
        if self.protocol is not None:
            parts.append(f"protocol {self.protocol.value}")
        return " and ".join(parts) if parts else "any route"
