"""SearchRoutePolicies: find routes a policy treats a given way.

This is the semantic-verifier primitive of the paper's second use case
(§4.1): "In case there is a semantic error, Batfish produces an example
where the local policy is not followed."  The search evaluates the
concrete route map over the structured candidate grid of
:mod:`repro.symbolic.candidates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netmodel.device import RouterConfig
from ..netmodel.route import Route
from ..netmodel.routing_policy import Action, PolicyEvaluationError, RouteMap
from .candidates import CandidateUniverse
from .constraints import RouteConstraint

__all__ = ["PolicySearchResult", "search_route_policies"]


@dataclass(frozen=True)
class PolicySearchResult:
    """One witness route and how the policy disposed of it."""

    input_route: Route
    action: Action
    output_route: Optional[Route]
    policy_name: str

    def describe(self) -> str:
        verdict = "permits" if self.action is Action.PERMIT else "denies"
        return (
            f"route-map {self.policy_name} {verdict} the route "
            f"[{self.input_route.describe()}]"
        )


def search_route_policies(
    config: RouterConfig,
    policy: "RouteMap | str",
    action: Action,
    constraint: Optional[RouteConstraint] = None,
    limit: int = 10,
) -> List[PolicySearchResult]:
    """Find up to ``limit`` routes in ``constraint`` that the policy
    disposes of with ``action``.

    An empty result means no candidate in the (finite but
    region-covering) grid exhibits the behaviour — the verification
    *passes* when the caller was looking for a violation.
    """
    route_map = _resolve(config, policy)
    universe = CandidateUniverse()
    universe.add_policy(config, route_map)
    if constraint is not None:
        universe.add_constraint(constraint)
    results: List[PolicySearchResult] = []
    for route in universe.routes(constraint):
        try:
            outcome = route_map.evaluate(route, config)
        except PolicyEvaluationError:
            # Undefined references are a structural problem reported by
            # the syntax/structure verifiers, not a semantic witness.
            continue
        if outcome.action is action:
            results.append(
                PolicySearchResult(
                    input_route=route,
                    action=outcome.action,
                    output_route=outcome.route if outcome.permitted else None,
                    policy_name=route_map.name,
                )
            )
            if len(results) >= limit:
                break
    return results


def policy_always(
    config: RouterConfig,
    policy: "RouteMap | str",
    action: Action,
    constraint: Optional[RouteConstraint] = None,
) -> Optional[PolicySearchResult]:
    """Check a universal property: every route in the space gets ``action``.

    Returns ``None`` when the property holds, else the first
    counterexample (a route receiving the opposite disposition).
    """
    opposite = Action.DENY if action is Action.PERMIT else Action.PERMIT
    witnesses = search_route_policies(config, policy, opposite, constraint, limit=1)
    return witnesses[0] if witnesses else None


def _resolve(config: RouterConfig, policy: "RouteMap | str") -> RouteMap:
    if isinstance(policy, RouteMap):
        return policy
    found = config.get_route_map(policy)
    if found is None:
        raise KeyError(f"route-map {policy!r} is not defined on {config.hostname}")
    return found
