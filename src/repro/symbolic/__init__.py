"""Symbolic route-policy analysis.

Implements the analysis primitives the paper borrows from Batfish and
Campion: finding witness routes a policy permits/denies
(:func:`search_route_policies`) and finding routes on which two policies
behave differently (:func:`compare_policies`), both over a structured
candidate grid that covers every region the policies' guards can
distinguish.
"""

from .candidates import (
    CandidateUniverse,
    canonical_route_map_key,
    mentioned_communities,
    mentioned_prefix_ranges,
    mentioned_protocols,
)
from .constraints import RouteConstraint
from .diff import BehaviorDifference, DifferenceKind, compare_policies
from .memo import (
    MemoCache,
    cache_stats,
    cache_totals,
    memoization_enabled,
    reset_caches,
    set_memoization,
)
from .search import PolicySearchResult, policy_always, search_route_policies

__all__ = [
    "BehaviorDifference",
    "CandidateUniverse",
    "DifferenceKind",
    "MemoCache",
    "PolicySearchResult",
    "RouteConstraint",
    "cache_stats",
    "cache_totals",
    "canonical_route_map_key",
    "compare_policies",
    "memoization_enabled",
    "mentioned_communities",
    "mentioned_prefix_ranges",
    "mentioned_protocols",
    "policy_always",
    "reset_caches",
    "search_route_policies",
    "set_memoization",
]
