"""Behavioural comparison of two route policies.

The Campion substitute uses this to implement the paper's fourth error
class, *policy behavior differences* (§3.1): "a difference would mean
that there are some route advertisements that are allowed by one router
but not allowed by the other", reported with an example prefix.  When
both policies permit a route but transform it differently (e.g. one
sets a MED the other does not — Table 2's "Setting wrong BGP MED value")
that is an *attribute-transform* difference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..netmodel.device import RouterConfig
from ..netmodel.route import Route
from ..netmodel.routing_policy import (
    Action,
    PolicyEvaluationError,
    RouteMap,
)
from .candidates import CandidateUniverse
from .constraints import RouteConstraint

__all__ = ["BehaviorDifference", "DifferenceKind", "compare_policies"]


class DifferenceKind(enum.Enum):
    """What kind of behavioural divergence a witness route exhibits."""

    DISPOSITION = "disposition"
    ATTRIBUTE_TRANSFORM = "attribute_transform"


@dataclass(frozen=True)
class BehaviorDifference:
    """A route on which two policies disagree."""

    kind: DifferenceKind
    route: Route
    original_action: Action
    translated_action: Action
    detail: str = ""

    def describe(self) -> str:
        if self.kind is DifferenceKind.DISPOSITION:
            original = (
                "ACCEPT" if self.original_action is Action.PERMIT else "REJECT"
            )
            translated = (
                "ACCEPT" if self.translated_action is Action.PERMIT else "REJECT"
            )
            return (
                f"for the prefix {self.route.prefix}, the original policy "
                f"performs {original} but the translation performs {translated}"
            )
        return (
            f"for the prefix {self.route.prefix}, both policies accept "
            f"the route but transform it differently: {self.detail}"
        )


def compare_policies(
    original_config: RouterConfig,
    original_policy: RouteMap,
    translated_config: RouterConfig,
    translated_policy: RouteMap,
    constraint: Optional[RouteConstraint] = None,
    limit: int = 10,
) -> List[BehaviorDifference]:
    """Find routes the two policies treat differently.

    The candidate grid is built from *both* policies (and the optional
    input constraint) so it distinguishes every region either side can
    test.
    """
    universe = CandidateUniverse()
    universe.add_policy(original_config, original_policy)
    universe.add_policy(translated_config, translated_policy)
    if constraint is not None:
        universe.add_constraint(constraint)
    differences: List[BehaviorDifference] = []
    for route in universe.routes(constraint):
        difference = _compare_on(
            route,
            original_config,
            original_policy,
            translated_config,
            translated_policy,
        )
        if difference is not None:
            differences.append(difference)
            if len(differences) >= limit:
                break
    return differences


def _compare_on(
    route: Route,
    original_config: RouterConfig,
    original_policy: RouteMap,
    translated_config: RouterConfig,
    translated_policy: RouteMap,
) -> Optional[BehaviorDifference]:
    try:
        original = original_policy.evaluate(route, original_config)
    except PolicyEvaluationError:
        return None
    try:
        translated = translated_policy.evaluate(route, translated_config)
    except PolicyEvaluationError as exc:
        return BehaviorDifference(
            kind=DifferenceKind.DISPOSITION,
            route=route,
            original_action=original.action,
            translated_action=Action.DENY,
            detail=f"translation failed to evaluate: {exc}",
        )
    if original.action is not translated.action:
        return BehaviorDifference(
            kind=DifferenceKind.DISPOSITION,
            route=route,
            original_action=original.action,
            translated_action=translated.action,
        )
    if original.action is Action.PERMIT:
        detail = _transform_detail(original.route, translated.route)
        if detail:
            return BehaviorDifference(
                kind=DifferenceKind.ATTRIBUTE_TRANSFORM,
                route=route,
                original_action=original.action,
                translated_action=translated.action,
                detail=detail,
            )
    return None


def _transform_detail(original: Route, translated: Route) -> str:
    """Human-readable summary of attribute transform differences.

    Route attributes are interned (route datapath v2), so the common
    no-difference case — both policies returned the very same canonical
    route, or attribute instances are shared — short-circuits on
    pointer checks before any set/tuple comparison runs.
    """
    if original is translated:
        return ""
    parts: List[str] = []
    if original.med != translated.med:
        parts.append(
            f"the original sets MED to {original.med} but the translation "
            f"sets MED to {translated.med}"
        )
    if original.local_pref != translated.local_pref:
        parts.append(
            f"the original sets local-preference to {original.local_pref} "
            f"but the translation sets it to {translated.local_pref}"
        )
    if (
        original.communities is not translated.communities
        and original.communities != translated.communities
    ):
        original_set = (
            "{" + ", ".join(sorted(str(c) for c in original.communities)) + "}"
        )
        translated_set = (
            "{" + ", ".join(sorted(str(c) for c in translated.communities)) + "}"
        )
        parts.append(
            f"the original leaves communities {original_set} but the "
            f"translation leaves {translated_set}"
        )
    if original.next_hop != translated.next_hop:
        parts.append(
            f"next-hop differs: {original.next_hop} vs {translated.next_hop}"
        )
    if (
        original.as_path is not translated.as_path
        and original.as_path != translated.as_path
    ):
        parts.append(
            f"as-path differs: [{original.as_path}] vs [{translated.as_path}]"
        )
    return "; ".join(parts)
