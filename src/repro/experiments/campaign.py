"""Streaming, resumable scenario-campaign engine.

The paper closes by noting that "much further testing in more complex
use cases is needed".  This module industrializes that testing: it
enumerates a scenario grid — topology family × size × seed ×
behavior profile × IIP ablation — and executes every scenario through
the full Verified Prompt Programming loop, optionally fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor` worker pool.  Each
scenario is seeded deterministically from its own coordinates, so a
campaign's results are identical whether it runs serially or on any
number of workers.

Execution streams: as each scenario completes, its result is appended
(and flushed) to a JSONL *campaign journal*, so a crashed or killed
grid loses at most the scenarios in flight.  The final
:class:`CampaignSummary` is reconstructed by folding over the journal,
and ``resume=True`` skips scenario keys the journal already holds — an
interrupted campaign picks up where it left off and produces final
JSON/CSV summaries byte-identical to an uninterrupted run.  To keep
that guarantee at any worker count, the written summaries contain only
deterministic fields; wall-clock timings, cache statistics, and
BGP-simulation accounting live in the journal and the rendered report.

Each worker process keeps warm per-topology simulation states (see
:mod:`repro.batfish.bgpsim`), so consecutive scenarios of the same
family × size re-converge only the routers whose final configs differ
from the previous scenario's; the engine reports full vs incremental
convergence counts alongside the symbolic-cache hit rate.
:func:`summary_from_journal` rebuilds a summary offline from any
journal (the ``repro campaign --report`` mode) — with a v2 journal the
artifacts are byte-identical to the live run's.
"""

from __future__ import annotations

import csv
import json
import logging
import math
import time
import traceback
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TextIO

from ..core import DEFAULT_IIP_IDS
from ..llm import BehaviorProfile
from ..obs import (
    counters_snapshot,
    delta as metrics_delta,
    drain_events,
    gauge,
    merge as metrics_merge,
    set_tracing,
    span,
    tracing_enabled,
    write_trace,
)
from ..topology.families import FAMILIES

__all__ = [
    "CampaignInterrupted",
    "CampaignStalled",
    "CampaignSummary",
    "CompletedScenario",
    "FamilySummary",
    "JOURNAL_VERSION",
    "PROFILES",
    "Scenario",
    "ScenarioResult",
    "build_grid",
    "execute_scenario",
    "fold_journal",
    "run_campaign",
    "run_scenario",
    "scenario_seed",
    "service_journals",
    "campaign_lint",
    "set_campaign_lint",
    "set_worker_shipping",
    "summary_from_journal",
    "summary_from_journals",
    "topology_seed",
    "worker_shipping",
]

# v2 added the grid's scenario keys to the header; v3 added the
# role/topo scenario axes (and their per-role verdict counts in each
# result row); v4 adds the role-placement axis (``place``) to scenario
# keys/rows and the route-datapath counters to each journal record;
# v5 adds the full traceback (``trace``) to error rows; v6 adds each
# record's flat metrics delta (``metrics`` — the repro.obs registry
# series the scenario moved); v7 adds the static-analysis columns
# (``lint_findings``/``lint_high``) to rows of ``--lint`` campaigns
# (absent — not null — on rows of campaigns that did not lint).
# Folding stays bidirectionally tolerant: unknown row fields are
# dropped, missing ones take their dataclass defaults.
JOURNAL_VERSION = 7

# Named behavior profiles a scenario can select.  Names (not objects)
# travel through the grid so scenarios stay trivially picklable.
PROFILES: Dict[str, BehaviorProfile] = {
    "default": BehaviorProfile(),
    "always-fix": BehaviorProfile.always_fix(),
    "sloppy": BehaviorProfile(
        fix=0.55, no_change=0.25, fix_with_new_error=0.12,
        fix_with_regression=0.08,
    ),
}


# -- the worker-shipping A/B toggle --------------------------------------------
#
# How a campaign hands scenarios to pool workers.  "coords" (the
# default) ships only the Scenario coordinate tuple and lets each
# worker regenerate its network locally — generation is byte-
# deterministic, so the worker's configs are identical to the parent's,
# and the task payload stays a few hundred bytes no matter the topology
# size.  "config" restores the heavyweight mode: the parent
# materializes every network and pickles it into the task payload,
# which is what campaigns effectively did when results carried whole
# configs.  Both modes must be observationally identical — the
# worker-shipping differential tests assert it.

_SHIP_MODE = "coords"


def set_worker_shipping(mode: str) -> None:
    """Select the campaign worker payload: ``"coords"`` or ``"config"``.

    ``coords`` ships scenario coordinates and regenerates networks in
    the worker (cheap payloads, fork-inherited warm simulation states);
    ``config`` materializes networks in the parent and pickles them to
    workers (the legacy heavy mode, kept for A/B comparison — mirrors
    ``set_route_model`` / ``set_incremental_simulation``).
    """
    if mode not in ("coords", "config"):
        raise ValueError(
            f"unknown worker shipping mode {mode!r} "
            f"(expected coords or config)"
        )
    global _SHIP_MODE
    _SHIP_MODE = mode


def worker_shipping() -> str:
    return _SHIP_MODE


# -- the campaign lint axis ----------------------------------------------------
#
# With linting on, every successful scenario also runs the static
# policy analyzer over the final synthesized drafts and records the
# finding counts in its result row (journal v7).  A module global —
# not a Scenario field — so scenario keys (and therefore resume
# identity) are unchanged; pool workers receive it via _init_worker,
# exactly like the optimization toggles.

_LINT_ENABLED = False


def set_campaign_lint(enabled: bool) -> None:
    """Enable per-scenario static analysis of the synthesized drafts."""
    global _LINT_ENABLED
    _LINT_ENABLED = bool(enabled)


def campaign_lint() -> bool:
    return _LINT_ENABLED


_LOGGER = logging.getLogger(__name__)

# Scenario keys whose parent-side generation failure was already logged,
# so a grid that repeats a bad coordinate does not flood the log.
_SHIPPING_FAILURES_LOGGED: set = set()


def _materialize_for_shipping(scenario: Scenario):
    """Parent-side network generation for config-shipping mode.

    Returns ``None`` when generation fails with the *expected* bad-
    coordinate error (``ValueError`` — unknown family, unsatisfiable
    role spec, malformed knob string): the worker then regenerates from
    coordinates and hits the same deterministic exception inside
    :func:`run_scenario`'s error handling, producing the identical
    error row a coords-mode campaign would journal.  Anything else is a
    real bug in generation and propagates — this used to swallow every
    exception, silently downgrading crashes to per-scenario error rows.
    """
    from .no_transit import materialize_network

    try:
        return materialize_network(
            scenario.family,
            scenario.size,
            roles=scenario.roles,
            topo=scenario.topo,
            topology_seed=topology_seed(scenario),
            place=scenario.place,
        )
    except ValueError as exc:
        key = scenario.key()
        if key not in _SHIPPING_FAILURES_LOGGED:
            _SHIPPING_FAILURES_LOGGED.add(key)
            _LOGGER.warning(
                "config-shipping generation failed for %s: %s "
                "(worker will journal the error row)", key, exc,
            )
        return None


@dataclass(frozen=True)
class Scenario:
    """One cell of the campaign grid.

    ``roles`` is a role spec (``c2i3h2`` — customers, ISPs, homes per
    ISP, optionally ``pN`` peers), ``topo`` a knob string
    (``p=0.4`` / ``alpha=0.5,beta=0.7``), and ``place`` a role-placement
    strategy (``degree`` pins customers to the lowest-degree routers);
    all three are ``default`` for the hand-shaped families, which have
    a fixed layout.
    """

    family: str
    size: int
    seed: int  # seed *index* within the campaign, not the RNG seed
    profile: str = "default"
    iips: bool = True
    roles: str = "default"
    topo: str = "default"
    place: str = "default"

    def key(self) -> str:
        return (
            f"{self.family}:{self.size}:{self.seed}:{self.profile}:"
            f"{'iips' if self.iips else 'noiips'}:{self.roles}:{self.topo}:"
            f"{self.place}"
        )


@dataclass(frozen=True)
class ScenarioResult:
    """One ScalingPoint-style row: scenario coordinates + measurements.

    ``roles_ok``/``roles_total`` summarize the per-role no-transit
    verdicts of the final global check (``CUSTOMER_2 ok, ISP_3
    VIOLATED, ...``); both stay 0 for hub-policy topologies, which
    carry no role assignment.
    """

    family: str
    size: int
    seed: int
    profile: str
    iips: bool
    automated_prompts: int = 0
    human_prompts: int = 0
    leverage: Optional[float] = None  # None encodes "no human prompts"
    verified: bool = False
    global_ok: bool = False
    duration_s: float = 0.0
    error: Optional[str] = None
    roles: str = "default"
    topo: str = "default"
    roles_ok: int = 0
    roles_total: int = 0
    place: str = "default"
    # Full traceback for error rows (journal-only, like duration_s:
    # stripped from summary JSON/CSV).  None on success and on rows
    # folded from pre-v5 journals.
    trace: Optional[str] = None
    # Static-analysis counts over the final synthesized drafts (v7,
    # ``--lint`` campaigns only).  None — and absent from summary
    # JSON — when the campaign did not lint, so non-lint summaries
    # stay byte-identical to v6.
    lint_findings: Optional[int] = None
    lint_high: Optional[int] = None

    def render(self) -> str:
        if self.error is not None:
            return (
                f"{self.family:>8} n={self.size:<2} seed={self.seed} "
                f"ERROR: {self.error}"
            )
        leverage = "inf" if self.leverage is None else f"{self.leverage:.1f}"
        line = (
            f"{self.family:>8} n={self.size:<2} seed={self.seed} "
            f"profile={self.profile:<10} iips={'y' if self.iips else 'n'}  "
            f"automated={self.automated_prompts:>3} "
            f"human={self.human_prompts:>2} leverage={leverage:>5}X "
            f"verified={self.verified}"
        )
        if self.roles != "default" or self.topo != "default":
            line += f" roles={self.roles}"
            if self.topo != "default":
                line += f" topo={self.topo}"
        if self.place != "default":
            line += f" place={self.place}"
        if self.roles_total:
            line += f" roles_ok={self.roles_ok}/{self.roles_total}"
        if self.lint_findings is not None:
            line += f" lint={self.lint_findings}({self.lint_high} high)"
        return line


def scenario_seed(scenario: Scenario) -> int:
    """A deterministic RNG seed derived from the scenario coordinates.

    Uses CRC32 (stable across processes and interpreter runs, unlike
    ``hash``) so parallel and serial campaigns agree bit-for-bit.
    """
    return zlib.crc32(scenario.key().encode("utf-8"))


def topology_seed(scenario: Scenario) -> int:
    """The seed that picks a seeded family's graph for this scenario.

    Derived from the topology-shaping coordinates only — *not* the
    behavior profile, the IIP flag, or the placement strategy (which
    relocates roles on the sampled graph without re-sampling it) — so
    every profile/ablation/placement cell of one (family, size, seed,
    roles, topo) point runs on the same graph and the workers' warm
    simulation states stay reusable.
    """
    material = (
        f"{scenario.family}:{scenario.size}:{scenario.seed}:"
        f"{scenario.roles}:{scenario.topo}"
    )
    return zlib.crc32(material.encode("utf-8"))


def build_grid(
    families: Sequence[str],
    sizes: Sequence[int],
    seeds: int,
    profiles: Sequence[str] = ("default",),
    iip_ablation: bool = False,
    roles: Sequence[str] = ("default",),
    topos: Sequence[str] = ("default",),
    places: Sequence[str] = ("default",),
) -> List[Scenario]:
    """Enumerate the scenario grid in deterministic order.

    ``roles``, ``topos``, and ``places`` add the role-spec,
    topology-knob, and role-placement axes; non-default values require
    every family in the grid to be seeded (random/waxman) — the
    hand-shaped families have a fixed layout, and silently ignoring an
    axis would fake coverage.
    """
    from ..topology.families import SEEDED_FAMILIES
    from ..topology.randomnet import (
        _check_knobs,
        coerce_placement,
        parse_topo_params,
    )
    from ..topology.roles import RoleSpec

    for family in families:
        if family not in FAMILIES:
            known = ", ".join(sorted(FAMILIES))
            raise ValueError(f"unknown family {family!r} (known: {known})")
    for profile in profiles:
        if profile not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(f"unknown profile {profile!r} (known: {known})")
    unseeded = sorted(set(families) - SEEDED_FAMILIES)
    for spec in roles:
        parsed = RoleSpec.coerce(spec)
        if parsed is None:
            continue
        if unseeded:
            raise ValueError(
                f"role spec {spec!r} requires seeded families "
                f"(random/waxman); grid also contains {', '.join(unseeded)}"
            )
        for size in sizes:
            if parsed.attachments > size:
                raise ValueError(
                    f"role spec {spec!r} needs {parsed.attachments} border "
                    f"routers but the grid includes size {size}"
                )
    for knobs in topos:
        parsed_knobs = parse_topo_params(knobs)
        if not parsed_knobs:
            continue
        if unseeded:
            raise ValueError(
                f"topology knobs {knobs!r} require seeded families "
                f"(random/waxman); grid also contains {', '.join(unseeded)}"
            )
        for family in families:
            # Knobs are family-specific (p vs alpha/beta): reject a
            # grid pairing them with the wrong family here, instead of
            # fanning out scenarios that can only produce error rows.
            _check_knobs(family, parsed_knobs)
    normalized_places = []
    for place in places:
        # Validates the name and canonicalizes spellings: "seeded",
        # "", and None are the default strategy, so they normalize to
        # one "default" cell (duplicates collapse) instead of fanning
        # the identical placement out under distinct scenario keys.
        # Non-default placements need seeded families, same as the
        # other topology-shaping axes.
        strategy = coerce_placement(place)
        if strategy == "seeded":
            strategy = "default"
        elif unseeded:
            raise ValueError(
                f"placement {place!r} requires seeded families "
                f"(random/waxman); grid also contains {', '.join(unseeded)}"
            )
        if strategy not in normalized_places:
            normalized_places.append(strategy)
    iip_flags = (True, False) if iip_ablation else (True,)
    return [
        Scenario(
            family=family,
            size=size,
            seed=seed,
            profile=profile,
            iips=iips,
            roles=spec or "default",
            topo=knobs or "default",
            place=place or "default",
        )
        for family in families
        for size in sizes
        for seed in range(seeds)
        for profile in profiles
        for iips in iip_flags
        for spec in roles
        for knobs in topos
        for place in normalized_places
    ]


def run_scenario(scenario: Scenario, network=None) -> ScenarioResult:
    """Execute one scenario through the full synthesis loop.

    ``network`` is an optional pre-materialized network for the same
    coordinates (config-shipping mode); without it the network is
    regenerated here from the scenario coordinates (coords mode) —
    generation is byte-deterministic, so both paths run on identical
    configs.

    Never raises: failures come back as error rows so one broken
    scenario cannot take down a whole campaign (or its worker pool).
    """
    from .no_transit import run_no_transit_experiment

    started = time.perf_counter()
    try:
        experiment = run_no_transit_experiment(
            router_count=scenario.size,
            seed=scenario_seed(scenario),
            iip_ids=DEFAULT_IIP_IDS if scenario.iips else (),
            profile=PROFILES[scenario.profile],
            family=scenario.family,
            roles=scenario.roles,
            topo=scenario.topo,
            topology_seed=topology_seed(scenario),
            place=scenario.place,
            network=network,
        )
    except Exception as exc:
        return ScenarioResult(
            family=scenario.family,
            size=scenario.size,
            seed=scenario.seed,
            profile=scenario.profile,
            iips=scenario.iips,
            duration_s=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
            roles=scenario.roles,
            topo=scenario.topo,
            place=scenario.place,
            trace=traceback.format_exc(),
        )
    log = experiment.result.prompt_log
    leverage = log.leverage()
    global_check = experiment.result.global_check
    verdicts = (
        global_check.role_verdicts if global_check is not None else {}
    )
    lint_findings: Optional[int] = None
    lint_high: Optional[int] = None
    if _LINT_ENABLED:
        lint_findings, lint_high = _lint_drafts(experiment)
    return ScenarioResult(
        family=scenario.family,
        size=scenario.size,
        seed=scenario.seed,
        profile=scenario.profile,
        iips=scenario.iips,
        automated_prompts=log.automated,
        human_prompts=log.human,
        leverage=None if math.isinf(leverage) else leverage,
        verified=experiment.result.verified,
        global_ok=global_check.holds if global_check is not None else False,
        duration_s=time.perf_counter() - started,
        roles=scenario.roles,
        topo=scenario.topo,
        roles_ok=sum(1 for verdict in verdicts.values() if verdict),
        roles_total=len(verdicts),
        place=scenario.place,
        lint_findings=lint_findings,
        lint_high=lint_high,
    )


def _lint_drafts(experiment) -> Tuple[Optional[int], Optional[int]]:
    """Static-analysis counts over the final synthesized drafts.

    Analyzes whatever drafts exist (a router whose chat never produced
    one is skipped; the analyzer tolerates partial config sets) and
    swallows analysis failures into ``(None, None)`` — linting is an
    auxiliary measurement and must not turn a completed scenario into
    an error row.
    """
    from ..analysis import analyze_configs
    from ..obs import counter

    try:
        topology = experiment.network.topology
        configs = {}
        texts = {}
        for name, model in experiment.models.items():
            try:
                draft = model.draft
            except RuntimeError:  # chat never produced a draft
                continue
            configs[name] = draft.current_config()
            texts[name] = draft.render()
        if not configs:
            return None, None
        report = analyze_configs(configs, topology=topology, texts=texts)
    except Exception:
        counter("analysis.campaign_errors").inc()
        return None, None
    return len(report), report.high


@dataclass(frozen=True)
class CompletedScenario:
    """One journal record: a result plus per-scenario metric accounting.

    ``metrics`` is the flat :mod:`repro.obs` registry delta the scenario
    produced (cache traffic per cache, full/incremental convergences,
    route-datapath counters, phase timers).  These numbers are
    operational (they depend on what the worker process happened to
    have cached or converged already), so they live here and in the
    journal — never in the deterministic summary outputs.  The legacy
    named fields are views over ``metrics`` kept for journal and
    reporting compatibility.  ``spans`` carries the scenario's Chrome
    trace events when tracing is on — live-run payload only, never
    journaled.
    """

    key: str
    row: ScenarioResult
    cache_hits: int = 0
    cache_misses: int = 0
    sim_full_runs: int = 0
    sim_incremental_runs: int = 0
    sim_full_evals: int = 0
    sim_incremental_evals: int = 0
    routes_built: int = 0
    routes_reused: int = 0
    metrics: Dict[str, float] = field(default_factory=dict)
    spans: List[dict] = field(default_factory=list)


def _memo_totals(metrics: Dict[str, float]) -> Tuple[int, int]:
    """Aggregate ``(hits, misses)`` over every ``memo.*`` series."""
    hits = 0
    misses = 0
    for name, value in metrics.items():
        if not name.startswith("memo."):
            continue
        if name.endswith(".hits"):
            hits += int(value)
        elif name.endswith(".misses"):
            misses += int(value)
    return hits, misses


#: Scenarios currently executing in this process.  A level, not an
#: event count: it must return to zero when the campaign is idle (the
#: test suite's metrics-hygiene fixture enforces it).
_INFLIGHT = gauge("campaign.inflight_scenarios")


def execute_scenario(scenario: Scenario, network=None) -> CompletedScenario:
    """Run one scenario; measure the registry delta it produced —
    symbolic-cache traffic per cache, BGP-simulation accounting (full vs
    incremental convergences against the worker's warm per-topology
    simulation states), route-datapath traffic (builder freezes vs
    no-change reuses), and per-phase wall-clock.

    ``network`` carries a parent-materialized network in config-shipping
    mode; coords mode leaves it ``None`` and regenerates in-worker."""
    before = counters_snapshot()
    _INFLIGHT.inc()
    try:
        with span("scenario", key=scenario.key()):
            row = run_scenario(scenario, network)
    finally:
        _INFLIGHT.dec()
    metrics = metrics_delta(before, counters_snapshot())
    spans = drain_events() if tracing_enabled() else []
    cache_hits, cache_misses = _memo_totals(metrics)
    return CompletedScenario(
        key=scenario.key(),
        row=row,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        sim_full_runs=int(metrics.get("sim.full_converge.count", 0)),
        sim_incremental_runs=int(
            metrics.get("sim.incremental_converge.count", 0)
        ),
        sim_full_evals=int(metrics.get("sim.full_evaluations", 0)),
        sim_incremental_evals=int(
            metrics.get("sim.incremental_evaluations", 0)
        ),
        routes_built=int(metrics.get("route.routes_built", 0)),
        routes_reused=int(metrics.get("route.routes_reused", 0)),
        metrics=metrics,
        spans=spans,
    )


# -- the campaign journal ------------------------------------------------------


def _journal_header(grid: Sequence[Scenario]) -> str:
    return json.dumps(
        {
            "kind": "campaign",
            "version": JOURNAL_VERSION,
            "scenarios": len(grid),
            # The grid's keys, in grid order: lets --report rebuild the
            # summary with rows ordered exactly as a live run orders
            # them, no matter the completion order in the journal body.
            "keys": [scenario.key() for scenario in grid],
        },
        sort_keys=True,
    )


def _journal_line(completed: CompletedScenario) -> str:
    row = asdict(completed.row)
    if row.get("lint_findings") is None:
        # v7 contract: the lint columns are absent — not null — on rows
        # of campaigns that did not lint, keeping unlinted journals
        # row-shape-identical to v6.
        row.pop("lint_findings", None)
        row.pop("lint_high", None)
    record = {
        "kind": "result",
        "key": completed.key,
        "row": row,
        "cache_hits": completed.cache_hits,
        "cache_misses": completed.cache_misses,
        "sim_full_runs": completed.sim_full_runs,
        "sim_incremental_runs": completed.sim_incremental_runs,
        "sim_full_evals": completed.sim_full_evals,
        "sim_incremental_evals": completed.sim_incremental_evals,
        "routes_built": completed.routes_built,
        "routes_reused": completed.routes_reused,
    }
    if completed.metrics:
        # The full registry delta (v6); trace spans are deliberately
        # NOT journaled — they are live-run payload only.
        record["metrics"] = completed.metrics
    return json.dumps(record, sort_keys=True)


def _append(handle: TextIO, line: str) -> None:
    handle.write(line + "\n")
    handle.flush()


def _repair_trailing_newline(path: Path) -> None:
    """Terminate a line truncated by a crash so appended records start
    on their own line (the fold already skips the malformed fragment)."""
    with path.open("rb+") as handle:
        handle.seek(0, 2)
        if handle.tell() == 0:
            return
        handle.seek(-1, 2)
        if handle.read(1) != b"\n":
            handle.write(b"\n")


def _open_journal(path: Path, append: bool) -> TextIO:
    """Open a journal for writing.

    Appending to an existing file *always* repairs a crash-truncated
    final line first — the repair is part of opening, not a courtesy of
    individual call sites, so no append path (resume, stale-grid
    header, service shard re-attach) can write its first record onto
    the fragment the previous crash left behind.
    """
    if append and path.exists():
        _repair_trailing_newline(path)
    return path.open("a" if append else "w")


# Hoisted out of the fold loop: per-record dataclass reflection on a
# million-row journal is pure overhead — the known field set only
# changes when ScenarioResult itself does.
_RESULT_FIELDS = frozenset(spec.name for spec in fields(ScenarioResult))


def _scan_journal(
    path: "Path | str", key_set: "Optional[set]" = None
) -> "Tuple[Dict[str, CompletedScenario], Optional[List[str]]]":
    """One pass over a journal: its completed records (optionally
    restricted to a grid's scenario keys) *and* the last header's grid
    keys — so callers needing both never read the file twice.

    Tolerant by design: malformed lines (e.g. a line truncated by the
    crash that the journal exists to survive) are skipped, and a key
    journaled twice keeps its latest record.
    """
    completed: Dict[str, CompletedScenario] = {}
    header_keys: Optional[List[str]] = None
    target = Path(path)
    if not target.exists():
        return completed, header_keys
    known = _RESULT_FIELDS
    with target.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            kind = record.get("kind")
            if kind == "campaign":
                # Resuming a journal with a different grid appends a
                # fresh header, so the *last* header describes the grid
                # that owns the journal (None for legacy v1 headers).
                candidate = record.get("keys")
                header_keys = (
                    candidate
                    if isinstance(candidate, list)
                    and all(isinstance(key, str) for key in candidate)
                    else None
                )
                continue
            if kind != "result":
                continue
            key = record.get("key")
            row_fields = record.get("row")
            if not isinstance(key, str) or not isinstance(row_fields, dict):
                continue
            if key_set is not None and key not in key_set:
                continue
            # Tolerate journals from other versions: older rows simply
            # lack newer defaulted fields (e.g. pre-v5 ``trace``), newer
            # rows may carry fields this build does not know.
            raw_metrics = record.get("metrics")
            metrics = (
                {
                    name: value
                    for name, value in raw_metrics.items()
                    if isinstance(name, str)
                    and isinstance(value, (int, float))
                }
                if isinstance(raw_metrics, dict)
                else {}
            )
            try:
                completed[key] = CompletedScenario(
                    key=key,
                    row=ScenarioResult(**{
                        name: value
                        for name, value in row_fields.items()
                        if name in known
                    }),
                    metrics=metrics,
                    cache_hits=int(record.get("cache_hits") or 0),
                    cache_misses=int(record.get("cache_misses") or 0),
                    sim_full_runs=int(record.get("sim_full_runs") or 0),
                    sim_incremental_runs=int(
                        record.get("sim_incremental_runs") or 0
                    ),
                    sim_full_evals=int(record.get("sim_full_evals") or 0),
                    sim_incremental_evals=int(
                        record.get("sim_incremental_evals") or 0
                    ),
                    routes_built=int(record.get("routes_built") or 0),
                    routes_reused=int(record.get("routes_reused") or 0),
                )
            except (TypeError, ValueError):
                continue
    return completed, header_keys


def fold_journal(path: "Path | str") -> Dict[str, CompletedScenario]:
    """Reconstruct completed scenarios by folding over a journal."""
    return _scan_journal(path)[0]


def _journal_grid_keys(path: "Path | str") -> Optional[List[str]]:
    """The grid's scenario keys from the journal's *last* header."""
    return _scan_journal(path)[1]


def _summarize(
    ordered: List[CompletedScenario],
    *,
    workers: int,
    duration_s: float,
    total: int,
    resumed: int,
) -> "CampaignSummary":
    """Build a summary from completed records, folding their per-scenario
    cache and simulation accounting (shared by live runs and --report)."""
    return CampaignSummary(
        rows=[record.row for record in ordered],
        workers=workers,
        duration_s=duration_s,
        total_scenarios=total,
        resumed=resumed,
        metrics=metrics_merge({}, *(record.metrics for record in ordered)),
        cache_hits=sum(record.cache_hits for record in ordered),
        cache_misses=sum(record.cache_misses for record in ordered),
        sim_full_runs=sum(record.sim_full_runs for record in ordered),
        sim_incremental_runs=sum(
            record.sim_incremental_runs for record in ordered
        ),
        sim_full_evals=sum(record.sim_full_evals for record in ordered),
        sim_incremental_evals=sum(
            record.sim_incremental_evals for record in ordered
        ),
        routes_built=sum(record.routes_built for record in ordered),
        routes_reused=sum(record.routes_reused for record in ordered),
    )


def summary_from_journal(path: "Path | str") -> "CampaignSummary":
    """Rebuild a campaign summary from one journal without running
    anything (the ``repro campaign --report`` offline mode).

    With a v2+ journal (header carries the grid's keys) the rows come
    back in grid order, so the written JSON/CSV summaries are
    byte-identical to the live run's.  Older journals fall back to
    completion order.
    """
    return summary_from_journals([path])


def summary_from_journals(paths: Sequence["Path | str"]) -> "CampaignSummary":
    """Merge several journals into one cross-campaign summary.

    Journals are folded in argument order; a scenario key appearing in
    more than one journal keeps its *last* record (last-write-wins, the
    same rule the fold applies within a single journal).  Row order is
    deterministic: each journal's grid keys (or completion order for
    legacy journals) are concatenated in argument order, first
    appearance wins — so re-rendering the same journal list is
    byte-identical, no matter how the campaigns interleaved.
    """
    if not paths:
        raise ValueError("no journals given")
    completed: Dict[str, CompletedScenario] = {}
    ordered_keys: List[str] = []
    seen_keys: set = set()
    targets = [
        expanded for path in paths for expanded in _expand_journal_arg(path)
    ]
    for target in targets:
        if not target.exists():
            raise ValueError(f"journal {target} does not exist")
        records, keys = _scan_journal(target)
        completed.update(records)  # later journals win on duplicates
        if keys is None:
            keys = list(records)  # legacy: completion order
        for key in keys:
            if key not in seen_keys:
                seen_keys.add(key)
                ordered_keys.append(key)
    ordered = [completed[key] for key in ordered_keys if key in completed]
    return _summarize(
        ordered,
        workers=0,  # offline: nothing executed
        duration_s=0.0,
        total=len(ordered_keys),
        resumed=len(ordered),
    )


def _fold_for_grid(
    journal: Path, key_set: "set[str]"
) -> Dict[str, CompletedScenario]:
    """The journal's records restricted to this grid's scenario keys."""
    return _scan_journal(journal, key_set)[0]


def service_journals(path: "Path | str") -> List[Path]:
    """The journal list of a campaign-service directory, manifest first.

    The service writes one header-only ``manifest.jsonl`` (the grid's
    keys, in grid order) plus one ``shard-NN.jsonl`` per worker slot;
    folding them manifest-first reproduces exactly the row order a
    batch run would journal, so the merged ``--report`` artifacts are
    byte-identical to an uninterrupted single-journal campaign.
    """
    target = Path(path)
    manifest = target / "manifest.jsonl"
    if not manifest.exists():
        raise ValueError(
            f"{target} is not a campaign-service directory "
            f"(no manifest.jsonl)"
        )
    return [manifest, *sorted(target.glob("shard-*.jsonl"))]


def _expand_journal_arg(path: "Path | str") -> List[Path]:
    """A journal argument: a JSONL file, or a campaign-service
    directory that expands to its manifest + shard journals."""
    target = Path(path)
    if target.is_dir():
        return service_journals(target)
    return [target]


# -- summaries -----------------------------------------------------------------


@dataclass(frozen=True)
class FamilySummary:
    """Aggregate measurements over one family's scenarios."""

    family: str
    scenarios: int
    verified: int
    verified_rate: float
    automated_prompts: int
    human_prompts: int
    mean_leverage: Optional[float]  # over rows with ≥1 human prompt
    roles_ok: int = 0  # per-role no-transit verdicts that held...
    roles_total: int = 0  # ...out of how many (0 for hub-policy rows)

    def render(self) -> str:
        leverage = (
            "   n/a" if self.mean_leverage is None
            else f"{self.mean_leverage:5.1f}X"
        )
        line = (
            f"{self.family:>8}: {self.verified}/{self.scenarios} verified "
            f"({100 * self.verified_rate:5.1f}%)  automated="
            f"{self.automated_prompts:>4} human={self.human_prompts:>3} "
            f"mean leverage={leverage}"
        )
        if self.roles_total:
            line += f" roles_ok={self.roles_ok}/{self.roles_total}"
        return line


@dataclass
class CampaignSummary:
    """Every completed row of a campaign plus per-family aggregates.

    ``to_dict``/``write_json``/``write_csv`` emit only deterministic
    fields — coordinates and measurements — so two campaigns over the
    same grid produce byte-identical artifacts no matter the worker
    count or how many times they were interrupted and resumed.
    Wall-clock and cache accounting are exposed on the object (and in
    :meth:`render`) but never written to the summary files.
    """

    rows: List[ScenarioResult] = field(default_factory=list)
    workers: int = 1
    duration_s: float = 0.0
    total_scenarios: Optional[int] = None  # grid size; None -> len(rows)
    resumed: int = 0  # rows recovered from the journal, not re-run
    # The merged registry delta over every row (per-cache memo traffic,
    # phase timers, ...).  Render-only, like every counter below: never
    # part of to_dict/write_json/write_csv.
    metrics: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    sim_full_runs: int = 0
    sim_incremental_runs: int = 0
    sim_full_evals: int = 0
    sim_incremental_evals: int = 0
    routes_built: int = 0
    routes_reused: int = 0

    @property
    def errors(self) -> List[ScenarioResult]:
        return [row for row in self.rows if row.error is not None]

    @property
    def total(self) -> int:
        return len(self.rows) if self.total_scenarios is None else self.total_scenarios

    @property
    def incomplete(self) -> bool:
        return len(self.rows) < self.total

    @property
    def cache_hit_rate(self) -> Optional[float]:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else None

    @property
    def sim_speedup(self) -> Optional[float]:
        """Estimated incremental-vs-full work ratio: mean route
        evaluations per full convergence over mean per incremental."""
        if not self.sim_full_runs or not self.sim_incremental_runs:
            return None
        full_mean = self.sim_full_evals / self.sim_full_runs
        incremental_mean = (
            self.sim_incremental_evals / self.sim_incremental_runs
        )
        if incremental_mean <= 0:
            return None
        return full_mean / incremental_mean

    def by_family(self) -> List[FamilySummary]:
        grouped: Dict[str, List[ScenarioResult]] = {}
        for row in self.rows:
            if row.error is None:
                grouped.setdefault(row.family, []).append(row)
        summaries = []
        for family in sorted(grouped):
            rows = grouped[family]
            verified = sum(1 for row in rows if row.verified)
            leverages = [
                row.leverage for row in rows if row.leverage is not None
            ]
            summaries.append(
                FamilySummary(
                    family=family,
                    scenarios=len(rows),
                    verified=verified,
                    verified_rate=verified / len(rows),
                    automated_prompts=sum(
                        row.automated_prompts for row in rows
                    ),
                    human_prompts=sum(row.human_prompts for row in rows),
                    mean_leverage=(
                        sum(leverages) / len(leverages) if leverages else None
                    ),
                    roles_ok=sum(row.roles_ok for row in rows),
                    roles_total=sum(row.roles_total for row in rows),
                )
            )
        return summaries

    @staticmethod
    def _row_dict(row: ScenarioResult) -> dict:
        record = asdict(row)
        del record["duration_s"]  # wall-clock: journal-only
        record.pop("trace", None)  # tracebacks: journal-only
        if record.get("lint_findings") is None:
            # Non-lint campaigns keep their v6 summary shape exactly.
            record.pop("lint_findings", None)
            record.pop("lint_high", None)
        return record

    @property
    def linted_rows(self) -> List[ScenarioResult]:
        return [row for row in self.rows if row.lint_findings is not None]

    def to_dict(self) -> dict:
        payload = {
            "scenarios": len(self.rows),
            "errors": len(self.errors),
            "families": {
                summary.family: {
                    "scenarios": summary.scenarios,
                    "verified": summary.verified,
                    "verified_rate": summary.verified_rate,
                    "automated_prompts": summary.automated_prompts,
                    "human_prompts": summary.human_prompts,
                    "mean_leverage": summary.mean_leverage,
                    "roles_ok": summary.roles_ok,
                    "roles_total": summary.roles_total,
                }
                for summary in self.by_family()
            },
            "rows": [self._row_dict(row) for row in self.rows],
        }
        linted = self.linted_rows
        if linted:
            payload["lint"] = {
                "scenarios": len(linted),
                "findings": sum(row.lint_findings or 0 for row in linted),
                "high": sum(row.lint_high or 0 for row in linted),
            }
        return payload

    def write_json(self, path: "Path | str") -> Path:
        target = Path(path)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target

    def write_csv(self, path: "Path | str") -> Path:
        target = Path(path)
        columns = [
            "family", "size", "seed", "profile", "iips", "roles", "topo",
            "place", "automated_prompts", "human_prompts", "leverage",
            "verified", "global_ok", "roles_ok", "roles_total", "error",
        ]
        with target.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                record = self._row_dict(row)
                # The CSV column set is fixed; lint counts live in the
                # JSON summary and the journal only.
                record.pop("lint_findings", None)
                record.pop("lint_high", None)
                if record["leverage"] is None:
                    # None means "no human prompts" on a completed run;
                    # error rows keep the column empty.
                    record["leverage"] = "" if row.error else "inf"
                writer.writerow(record)
        return target

    def render(self) -> str:
        lines = [row.render() for row in self.rows]
        lines.append("")
        status = f"{len(self.rows)}/{self.total} scenarios"
        if self.resumed:
            status += f" ({self.resumed} resumed from journal)"
        lines.append(
            f"campaign: {status}, {len(self.errors)} errors, "
            f"{self.workers} worker(s), {self.duration_s:.2f}s"
        )
        rate = self.cache_hit_rate
        if rate is not None:
            lines.append(
                f"  symbolic cache: {self.cache_hits} hits / "
                f"{self.cache_misses} misses ({100 * rate:.1f}% hit rate)"
            )
        if self.sim_full_runs or self.sim_incremental_runs:
            sim_line = (
                f"  bgp simulation: {self.sim_full_runs} full / "
                f"{self.sim_incremental_runs} incremental convergence(s)"
            )
            speedup = self.sim_speedup
            if speedup is not None:
                sim_line += f" (incremental does ~{speedup:.1f}x less work)"
            lines.append(sim_line)
        if self.routes_built or self.routes_reused:
            lines.append(
                f"  route datapath: {self.routes_built} route(s) built / "
                f"{self.routes_reused} reused without copying"
            )
        linted = self.linted_rows
        if linted:
            lines.append(
                f"  lint: {sum(row.lint_findings or 0 for row in linted)} "
                f"finding(s) "
                f"({sum(row.lint_high or 0 for row in linted)} high) "
                f"across {len(linted)} linted scenario(s)"
            )
        for name, hits, misses in self.cache_breakdown():
            lookups = hits + misses
            rate = 100 * hits / lookups if lookups else 0.0
            lines.append(
                f"    {name}: {hits} hits / {misses} misses "
                f"({rate:.1f}% hit rate)"
            )
        for summary in self.by_family():
            lines.append("  " + summary.render())
        return "\n".join(lines)

    def cache_breakdown(self) -> List[Tuple[str, int, int]]:
        """Per-cache ``(name, hits, misses)`` from the merged metrics —
        aggregated across every worker process, unlike the historical
        parent-only ``cache_stats()`` view (worker caches were silently
        lost).  Empty for pre-v6 journals, which carried only totals."""
        caches: Dict[str, Dict[str, int]] = {}
        for name, value in self.metrics.items():
            if not name.startswith("memo."):
                continue
            if name.endswith(".hits"):
                caches.setdefault(name[5:-5], {})["hits"] = int(value)
            elif name.endswith(".misses"):
                caches.setdefault(name[5:-7], {})["misses"] = int(value)
        return [
            (name, counts.get("hits", 0), counts.get("misses", 0))
            for name, counts in sorted(caches.items())
        ]

    def phase_breakdown(self) -> List[Tuple[str, int, float, float]]:
        """Per-phase ``(name, count, total_s, max_s)`` from the merged
        span timers, slowest total first."""
        phases: Dict[str, Tuple[int, float, float]] = {}
        prefix = "phase."
        for name in self.metrics:
            if name.startswith(prefix) and name.endswith(".count"):
                phase = name[len(prefix): -len(".count")]
                phases[phase] = (
                    int(self.metrics.get(f"{prefix}{phase}.count", 0)),
                    float(self.metrics.get(f"{prefix}{phase}.total_s", 0.0)),
                    float(self.metrics.get(f"{prefix}{phase}.max_s", 0.0)),
                )
        return sorted(
            (
                (phase, count, total_s, max_s)
                for phase, (count, total_s, max_s) in phases.items()
            ),
            key=lambda entry: (-entry[2], entry[0]),
        )

    @staticmethod
    def _row_key(row: ScenarioResult) -> str:
        return (
            f"{row.family}:{row.size}:{row.seed}:{row.profile}:"
            f"{'iips' if row.iips else 'noiips'}:{row.roles}:{row.topo}:"
            f"{row.place}"
        )

    def render_profile(self, top: int = 10) -> str:
        """The ``--profile`` view: phase breakdown, slowest scenarios,
        per-cache hit rates (all journal-sourced — works offline)."""
        lines = [
            f"campaign profile: {len(self.rows)} scenario(s), "
            f"{sum(row.duration_s for row in self.rows):.2f}s scenario "
            f"wall-clock"
        ]
        phases = self.phase_breakdown()
        scenario_total = next(
            (
                total_s
                for phase, _count, total_s, _max in phases
                if phase == "scenario"
            ),
            0.0,
        )
        if phases:
            lines.append("  phase breakdown:")
            for phase, count, total_s, max_s in phases:
                line = (
                    f"    {phase:<14} {count:>6}x  {total_s:>9.3f}s total  "
                    f"{max_s:>8.3f}s max"
                )
                if scenario_total > 0:
                    line += (
                        f"  ({100 * total_s / scenario_total:5.1f}% of "
                        f"scenario time)"
                    )
                lines.append(line)
        else:
            lines.append(
                "  phase breakdown: no phase metrics recorded "
                "(pre-v6 journal?)"
            )
        slowest = sorted(
            self.rows, key=lambda row: -row.duration_s
        )[: max(0, top)]
        if slowest:
            lines.append(f"  slowest {len(slowest)} scenario(s):")
            for row in slowest:
                suffix = "  ERROR" if row.error is not None else ""
                lines.append(
                    f"    {row.duration_s:>8.3f}s  "
                    f"{self._row_key(row)}{suffix}"
                )
        breakdown = self.cache_breakdown()
        if breakdown:
            lines.append("  cache hit rates:")
            for name, hits, misses in breakdown:
                lookups = hits + misses
                rate = 100 * hits / lookups if lookups else 0.0
                lines.append(
                    f"    {name:<20} {hits:>8} hits / {misses:>8} misses  "
                    f"({rate:5.1f}%)"
                )
        return "\n".join(lines)


# -- the engine ----------------------------------------------------------------


class CampaignInterrupted(RuntimeError):
    """A campaign stopped early, but every finished row is journaled.

    Raised instead of letting a raw :class:`BrokenProcessPool` (or a
    stall) discard the run: the journal keeps everything that
    completed, and the message tells the operator how to continue
    (``--resume <journal>``).
    """

    def __init__(
        self,
        message: str,
        journal: Optional[Path] = None,
        completed: int = 0,
        total: int = 0,
    ) -> None:
        super().__init__(message)
        self.journal = journal
        self.completed = completed
        self.total = total


class CampaignStalled(CampaignInterrupted):
    """No scenario completed within the per-completion timeout."""


def _interrupted_message(
    cause: str, journal: Optional[Path], completed: int, total: int
) -> str:
    if journal is None:
        return (
            f"{cause}; no journal was configured, so the {completed} "
            f"finished scenario(s) of {total} are lost — re-run with a "
            f"journal (--journal) to make campaigns resumable"
        )
    return (
        f"{cause}; {completed}/{total} scenario(s) are safe in {journal} "
        f"— continue with --resume {journal}"
    )


def _shutdown_broken_pool(executor: ProcessPoolExecutor) -> None:
    """Tear down a pool we are abandoning: kill any worker still
    running (a hung worker would block a plain shutdown forever), then
    reap.  The kill must come first — ``shutdown()`` drops the
    executor's process references even with ``wait=False``, so there
    is nothing left to kill afterwards."""
    processes = dict(getattr(executor, "_processes", None) or {})
    for process in processes.values():
        try:
            process.kill()
        except Exception:  # already gone
            pass
    executor.shutdown(wait=True, cancel_futures=True)


def _toggle_snapshot() -> Dict[str, object]:
    from ..core import toggles

    return toggles.snapshot()


def _init_worker(
    toggle_values: Dict[str, object],
    tracing: bool = False,
    lint: bool = False,
) -> None:
    """Propagate the parent's optimization toggles into a pool worker.

    Module globals do not survive the spawn/forkserver start methods,
    so the executor replays a full :func:`repro.core.toggles.snapshot`
    — every registered toggle, so a toggle added to the registry is
    propagated automatically.  (The previous hand-picked argument list
    silently dropped ``batched_evaluation``: workers of a
    ``--no-batch`` campaign ran with batching enabled.)  ``tracing``
    mirrors the parent's trace-capture flag so worker spans come home
    in each :class:`CompletedScenario`.
    """
    from ..core import toggles

    toggles.apply(toggle_values)
    set_tracing(tracing)
    set_campaign_lint(lint)


def run_campaign(
    scenarios: Iterable[Scenario],
    workers: int = 1,
    journal_path: "Path | str | None" = None,
    resume: bool = False,
    limit: Optional[int] = None,
    timeout: Optional[float] = None,
    trace_path: "Path | str | None" = None,
) -> CampaignSummary:
    """Run every scenario, serially or over a process pool.

    Per-scenario seeding is position-independent and summary rows are
    ordered by grid position, so ``workers`` only affects wall-clock.

    With ``journal_path``, every completed scenario is appended to the
    JSONL journal the moment it finishes, and the returned summary is
    reconstructed by folding over that journal.  ``resume=True`` folds
    the journal *first* and re-runs only the scenarios it lacks.
    ``limit`` caps how many pending scenarios run (the deterministic
    way to interrupt a campaign mid-grid).

    A worker crash (:class:`BrokenProcessPool`) no longer aborts the
    grid with a raw traceback: every row journaled before the crash is
    kept, and a :class:`CampaignInterrupted` naming ``--resume`` is
    raised.  ``timeout`` bounds how long the parallel loop waits for
    the *next* completion — one hung worker raises
    :class:`CampaignStalled` (and is killed) instead of stalling the
    grid forever.  The serial path runs scenarios inline and cannot
    preempt them, so ``timeout`` only applies with ``workers > 1``.

    ``trace_path`` enables span tracing for the run (parent *and*
    workers) and writes one merged Chrome trace-event JSON file there —
    load it in Perfetto or chrome://tracing.  Only scenarios executed
    by *this* run appear (resumed rows carry no span payload).
    """
    grid = list(scenarios)
    keys = [scenario.key() for scenario in grid]
    key_set = set(keys)
    started = time.perf_counter()
    journal = Path(journal_path) if journal_path is not None else None
    if resume and journal is None:
        raise ValueError("resume=True requires a journal_path")
    completed: Dict[str, CompletedScenario] = {}
    header_keys: Optional[List[str]] = None
    journal_exists = journal is not None and journal.exists()
    if journal_exists:
        # One pass recovers both this grid's completed records and the
        # last header's keys (the fold used to run twice: once merely
        # to test truthiness, then again for the grid keys).
        records, header_keys = _scan_journal(journal, key_set)
        if resume:
            completed = records
        elif records:
            # The journal exists to survive interruptions; silently
            # truncating one that holds this grid's results would
            # destroy exactly the work it protects.
            raise ValueError(
                f"journal {journal} already holds results for this grid; "
                f"pass resume=True (--resume) to continue it, or remove "
                f"the file to start over"
            )
    resumed = len(completed)
    pending = [scenario for scenario in grid if scenario.key() not in completed]
    if limit is not None:
        pending = pending[: max(0, limit)]

    tracing = trace_path is not None
    was_tracing = tracing_enabled()
    trace_events: List[dict] = []
    if tracing:
        set_tracing(True)

    handle: Optional[TextIO] = None
    if journal is not None:
        appending = resume and journal_exists
        stale_header = appending and header_keys != keys
        handle = _open_journal(journal, append=appending)
        if not appending or stale_header:
            # Fresh journals get a header; resuming under a *different*
            # grid appends a new one, so offline --report reconstruction
            # always orders by the grid that last owned the journal.
            _append(handle, _journal_header(grid))
    try:
        # Config-shipping materializes every pending network in the
        # parent and ships it in the task payload; coords mode ships
        # nothing but the Scenario itself.  The serial path follows the
        # same rule so workers=1 exercises whichever mode is selected.
        ship_config = _SHIP_MODE == "config"
        if workers <= 1 or len(pending) <= 1:
            for scenario in pending:
                network = (
                    _materialize_for_shipping(scenario) if ship_config
                    else None
                )
                record = execute_scenario(scenario, network)
                completed[record.key] = record
                trace_events.extend(record.spans)
                if handle is not None:
                    _append(handle, _journal_line(record))
        else:
            executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(_toggle_snapshot(), tracing, _LINT_ENABLED),
            )
            abandoned = False
            try:
                outstanding = {
                    executor.submit(
                        execute_scenario,
                        scenario,
                        _materialize_for_shipping(scenario) if ship_config
                        else None,
                    )
                    for scenario in pending
                }
                while outstanding:
                    done, outstanding = wait(
                        outstanding,
                        timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        raise CampaignStalled(
                            _interrupted_message(
                                f"no scenario completed within "
                                f"{timeout:g}s (hung worker?)",
                                journal, len(completed), len(grid),
                            ),
                            journal=journal,
                            completed=len(completed),
                            total=len(grid),
                        )
                    for future in done:
                        # A worker that died hard (SIGKILL, OOM, C-level
                        # crash) surfaces here as BrokenProcessPool.
                        record = future.result()
                        completed[record.key] = record
                        trace_events.extend(record.spans)
                        if handle is not None:
                            _append(handle, _journal_line(record))
            except BrokenProcessPool as exc:
                abandoned = True
                raise CampaignInterrupted(
                    _interrupted_message(
                        f"campaign worker pool broke ({exc})",
                        journal, len(completed), len(grid),
                    ),
                    journal=journal,
                    completed=len(completed),
                    total=len(grid),
                ) from exc
            except CampaignStalled:
                abandoned = True
                raise
            finally:
                if abandoned:
                    _shutdown_broken_pool(executor)
                else:
                    executor.shutdown(wait=True)
    finally:
        if handle is not None:
            handle.close()
        if tracing:
            # Parent-side spans (config-shipping generation etc.) join
            # the worker payloads; one merged trace survives even an
            # interrupted campaign.
            trace_events.extend(drain_events())
            set_tracing(was_tracing)
            write_trace(str(trace_path), trace_events)

    if journal is not None:
        # The journal, not in-process state, is the source of truth.
        completed = _fold_for_grid(journal, key_set)
    ordered = [completed[key] for key in keys if key in completed]
    return _summarize(
        ordered,
        workers=max(1, workers),
        duration_s=time.perf_counter() - started,
        total=len(grid),
        resumed=resumed,
    )
