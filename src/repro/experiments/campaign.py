"""Parallel scenario-campaign engine.

The paper closes by noting that "much further testing in more complex
use cases is needed".  This module industrializes that testing: it
enumerates a scenario grid — topology family × size × seed ×
behavior profile × IIP ablation — and executes every scenario through
the full Verified Prompt Programming loop, optionally fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor` worker pool.  Each
scenario is seeded deterministically from its own coordinates, so a
campaign's results are identical whether it runs serially or on any
number of workers.

Results are :class:`ScenarioResult` rows (the
:class:`~repro.experiments.scaling.ScalingPoint` measurements plus the
scenario coordinates), aggregated per family and writable as JSON or
CSV.
"""

from __future__ import annotations

import csv
import json
import math
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from ..core import DEFAULT_IIP_IDS
from ..llm import BehaviorProfile
from ..topology.families import FAMILIES

__all__ = [
    "CampaignSummary",
    "FamilySummary",
    "PROFILES",
    "Scenario",
    "ScenarioResult",
    "build_grid",
    "run_campaign",
    "run_scenario",
    "scenario_seed",
]

# Named behavior profiles a scenario can select.  Names (not objects)
# travel through the grid so scenarios stay trivially picklable.
PROFILES: Dict[str, BehaviorProfile] = {
    "default": BehaviorProfile(),
    "always-fix": BehaviorProfile.always_fix(),
    "sloppy": BehaviorProfile(
        fix=0.55, no_change=0.25, fix_with_new_error=0.12,
        fix_with_regression=0.08,
    ),
}


@dataclass(frozen=True)
class Scenario:
    """One cell of the campaign grid."""

    family: str
    size: int
    seed: int  # seed *index* within the campaign, not the RNG seed
    profile: str = "default"
    iips: bool = True

    def key(self) -> str:
        return (
            f"{self.family}:{self.size}:{self.seed}:{self.profile}:"
            f"{'iips' if self.iips else 'noiips'}"
        )


@dataclass(frozen=True)
class ScenarioResult:
    """One ScalingPoint-style row: scenario coordinates + measurements."""

    family: str
    size: int
    seed: int
    profile: str
    iips: bool
    automated_prompts: int = 0
    human_prompts: int = 0
    leverage: Optional[float] = None  # None encodes "no human prompts"
    verified: bool = False
    global_ok: bool = False
    duration_s: float = 0.0
    error: Optional[str] = None

    def render(self) -> str:
        if self.error is not None:
            return (
                f"{self.family:>8} n={self.size:<2} seed={self.seed} "
                f"ERROR: {self.error}"
            )
        leverage = "inf" if self.leverage is None else f"{self.leverage:.1f}"
        return (
            f"{self.family:>8} n={self.size:<2} seed={self.seed} "
            f"profile={self.profile:<10} iips={'y' if self.iips else 'n'}  "
            f"automated={self.automated_prompts:>3} "
            f"human={self.human_prompts:>2} leverage={leverage:>5}X "
            f"verified={self.verified}"
        )


def scenario_seed(scenario: Scenario) -> int:
    """A deterministic RNG seed derived from the scenario coordinates.

    Uses CRC32 (stable across processes and interpreter runs, unlike
    ``hash``) so parallel and serial campaigns agree bit-for-bit.
    """
    return zlib.crc32(scenario.key().encode("utf-8"))


def build_grid(
    families: Sequence[str],
    sizes: Sequence[int],
    seeds: int,
    profiles: Sequence[str] = ("default",),
    iip_ablation: bool = False,
) -> List[Scenario]:
    """Enumerate the scenario grid in deterministic order."""
    for family in families:
        if family not in FAMILIES:
            known = ", ".join(sorted(FAMILIES))
            raise ValueError(f"unknown family {family!r} (known: {known})")
    for profile in profiles:
        if profile not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(f"unknown profile {profile!r} (known: {known})")
    iip_flags = (True, False) if iip_ablation else (True,)
    return [
        Scenario(
            family=family, size=size, seed=seed, profile=profile, iips=iips
        )
        for family in families
        for size in sizes
        for seed in range(seeds)
        for profile in profiles
        for iips in iip_flags
    ]


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario through the full synthesis loop.

    Never raises: failures come back as error rows so one broken
    scenario cannot take down a whole campaign (or its worker pool).
    """
    from .no_transit import run_no_transit_experiment

    started = time.perf_counter()
    try:
        experiment = run_no_transit_experiment(
            router_count=scenario.size,
            seed=scenario_seed(scenario),
            iip_ids=DEFAULT_IIP_IDS if scenario.iips else (),
            profile=PROFILES[scenario.profile],
            family=scenario.family,
        )
    except Exception as exc:
        return ScenarioResult(
            family=scenario.family,
            size=scenario.size,
            seed=scenario.seed,
            profile=scenario.profile,
            iips=scenario.iips,
            duration_s=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    log = experiment.result.prompt_log
    leverage = log.leverage()
    global_check = experiment.result.global_check
    return ScenarioResult(
        family=scenario.family,
        size=scenario.size,
        seed=scenario.seed,
        profile=scenario.profile,
        iips=scenario.iips,
        automated_prompts=log.automated,
        human_prompts=log.human,
        leverage=None if math.isinf(leverage) else leverage,
        verified=experiment.result.verified,
        global_ok=global_check.holds if global_check is not None else False,
        duration_s=time.perf_counter() - started,
    )


@dataclass(frozen=True)
class FamilySummary:
    """Aggregate measurements over one family's scenarios."""

    family: str
    scenarios: int
    verified: int
    verified_rate: float
    automated_prompts: int
    human_prompts: int
    mean_leverage: Optional[float]  # over rows with ≥1 human prompt

    def render(self) -> str:
        leverage = (
            "   n/a" if self.mean_leverage is None
            else f"{self.mean_leverage:5.1f}X"
        )
        return (
            f"{self.family:>8}: {self.verified}/{self.scenarios} verified "
            f"({100 * self.verified_rate:5.1f}%)  automated="
            f"{self.automated_prompts:>4} human={self.human_prompts:>3} "
            f"mean leverage={leverage}"
        )


@dataclass
class CampaignSummary:
    """Every row of a campaign plus per-family aggregates."""

    rows: List[ScenarioResult] = field(default_factory=list)
    workers: int = 1
    duration_s: float = 0.0

    @property
    def errors(self) -> List[ScenarioResult]:
        return [row for row in self.rows if row.error is not None]

    def by_family(self) -> List[FamilySummary]:
        grouped: Dict[str, List[ScenarioResult]] = {}
        for row in self.rows:
            if row.error is None:
                grouped.setdefault(row.family, []).append(row)
        summaries = []
        for family in sorted(grouped):
            rows = grouped[family]
            verified = sum(1 for row in rows if row.verified)
            leverages = [
                row.leverage for row in rows if row.leverage is not None
            ]
            summaries.append(
                FamilySummary(
                    family=family,
                    scenarios=len(rows),
                    verified=verified,
                    verified_rate=verified / len(rows),
                    automated_prompts=sum(
                        row.automated_prompts for row in rows
                    ),
                    human_prompts=sum(row.human_prompts for row in rows),
                    mean_leverage=(
                        sum(leverages) / len(leverages) if leverages else None
                    ),
                )
            )
        return summaries

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "duration_s": round(self.duration_s, 3),
            "scenarios": len(self.rows),
            "errors": len(self.errors),
            "families": {
                summary.family: {
                    "scenarios": summary.scenarios,
                    "verified": summary.verified,
                    "verified_rate": summary.verified_rate,
                    "automated_prompts": summary.automated_prompts,
                    "human_prompts": summary.human_prompts,
                    "mean_leverage": summary.mean_leverage,
                }
                for summary in self.by_family()
            },
            "rows": [asdict(row) for row in self.rows],
        }

    def write_json(self, path: "Path | str") -> Path:
        target = Path(path)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target

    def write_csv(self, path: "Path | str") -> Path:
        target = Path(path)
        columns = [
            "family", "size", "seed", "profile", "iips",
            "automated_prompts", "human_prompts", "leverage", "verified",
            "global_ok", "duration_s", "error",
        ]
        with target.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                record = asdict(row)
                if record["leverage"] is None:
                    # None means "no human prompts" on a completed run;
                    # error rows keep the column empty.
                    record["leverage"] = "" if row.error else "inf"
                writer.writerow(record)
        return target

    def render(self) -> str:
        lines = [row.render() for row in self.rows]
        lines.append("")
        lines.append(
            f"campaign: {len(self.rows)} scenarios, "
            f"{len(self.errors)} errors, {self.workers} worker(s), "
            f"{self.duration_s:.2f}s"
        )
        for summary in self.by_family():
            lines.append("  " + summary.render())
        return "\n".join(lines)


def run_campaign(
    scenarios: Iterable[Scenario],
    workers: int = 1,
) -> CampaignSummary:
    """Run every scenario, serially or over a process pool.

    Row order always matches scenario order, and per-scenario seeding
    is position-independent, so ``workers`` only affects wall-clock.
    """
    grid = list(scenarios)
    started = time.perf_counter()
    if workers <= 1 or len(grid) <= 1:
        rows = [run_scenario(scenario) for scenario in grid]
    else:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            rows = list(executor.map(run_scenario, grid, chunksize=1))
    return CampaignSummary(
        rows=rows,
        workers=max(1, workers),
        duration_s=time.perf_counter() - started,
    )
