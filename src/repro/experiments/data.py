"""Bundled configurations (re-exported from :mod:`repro.sampleconfigs`).

Kept as a thin alias so experiment code reads naturally; the data lives
at top level to keep the llm -> experiments dependency edge out of the
import graph.
"""

from ..sampleconfigs import BATFISH_EXAMPLE_CISCO, load_translation_source

__all__ = ["BATFISH_EXAMPLE_CISCO", "load_translation_source"]
