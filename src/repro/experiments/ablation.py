"""Figure 1 vs Figure 2 ablation: pair programming vs VPP.

The paper's central claim is that the verifier suite converts manual
correction prompts into automated ones.  The ablation runs the *same*
faulty drafts through both regimes:

* **VPP** (Figure 2) — the verifier loop issues corrections
  automatically, punting to the human only when stuck;
* **pair programming** (Figure 1) — no automation: every correction
  prompt is issued by the human (the paper's assumption that "every
  automatic correction in Figure 2 would otherwise be done by a human
  in Figure 1").

The reduction in human prompts is the leverage made visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..llm import BehaviorProfile
from .no_transit import run_no_transit_experiment
from .translation import run_translation_experiment

__all__ = ["AblationResult", "run_translation_ablation", "run_synthesis_ablation"]


@dataclass
class AblationResult:
    """Human effort under both regimes for one use case."""

    use_case: str
    vpp_human: int
    vpp_automated: int
    pair_programming_human: int

    @property
    def human_effort_reduction(self) -> float:
        """How many times fewer human prompts VPP needed."""
        if self.vpp_human == 0:
            return float("inf")
        return self.pair_programming_human / self.vpp_human

    def render(self) -> str:
        return (
            f"{self.use_case}: pair programming needed "
            f"{self.pair_programming_human} human prompts; VPP needed "
            f"{self.vpp_human} human + {self.vpp_automated} automated "
            f"(reduction {self.human_effort_reduction:.1f}x)"
        )


def run_translation_ablation(
    seed: int = 0, profile: Optional[BehaviorProfile] = None
) -> AblationResult:
    vpp = run_translation_experiment(seed=seed, profile=profile)
    manual = run_translation_experiment(
        seed=seed, profile=profile, pair_programming=True
    )
    return _to_result("translation", vpp, manual)


def run_synthesis_ablation(
    seed: int = 0, profile: Optional[BehaviorProfile] = None
) -> AblationResult:
    vpp = run_no_transit_experiment(seed=seed, profile=profile)
    manual = run_no_transit_experiment(
        seed=seed, profile=profile, pair_programming=True
    )
    return _to_result("no-transit synthesis", vpp, manual)


def _to_result(use_case, vpp, manual) -> AblationResult:
    return AblationResult(
        use_case=use_case,
        vpp_human=vpp.result.prompt_log.human,
        vpp_automated=vpp.result.prompt_log.automated,
        pair_programming_human=manual.result.prompt_log.human,
    )
