"""Experiment drivers that regenerate every table and figure.

See DESIGN.md's per-experiment index for the mapping from paper artifact
to driver and bench.
"""

from .ablation import (
    AblationResult,
    run_synthesis_ablation,
    run_translation_ablation,
)
from .campaign import (
    CampaignSummary,
    FamilySummary,
    Scenario,
    ScenarioResult,
    build_grid,
    run_campaign,
    run_scenario,
    set_worker_shipping,
    worker_shipping,
)
from .data import BATFISH_EXAMPLE_CISCO, load_translation_source
from .iip_ablation import IipAblationResult, run_iip_ablation
from .incremental import IncrementalResult, run_incremental_policy_experiment
from .local_vs_global import (
    LocalVsGlobalResult,
    OscillatingGlobalModel,
    run_local_vs_global,
)
from .no_transit import (
    NoTransitExperiment,
    materialize_network,
    run_no_transit_experiment,
)
from .prompts import sample_synthesis_prompts, sample_translation_prompts
from .scaling import ScalingPoint, run_scaling_sweep
from .translation import (
    Table2Row,
    TranslationExperiment,
    run_translation_experiment,
)

__all__ = [
    "AblationResult",
    "BATFISH_EXAMPLE_CISCO",
    "CampaignSummary",
    "FamilySummary",
    "IipAblationResult",
    "IncrementalResult",
    "LocalVsGlobalResult",
    "NoTransitExperiment",
    "OscillatingGlobalModel",
    "ScalingPoint",
    "Scenario",
    "ScenarioResult",
    "Table2Row",
    "TranslationExperiment",
    "build_grid",
    "load_translation_source",
    "materialize_network",
    "run_campaign",
    "run_iip_ablation",
    "run_incremental_policy_experiment",
    "run_local_vs_global",
    "run_no_transit_experiment",
    "run_scaling_sweep",
    "run_scenario",
    "run_synthesis_ablation",
    "run_translation_ablation",
    "run_translation_experiment",
    "sample_synthesis_prompts",
    "sample_translation_prompts",
    "set_worker_shipping",
    "worker_shipping",
]
