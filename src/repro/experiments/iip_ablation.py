"""IIP ablation (§4.2's before/after).

The paper introduced four Initial Instruction Prompts because "some
GPT-4 errors were more common": CLI output, forbidden keywords, literal
``match community`` values, and non-additive ``set community``.  This
experiment runs the same synthesis task with and without the IIPs and
measures how many of those error classes reach the correction loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import DEFAULT_IIP_IDS
from ..llm import BehaviorProfile
from .no_transit import NoTransitExperiment, run_no_transit_experiment

__all__ = ["IipAblationResult", "run_iip_ablation"]


@dataclass
class IipAblationResult:
    """Prompt counts with and without the IIP database."""

    with_iips: NoTransitExperiment
    without_iips: NoTransitExperiment

    @property
    def syntax_prompts_with(self) -> int:
        return self.with_iips.result.prompt_log.by_stage().get("syntax", 0)

    @property
    def syntax_prompts_without(self) -> int:
        return self.without_iips.result.prompt_log.by_stage().get("syntax", 0)

    @property
    def suppressed_faults(self) -> int:
        """How many IIP-covered faults were absent from the first drafts."""
        with_counts = self.with_iips.initial_draft_fault_counts()
        without_counts = self.without_iips.initial_draft_fault_counts()
        return sum(without_counts.values()) - sum(with_counts.values())

    def render(self) -> str:
        return (
            f"IIP ablation (7-router star): with IIPs "
            f"{self.with_iips.automated_prompts} automated prompts "
            f"({self.syntax_prompts_with} syntax); without IIPs "
            f"{self.without_iips.automated_prompts} automated prompts "
            f"({self.syntax_prompts_without} syntax); "
            f"{self.suppressed_faults} draft error(s) prevented by the IIPs; "
            f"both verified: "
            f"{self.with_iips.result.verified and self.without_iips.result.verified}"
        )


def run_iip_ablation(
    router_count: int = 7,
    seed: int = 0,
    profile: Optional[BehaviorProfile] = None,
) -> IipAblationResult:
    """Run the synthesis experiment with the full IIP set and with none."""
    with_iips = run_no_transit_experiment(
        router_count=router_count,
        seed=seed,
        iip_ids=DEFAULT_IIP_IDS,
        profile=profile,
    )
    without_iips = run_no_transit_experiment(
        router_count=router_count,
        seed=seed,
        iip_ids=(),
        profile=profile,
    )
    return IipAblationResult(with_iips=with_iips, without_iips=without_iips)
