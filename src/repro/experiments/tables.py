"""Paper-style table rendering for the benchmark harness.

Each function returns the printable text of one paper artifact; the
benches print these so ``pytest benchmarks/ --benchmark-only`` output
can be compared line-by-line against the paper.
"""

from __future__ import annotations


from .ablation import run_synthesis_ablation, run_translation_ablation
from .local_vs_global import run_local_vs_global
from .no_transit import run_no_transit_experiment
from .prompts import sample_synthesis_prompts, sample_translation_prompts
from .scaling import run_scaling_sweep
from .translation import run_translation_experiment

__all__ = [
    "render_figure4",
    "render_leverage_no_transit",
    "render_leverage_translation",
    "render_local_vs_global",
    "render_scaling",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_vpp_ablation",
]

_RULE = "-" * 72


def render_table1(seed: int = 0) -> str:
    """Table 1: sample rectification prompts for translation."""
    lines = ["Table 1: sample rectification prompts for translation", _RULE]
    for stage, prompt in sample_translation_prompts(seed=seed):
        lines.append(f"[{stage}]")
        lines.append(f"  {prompt}")
    return "\n".join(lines)


def render_table2(seed: int = 0) -> str:
    """Table 2: translation errors and whether GPT-4 fixed them."""
    experiment = run_translation_experiment(seed=seed)
    lines = [
        "Table 2: translation errors found and whether the generated "
        "prompt sufficed",
        _RULE,
        f"{'Error':<45} {'Type':<20} Fixed",
        _RULE,
    ]
    for row in experiment.table2_rows():
        lines.append(row.render())
    return "\n".join(lines)


def render_leverage_translation(seed: int = 0) -> str:
    """§3.2's leverage measurement."""
    experiment = run_translation_experiment(seed=seed)
    log = experiment.result.prompt_log
    return (
        f"Cisco-to-Juniper translation: {log.automated} automated prompts, "
        f"{log.human} human prompts -> leverage "
        f"{experiment.leverage:.1f}X (paper: ~20/2 = 10X); "
        f"verified={experiment.result.verified}"
    )


def render_table3(seed: int = 0) -> str:
    """Table 3: sample rectification prompts for local synthesis."""
    lines = ["Table 3: sample rectification prompts for local synthesis", _RULE]
    for stage, prompt in sample_synthesis_prompts(seed=seed):
        lines.append(f"[{stage}]")
        lines.append(f"  {prompt}")
    return "\n".join(lines)


def render_leverage_no_transit(seed: int = 0) -> str:
    """§4.2's leverage measurement."""
    experiment = run_no_transit_experiment(seed=seed)
    log = experiment.result.prompt_log
    return (
        f"No-transit synthesis (7-router star): {log.automated} automated "
        f"prompts, {log.human} human prompts -> leverage "
        f"{experiment.leverage:.1f}X (paper: 12/2 = 6X); "
        f"verified={experiment.result.verified}"
    )


def render_vpp_ablation(seed: int = 0) -> str:
    """Figure 1 vs Figure 2 as data."""
    lines = ["Figure 1 vs Figure 2: pair programming vs VPP", _RULE]
    lines.append(run_translation_ablation(seed=seed).render())
    lines.append(run_synthesis_ablation(seed=seed).render())
    return "\n".join(lines)


def render_local_vs_global(seed: int = 0) -> str:
    """§4.1's local-vs-global comparison."""
    result = run_local_vs_global(seed=seed)
    return (
        "Local vs global specification prompts\n" + _RULE + "\n" + result.render()
    )


def render_scaling(seed: int = 0) -> str:
    """The scaling extension series."""
    lines = ["Leverage vs star size (extension)", _RULE]
    for point in run_scaling_sweep(seed=seed):
        lines.append(point.render())
    return "\n".join(lines)


def render_figure4(router_count: int = 7) -> str:
    """Figure 4: the star topology, as ASCII plus its JSON description."""
    from ..topology import generate_star_network

    star = generate_star_network(router_count)
    names = [name for name in star.topology.router_names() if name != "R1"]
    lines = ["Figure 4: star network topology used for local synthesis", _RULE]
    lines.append("            CUSTOMER")
    lines.append("                |")
    lines.append("               R1")
    spokes = "   ".join(names)
    lines.append("      /   " * 1 + "|  ...  \\")
    lines.append(f"   {spokes}")
    isps = "   ".join(f"ISP_{name[1:]}" for name in names)
    lines.append(f"   {isps}")
    lines.append(_RULE)
    lines.append(f"routers: {len(star.topology.routers)}, "
                 f"links: {len(star.topology.links)}, "
                 f"external peers: {len(star.topology.externals)}")
    return "\n".join(lines)
