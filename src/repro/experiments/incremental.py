"""Incremental policy addition (the paper's §6 open question).

"Can GPT-4 add a new policy incrementally without interfering with
existing verified policy?"  This extension experiment answers it with
the VPP machinery:

* start from the *verified* no-transit star;
* ask the model to add a traffic-engineering policy on the hub —
  prepend AS 1 twice on exports toward one spoke (a depref), expressed
  as a new :class:`EgressPrependInvariant`;
* the simulated model commits the feared interference: it implements
  the prepend by rewriting the egress filter map, silently dropping the
  community-filter clauses that the no-transit policy depends on;
* COSYNTH re-verifies the *old* invariants alongside the new one, so
  the interference is caught as an egress-filter violation and repaired
  through the normal loop.

The measured answer: yes — provided the old invariants are re-checked;
the interference is invisible to the new invariant alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..batfish.bgpsim import ResimStats
from ..cisco import generate_cisco, parse_cisco
from ..core.humanizer import Humanizer, finding_from_warning
from ..core.leverage import PromptKind, PromptLog
from ..errors import ErrorCategory, Finding
from ..lightyear import (
    EgressPrependInvariant,
    IncrementalGlobalChecker,
    no_transit_invariants,
    verify_invariants,
)
from ..lightyear.compose import GlobalCheckResult, check_global_no_transit
from ..llm import BehaviorProfile, SimulatedGPT4
from ..llm.faults import Fault
from ..netmodel.ip import Ipv4Address
from ..netmodel.routing_policy import Action, RouteMap, RouteMapClause, SetAsPathPrepend
from ..topology import StarNetwork, generate_star_network
from ..topology.reference import build_reference_configs, egress_map_name

__all__ = ["IncrementalResult", "run_incremental_policy_experiment"]

TARGET_SPOKE = 4  # the depref applies to exports toward R4
PREPEND_ASN = 1
PREPEND_COUNT = 2


def _goal_hub_config(star: StarNetwork):
    """The correct end state: reference hub + prepend on R4's egress."""
    configs = build_reference_configs(star.topology)
    hub = configs["R1"]
    egress = hub.route_maps[egress_map_name(TARGET_SPOKE)]
    for clause in egress.clauses:
        if clause.action is Action.PERMIT:
            clause.sets.append(SetAsPathPrepend(PREPEND_ASN, PREPEND_COUNT))
    return hub


def _interference_fault() -> Fault:
    """The model rewrites the filter map to add the prepend, dropping the
    deny clauses — exactly the feared interference."""
    map_name = egress_map_name(TARGET_SPOKE)

    def transform(config) -> None:
        replacement = RouteMap(map_name)
        clause = RouteMapClause(seq=10, action=Action.PERMIT)
        clause.sets.append(SetAsPathPrepend(PREPEND_ASN, PREPEND_COUNT))
        replacement.add_clause(clause)
        config.route_maps[map_name] = replacement

    return Fault(
        key="interference_drops_filter",
        label="New policy rewrote the verified egress filter",
        category=ErrorCategory.SEMANTIC,
        fixable_by_generated_prompt=True,
        prompt_patterns=(rf"{map_name} permits routes",),
        ir_transform=transform,
    )


def _undercounted_prepend_fault() -> Fault:
    """The model prepends once instead of twice (new-invariant bug)."""
    map_name = egress_map_name(TARGET_SPOKE)

    def transform(config) -> None:
        route_map = config.route_maps.get(map_name)
        if route_map is None:
            return
        for clause in route_map.clauses:
            clause.sets = [
                SetAsPathPrepend(action.asn, 1)
                if isinstance(action, SetAsPathPrepend)
                else action
                for action in clause.sets
            ]

    return Fault(
        key="undercounted_prepend",
        label="Prepend applied fewer times than required",
        category=ErrorCategory.SEMANTIC,
        fixable_by_generated_prompt=True,
        prompt_patterns=(r"must be prepended",),
        ir_transform=transform,
    )


@dataclass
class IncrementalResult:
    """Outcome of the incremental-policy run."""

    verified: bool
    interference_caught: bool
    prompt_log: PromptLog
    findings: List[Finding] = field(default_factory=list)
    global_check: Optional[GlobalCheckResult] = None
    global_sim: Optional[ResimStats] = None

    def render(self) -> str:
        text = (
            f"incremental policy addition: interference "
            f"{'caught and repaired' if self.interference_caught else 'NOT caught'}; "
            f"{self.prompt_log.automated} automated prompt(s); "
            f"verified={self.verified}"
        )
        if self.global_check is not None:
            text += (
                f"; global no-transit "
                f"{'holds' if self.global_check.holds else 'BROKEN'}"
            )
            if self.global_sim is not None and self.global_sim.incremental:
                text += (
                    f" (re-simulated incrementally: "
                    f"{self.global_sim.reused_entries} RIB entries reused)"
                )
        return text


def run_incremental_policy_experiment(
    router_count: int = 7,
    seed: int = 0,
    profile: Optional[BehaviorProfile] = None,
    recheck_old_invariants: bool = True,
    max_prompts: int = 20,
) -> IncrementalResult:
    """Run the incremental-addition loop on the hub.

    ``recheck_old_invariants=False`` shows the negative control: without
    re-verification the interference ships silently (the run "verifies"
    against the new invariant only, yet no-transit is broken).
    """
    star = generate_star_network(router_count)
    goal = _goal_hub_config(star)
    faults = {
        fault.key: fault
        for fault in (_interference_fault(), _undercounted_prepend_fault())
    }
    model = SimulatedGPT4(
        catalog=faults,
        reference=goal,
        renderer=generate_cisco,
        initial_fault_keys=list(faults),
        seed=seed,
        profile=profile or BehaviorProfile.always_fix(),
    )
    old_invariants = [
        invariant
        for invariant in no_transit_invariants(star.topology)
        if invariant.router == "R1"
    ]
    hub_neighbor_ip = Ipv4Address.parse(f"{TARGET_SPOKE - 1}.0.0.2")
    new_invariant = EgressPrependInvariant(
        router="R1",
        neighbor_ip=hub_neighbor_ip,
        asn=PREPEND_ASN,
        count=PREPEND_COUNT,
    )
    invariants = list(old_invariants) if recheck_old_invariants else []
    invariants.append(new_invariant)

    humanizer = Humanizer()
    log = PromptLog()
    findings: List[Finding] = []
    interference_caught = False
    task = (
        "Starting from the verified R1 configuration, add a new policy: "
        f"prepend AS {PREPEND_ASN} {PREPEND_COUNT} times on all routes "
        f"exported to neighbor {hub_neighbor_ip} (R{TARGET_SPOKE}). Do not "
        "change any other behaviour."
    )
    log.add(PromptKind.INITIAL, "task", task, "R1")
    text = model.send(task)
    while log.automated < max_prompts:
        finding = _next_finding(text, invariants)
        if finding is None:
            break
        findings.append(finding)
        if "permits routes that have the community" in finding.message:
            interference_caught = True
        prompt = humanizer.humanize(finding)
        log.add(PromptKind.AUTOMATED, finding.category.value, prompt, "R1")
        text = model.send(prompt)
    verified = _next_finding(text, invariants) is None
    # Even in the no-recheck control, report whether no-transit survived.
    config = parse_cisco(text).config
    config.hostname = "R1"
    surviving_violations = verify_invariants({"R1": config}, old_invariants)
    if not recheck_old_invariants and surviving_violations:
        verified = False  # shipped broken: the point of the control
    # The global check re-simulates incrementally: the verified star is
    # converged once, then only the edited hub's dependency cone is
    # re-converged — exactly the delta the incremental-addition story
    # is about (one router changed, the rest of the network untouched).
    # The loop *knows* its delta is the hub, so it says so explicitly
    # instead of having the checker fingerprint every config.
    checker = IncrementalGlobalChecker()
    base_configs = build_reference_configs(star.topology)
    checker.simulate(base_configs)
    final_configs = dict(base_configs)
    final_configs["R1"] = config
    global_check = check_global_no_transit(
        final_configs, star.topology, checker=checker, changed_routers={"R1"}
    )
    return IncrementalResult(
        verified=verified and not surviving_violations,
        interference_caught=interference_caught,
        prompt_log=log,
        findings=findings,
        global_check=global_check,
        global_sim=checker.last_stats,
    )


def _next_finding(text: str, invariants: List[object]) -> Optional[Finding]:
    parsed = parse_cisco(text, filename="R1.cfg")
    if parsed.warnings:
        return finding_from_warning(parsed.warnings[0], router="R1")
    config = parsed.config
    config.hostname = "R1"
    violations = verify_invariants({"R1": config}, invariants)
    if violations:
        return Finding(
            category=ErrorCategory.SEMANTIC,
            message=violations[0].message,
            router="R1",
            detail=violations[0],
        )
    return None
