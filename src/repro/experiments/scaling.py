"""Scaling extension: leverage vs star size.

The paper closes with "much further testing in more complex use cases is
needed"; this experiment sweeps the star size (Figure 4's parameter) and
measures how prompt counts and leverage evolve — the fault assignment is
fixed, so added routers dilute errors and automated prompts dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import DEFAULT_IIP_IDS
from ..llm import BehaviorProfile
from .no_transit import run_no_transit_experiment

__all__ = ["ScalingPoint", "run_scaling_sweep"]


@dataclass(frozen=True)
class ScalingPoint:
    """One row of the scaling series."""

    router_count: int
    automated_prompts: int
    human_prompts: int
    leverage: float
    verified: bool

    def render(self) -> str:
        leverage = (
            "inf" if self.leverage == float("inf") else f"{self.leverage:.1f}"
        )
        return (
            f"n={self.router_count:>2}  automated={self.automated_prompts:>3}  "
            f"human={self.human_prompts:>2}  leverage={leverage:>5}X  "
            f"verified={self.verified}"
        )


def run_scaling_sweep(
    sizes: Sequence[int] = (4, 5, 6, 7, 8, 10),
    seed: int = 0,
    profile: Optional[BehaviorProfile] = None,
) -> List[ScalingPoint]:
    """Run the no-transit experiment across star sizes."""
    points: List[ScalingPoint] = []
    for size in sizes:
        experiment = run_no_transit_experiment(
            router_count=size,
            seed=seed,
            iip_ids=DEFAULT_IIP_IDS,
            profile=profile,
        )
        log = experiment.result.prompt_log
        points.append(
            ScalingPoint(
                router_count=size,
                automated_prompts=log.automated,
                human_prompts=log.human,
                leverage=log.leverage(),
                verified=experiment.result.verified,
            )
        )
    return points
