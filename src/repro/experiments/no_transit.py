"""Experiment driver for use case 2: no-transit local synthesis (§4).

Regenerates the §4.2 leverage measurement (≈12 automated vs 2 human →
~6X) on the 7-router star of Figure 4, and supports arbitrary star
sizes for the scaling extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import (
    DEFAULT_IIP_IDS,
    LoopLimits,
    ScriptedHuman,
    SynthesisOrchestrator,
    SynthesisRunResult,
)
from ..llm import (
    BehaviorProfile,
    SimulatedGPT4,
    make_synthesis_models,
    synthesis_fault_catalog,
)
from ..obs import span
from ..topology import StarNetwork, generate_network, generate_star_network

__all__ = [
    "NoTransitExperiment",
    "materialize_network",
    "run_no_transit_experiment",
]

DEFAULT_ROUTER_COUNT = 7  # Figure 4's star


@dataclass
class NoTransitExperiment:
    """A completed synthesis run plus the per-router models."""

    result: SynthesisRunResult
    models: Dict[str, SimulatedGPT4]
    star: "StarNetwork"  # a GeneratedNetwork for non-star families
    seed: int
    iip_ids: Sequence[str]
    family: str = "star"

    @property
    def network(self):
        """Family-neutral alias for the generated network."""
        return self.star

    @property
    def leverage(self) -> float:
        return self.result.leverage

    @property
    def automated_prompts(self) -> int:
        return self.result.prompt_log.automated

    @property
    def human_prompts(self) -> int:
        return self.result.prompt_log.human

    def resolutions(self) -> List[tuple]:
        """(router, fault_key, how) across all per-router chats."""
        rows = []
        for name in sorted(self.models):
            for key, how in self.models[name].resolution_log:
                rows.append((name, key, how))
        return rows

    def initial_draft_fault_counts(self) -> Dict[str, int]:
        """How many faults each router's first draft carried (before any
        correction) — reconstructed from resolutions plus leftovers."""
        counts: Dict[str, int] = {}
        for name, model in self.models.items():
            resolved = {key for key, _ in model.resolution_log}
            counts[name] = len(resolved | set(model.active_fault_keys()))
        return counts


def materialize_network(
    family: str = "star",
    router_count: int = DEFAULT_ROUTER_COUNT,
    roles: Optional[str] = None,
    topo: Optional[str] = None,
    topology_seed: int = 0,
    place: Optional[str] = None,
):
    """Generate the network for a coordinate tuple.

    This is the single point where (family, size, roles, knobs, seed,
    placement) coordinates become a concrete ``StarNetwork`` /
    ``GeneratedNetwork`` — byte-deterministic, so callers are free to
    materialize either in the parent process (config-shipping) or in a
    campaign worker (coordinate-shipping) and get identical configs.
    """
    if family == "star":
        # The star keeps its dedicated generator (hub-policy layout),
        # but honours the same contract as the other fixed-layout
        # families: role/knob/placement axes are rejected, never
        # silently ignored as if a roled scenario had actually run.
        from ..topology.randomnet import coerce_placement, parse_topo_params
        from ..topology.roles import RoleSpec

        if RoleSpec.coerce(roles) is not None:
            raise ValueError(
                "family 'star' has a fixed role layout; role specs apply "
                "to the seeded families (random, waxman)"
            )
        if parse_topo_params(topo):
            raise ValueError(
                "family 'star' takes no topology knobs; knobs apply to "
                "the seeded families (random, waxman)"
            )
        if coerce_placement(place) != "seeded":
            raise ValueError(
                "family 'star' has a fixed role layout; placement "
                "strategies apply to the seeded families (random, waxman)"
            )
        return generate_star_network(router_count)
    return generate_network(
        family,
        router_count,
        seed=topology_seed,
        roles=roles,
        params=topo,
        place=place,
    )


def run_no_transit_experiment(
    router_count: int = DEFAULT_ROUTER_COUNT,
    seed: int = 0,
    iip_ids: Sequence[str] = DEFAULT_IIP_IDS,
    profile: Optional[BehaviorProfile] = None,
    limits: Optional[LoopLimits] = None,
    pair_programming: bool = False,
    assignment: Optional[Dict[str, List[str]]] = None,
    family: str = "star",
    roles: Optional[str] = None,
    topo: Optional[str] = None,
    topology_seed: int = 0,
    place: Optional[str] = None,
    network=None,
) -> NoTransitExperiment:
    """Run the full §4 loop once and return everything measured.

    ``family`` selects the topology generator (star, chain, ring, mesh,
    dumbbell, random, waxman); the star keeps the paper's exact setup.
    For the seeded families, ``topology_seed`` picks the graph, while
    ``roles`` (a role spec such as ``c2i3h2``), ``topo`` (family knobs
    such as ``p=0.4`` or ``alpha=0.5,beta=0.7``), and ``place`` (role
    placement: ``seeded`` or ``degree``) shape what gets placed on it.

    Pass ``network`` (a pre-materialized :func:`materialize_network`
    result for the same coordinates) to skip generation — the campaign's
    config-shipping mode uses this to run on a parent-built network.
    """
    if network is None:
        with span("generate", family=family, size=router_count):
            star = materialize_network(
                family,
                router_count,
                roles=roles,
                topo=topo,
                topology_seed=topology_seed,
                place=place,
            )
    else:
        star = network
    with span("synthesize", family=family, size=router_count):
        models = make_synthesis_models(
            star.topology,
            iip_ids=iip_ids,
            seed=seed,
            profile=profile,
            assignment=assignment,
        )
        human = ScriptedHuman(synthesis_fault_catalog(star.topology))
        orchestrator = SynthesisOrchestrator(
            star.topology,
            models,
            human=human,
            limits=limits,
            iip_ids=iip_ids,
            pair_programming=pair_programming,
        )
        result = orchestrator.run()
    return NoTransitExperiment(
        result=result,
        models=models,
        star=star,
        seed=seed,
        iip_ids=list(iip_ids),
        family=family,
    )
