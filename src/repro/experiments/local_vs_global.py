"""Local vs global policy prompts (§4.1).

"We tried specifying to GPT-4 the global no-transit policy at once.
GPT-4 generated two innovative strategies: filtering routes using AS
path regular expressions, and denying ISP prefixes from being advertised
to other routers from the customer router.  Unfortunately ... when we
provided feedback in terms of a counterexample packet ... GPT-4 was
confused and kept oscillating between incorrect strategies."

The global-prompt model here implements exactly those two strategies —
both plausible, both globally wrong — and flips between them on every
counterexample, reproducing the oscillation.  The local approach is the
regular :func:`run_no_transit_experiment`, which converges.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..lightyear.compose import IncrementalGlobalChecker, check_global_no_transit
from ..netmodel.aspath import AsPathAccessList
from ..netmodel.device import RouterConfig
from ..netmodel.routing_policy import (
    Action,
    MatchAsPathList,
    MatchPrefixList,
    RouteMap,
    RouteMapClause,
)
from ..netmodel.ip import PrefixRange
from ..netmodel.prefixlist import PrefixList
from ..topology import StarNetwork, generate_network, generate_star_network
from ..topology.generator import CUSTOMER_ASN
from ..topology.reference import build_reference_configs
from .no_transit import run_no_transit_experiment

__all__ = [
    "LocalVsGlobalResult",
    "OscillatingGlobalModel",
    "run_local_vs_global",
]


class OscillatingGlobalModel:
    """Simulated GPT-4 under a single global-spec prompt.

    Produces whole-network snapshots; every counterexample prompt makes
    it abandon the current (incorrect) strategy for the other one.
    """

    STRATEGIES = ("as-path-regex", "deny-at-customer")

    def __init__(self, star: StarNetwork) -> None:
        """``star`` may be any generated network (StarNetwork or
        GeneratedNetwork) — the strategies rewrite whichever routers
        carry the egress filters."""
        self._star = star
        self._references = build_reference_configs(star.topology)
        self._strategy_index = 0
        self.strategy_history: List[str] = []
        # The routers either strategy ever touches: every filter owner
        # plus the customer router (the deny-at-customer strategy).
        # This *is* the model's changed-router delta between rounds —
        # the model knows what it rewrites, so the global re-check
        # needs no config fingerprinting to find out.
        self._touched = {
            name
            for name, config in self._references.items()
            if any(
                map_name.startswith("FILTER_COMM_OUT_")
                for map_name in config.route_maps
            )
        }
        self._touched.add(self._customer_router(self._references).hostname)
        self.last_changed: Optional[set] = None  # None until round two

    @property
    def current_strategy(self) -> str:
        return self.STRATEGIES[self._strategy_index % 2]

    def generate(self) -> Dict[str, RouterConfig]:
        """The current full-network draft."""
        # From the second draft on, the model hands the checker the
        # routers it rewrites; the first draft has no prior state to
        # be incremental against.
        self.last_changed = set(self._touched) if self.strategy_history else None
        self.strategy_history.append(self.current_strategy)
        configs = {
            name: copy.deepcopy(config)
            for name, config in self._references.items()
        }
        if self.current_strategy == "as-path-regex":
            for config in configs.values():
                self._apply_as_path_strategy(config)
        else:
            for config in configs.values():
                self._replace_filters_with_permit_all(config)
            self._apply_customer_deny_strategy(
                self._customer_router(configs)
            )
        return configs

    @staticmethod
    def _customer_router(configs: Dict[str, RouterConfig]) -> RouterConfig:
        """The router holding the CUSTOMER session (R1 in every bundled
        family)."""
        for config in configs.values():
            if config.bgp is not None and (
                config.bgp.get_neighbor("100.0.0.2") is not None
            ):
                return config
        raise ValueError("no router peers with the CUSTOMER at 100.0.0.2")

    def feedback(self, counterexample: str) -> None:
        """A global counterexample confuses the model into switching
        strategies (§4.1's oscillation)."""
        self._strategy_index += 1

    # -- the two plausible-but-wrong strategies ------------------------------

    def _apply_as_path_strategy(self, config: RouterConfig) -> None:
        """Filter at egress by AS-path regex — but the regex only drops
        paths through the CUSTOMER AS, which transit routes never carry,
        so ISP-to-ISP leakage persists."""
        filters = [
            name
            for name in config.route_maps
            if name.startswith("FILTER_COMM_OUT_")
        ]
        if not filters:
            return
        as_path_list = AsPathAccessList("1")
        as_path_list.add("deny", f"_{CUSTOMER_ASN}_")
        as_path_list.add("permit", ".*")
        config.add_as_path_list(as_path_list)
        for name in filters:
            replacement = RouteMap(name)
            clause = RouteMapClause(seq=10, action=Action.PERMIT)
            clause.matches.append(MatchAsPathList("1"))
            replacement.add_clause(clause)
            config.route_maps[name] = replacement

    @staticmethod
    def _replace_filters_with_permit_all(config: RouterConfig) -> None:
        for name in list(config.route_maps):
            if name.startswith("FILTER_COMM_OUT_"):
                config.route_maps[name] = _permit_all_map(name)

    def _apply_customer_deny_strategy(self, hub: RouterConfig) -> None:
        """Deny ISP prefixes toward the CUSTOMER — which does nothing
        about ISP-to-ISP transit elsewhere in the network."""
        customer_router_name = hub.hostname or "R1"
        prefix_list = PrefixList("isp-prefixes")
        for name in self._star.topology.router_names():
            if name == customer_router_name:
                continue
            for network in self._star.topology.router(name).networks:
                prefix_list.add("permit", PrefixRange.exact(network))
        hub.add_prefix_list(prefix_list)
        customer_filter = RouteMap("DENY_ISP_TO_CUSTOMER")
        deny = RouteMapClause(seq=10, action=Action.DENY)
        deny.matches.append(MatchPrefixList("isp-prefixes"))
        customer_filter.add_clause(deny)
        customer_filter.add_clause(RouteMapClause(seq=20, action=Action.PERMIT))
        hub.add_route_map(customer_filter)
        assert hub.bgp is not None
        customer_neighbor = hub.bgp.get_neighbor("100.0.0.2")
        if customer_neighbor is not None:
            customer_neighbor.export_policy = "DENY_ISP_TO_CUSTOMER"


def _permit_all_map(name: str) -> RouteMap:
    route_map = RouteMap(name)
    route_map.add_clause(RouteMapClause(seq=10, action=Action.PERMIT))
    return route_map


@dataclass
class LocalVsGlobalResult:
    """Outcome of the comparison."""

    global_converged: bool
    global_rounds: int
    global_strategies: List[str]
    local_converged: bool
    local_correction_prompts: int

    def render(self) -> str:
        oscillation = " -> ".join(self.global_strategies)
        return (
            f"global spec: {'converged' if self.global_converged else 'did NOT converge'} "
            f"after {self.global_rounds} counterexample rounds "
            f"({oscillation}); local specs: "
            f"{'converged' if self.local_converged else 'did not converge'} "
            f"with {self.local_correction_prompts} correction prompts"
        )


def run_local_vs_global(
    router_count: int = 7,
    max_global_rounds: int = 6,
    seed: int = 0,
    family: str = "star",
) -> LocalVsGlobalResult:
    """Drive both prompting regimes on the same network (any family)."""
    star = (
        generate_star_network(router_count)
        if family == "star"
        else generate_network(family, router_count)
    )
    model = OscillatingGlobalModel(star)
    converged = False
    rounds = 0
    # One warm simulation state across all counterexample rounds: each
    # global re-check re-converges only the routers the model rewrote,
    # named explicitly by the model itself — no fingerprint diffing.
    checker = IncrementalGlobalChecker()
    for rounds in range(1, max_global_rounds + 1):
        configs = model.generate()
        check = check_global_no_transit(
            configs,
            star.topology,
            checker=checker,
            changed_routers=model.last_changed,
        )
        if check.holds:
            converged = True
            break
        counterexample = (
            check.transit_violations
            + check.customer_unreachable
            + check.isp_prefixes_missing_at_hub
        )[0]
        model.feedback(
            f"The no-transit policy is violated: {counterexample}. "
            f"Please fix the configurations."
        )
    local = run_no_transit_experiment(
        router_count=router_count, seed=seed, family=family
    )
    return LocalVsGlobalResult(
        global_converged=converged,
        global_rounds=rounds,
        global_strategies=list(model.strategy_history),
        local_converged=local.result.verified,
        local_correction_prompts=(
            local.result.prompt_log.automated + local.result.prompt_log.human
        ),
    )
