"""Sample rectification prompts (Tables 1 and 3).

Both tables show, per error class, an example of the humanizer's output
with the verifier-supplied fields spliced in.  These helpers run the
real loops and harvest the first generated prompt of each class — so the
printed tables are produced by the actual humanizer on actual verifier
findings, not hard-coded strings.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.leverage import PromptKind
from .no_transit import run_no_transit_experiment
from .translation import run_translation_experiment

__all__ = [
    "sample_synthesis_prompts",
    "sample_translation_prompts",
]

_TRANSLATION_STAGES = ("syntax", "structural", "attribute", "policy")
_SYNTHESIS_STAGES = ("syntax", "topology", "semantic")


def sample_translation_prompts(seed: int = 0) -> List[Tuple[str, str]]:
    """(error class, example generated prompt) pairs — Table 1.

    One representative automated prompt per class, in the paper's order.
    """
    experiment = run_translation_experiment(seed=seed)
    return _first_per_stage(
        experiment.result.prompt_log.records, _TRANSLATION_STAGES
    )


def sample_synthesis_prompts(seed: int = 0) -> List[Tuple[str, str]]:
    """(error class, example generated prompt) pairs — Table 3.

    The paper's synthesis table shows several topology examples; this
    returns one per class (the bench prints all topology prompts)."""
    experiment = run_no_transit_experiment(seed=seed)
    return _first_per_stage(
        experiment.result.prompt_log.records, _SYNTHESIS_STAGES
    )


def all_stage_prompts(records, stage: str) -> List[str]:
    """Every automated prompt of one stage, in order."""
    return [
        record.text
        for record in records
        if record.kind is PromptKind.AUTOMATED and record.stage == stage
    ]


def _first_per_stage(records, stages) -> List[Tuple[str, str]]:
    found: Dict[str, str] = {}
    for record in records:
        if record.kind is not PromptKind.AUTOMATED:
            continue
        if record.stage in stages and record.stage not in found:
            found[record.stage] = record.text
    return [(stage, found[stage]) for stage in stages if stage in found]
