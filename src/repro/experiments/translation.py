"""Experiment driver for use case 1: Cisco→Juniper translation (§3).

Regenerates Table 2 (which errors occurred and whether the generated
prompt sufficed) and the §3.2 leverage measurement (≈20 automated vs 2
human prompts → ~10X).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import (
    LoopLimits,
    ScriptedHuman,
    TranslationOrchestrator,
    TranslationRunResult,
)
from ..llm import (
    BehaviorProfile,
    DEFAULT_INITIAL_FAULTS,
    SimulatedGPT4,
    make_translation_model,
    translation_fault_catalog,
)
from .data import load_translation_source

__all__ = [
    "Table2Row",
    "TranslationExperiment",
    "run_translation_experiment",
]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2."""

    error: str
    error_type: str
    fixed_by_generated_prompt: bool

    def render(self) -> str:
        fixed = "Yes" if self.fixed_by_generated_prompt else "No"
        return f"{self.error:<45} {self.error_type:<20} {fixed}"


@dataclass
class TranslationExperiment:
    """A completed run plus the model it drove."""

    result: TranslationRunResult
    model: SimulatedGPT4
    seed: int

    @property
    def leverage(self) -> float:
        return self.result.leverage

    @property
    def automated_prompts(self) -> int:
        return self.result.prompt_log.automated

    @property
    def human_prompts(self) -> int:
        return self.result.prompt_log.human

    def table2_rows(self) -> List[Table2Row]:
        """Errors encountered during the run, Table 2 style.

        "Fixed" means the generated (automated) prompt sufficed; faults
        resolved only after a human prompt get "No", exactly the paper's
        criterion.
        """
        catalog = translation_fault_catalog()
        resolved_by: Dict[str, str] = {}
        for key, how in self.model.resolution_log:
            # Keep the *first* resolution: a later regression re-fix
            # does not change how the error class was originally beaten.
            resolved_by.setdefault(key, how)
        rows: List[Table2Row] = []
        seen_labels = set()
        order = list(DEFAULT_INITIAL_FAULTS) + ["invalid_prefix_list_syntax"]
        for key in order:
            fault = catalog[key]
            if fault.label in seen_labels:
                continue
            if key not in resolved_by and key not in self._encountered_keys():
                continue
            seen_labels.add(fault.label)
            rows.append(
                Table2Row(
                    error=fault.label,
                    error_type=_type_name(fault.category.value),
                    fixed_by_generated_prompt=(
                        resolved_by.get(key) == "generated"
                    ),
                )
            )
        return rows

    def _encountered_keys(self) -> set:
        keys = set(DEFAULT_INITIAL_FAULTS)
        keys.update(key for key, _ in self.model.resolution_log)
        return keys


def _type_name(category_value: str) -> str:
    return {
        "syntax": "Syntax error",
        "structural": "Structure mismatch",
        "attribute": "Attribute error",
        "policy": "Policy error",
    }.get(category_value, category_value)


def run_translation_experiment(
    seed: int = 0,
    profile: Optional[BehaviorProfile] = None,
    limits: Optional[LoopLimits] = None,
    initial_faults: Sequence[str] = DEFAULT_INITIAL_FAULTS,
    pair_programming: bool = False,
) -> TranslationExperiment:
    """Run the full §3 loop once and return everything measured.

    The default limits allow three automated tries per finding — the
    paper's translation loop shows more automated patience ("minor
    cycles for syntax correction not just at the start but also after
    correcting semantic errors") than the synthesis loop.
    """
    source = load_translation_source()
    model = make_translation_model(
        seed=seed, profile=profile, initial_faults=initial_faults, source=source
    )
    human = ScriptedHuman(translation_fault_catalog())
    orchestrator = TranslationOrchestrator(
        source,
        model,
        human=human,
        limits=limits or LoopLimits(attempts_per_finding=3),
        pair_programming=pair_programming,
    )
    result = orchestrator.run()
    return TranslationExperiment(result=result, model=model, seed=seed)
