"""The asyncio scheduler: shards, persistent workers, retries, state dir.

:class:`CampaignService` owns a fixed set of worker *slots*.  Each slot
is one persistent OS process (spawn start method — fork from an
asyncio/multi-threaded parent inherits locked queue-feeder locks) with
its own task queue; all slots share one result queue.  The scheduler's
pump loop drains results, checks worker liveness and heartbeat
freshness, and dispatches pending work units to idle slots — one
in-flight unit per worker, so a dead worker forfeits exactly one unit
and the scheduler knows which.

Everything durable lives in the state directory::

    <state_dir>/<campaign id>/spec.json        submission + materialized grid
    <state_dir>/<campaign id>/manifest.jsonl   header-only journal (grid keys)
    <state_dir>/<campaign id>/shard-NN.jsonl   one v6 journal per worker slot

Workers append finished scenarios to their shard before reporting
them, so the scheduler's in-memory progress is always a lower bound on
what is journaled.  On startup the service folds every campaign's
shards and resubmits only the missing scenarios (partially-finished
units carry a skip set) — a grid survives worker SIGKILLs *and* full
service restarts, and ``repro campaign --report <campaign dir>``
renders artifacts byte-identical to an uninterrupted batch run.
"""

from __future__ import annotations

import asyncio
import json
import logging
import multiprocessing
import queue as queue_module
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from ..experiments.campaign import (
    CampaignSummary,
    CompletedScenario,
    Scenario,
    _append,
    _journal_header,
    _open_journal,
    _scan_journal,
    summary_from_journals,
)
from ..obs import merge as metrics_merge
from ..obs import render_prometheus, sanitize_metric_name
from .spec import CampaignSpec, shard_scenarios, spec_fingerprint
from .worker import worker_main

__all__ = ["CampaignService", "CampaignState", "WorkUnit"]

_LOGGER = logging.getLogger(__name__)

SPEC_FILENAME = "spec.json"
MANIFEST_FILENAME = "manifest.jsonl"


def _metric_summary(metrics: Dict[str, float]) -> Dict[str, Any]:
    """A compact per-worker digest of a cumulative registry snapshot,
    small enough to inline in ``/healthz`` and ``repro status``."""
    cache_hits = 0
    cache_misses = 0
    for name, value in metrics.items():
        if name.startswith("memo."):
            if name.endswith(".hits"):
                cache_hits += int(value)
            elif name.endswith(".misses"):
                cache_misses += int(value)
    return {
        "scenarios": int(metrics.get("phase.scenario.count", 0)),
        "scenario_time_s": round(
            float(metrics.get("phase.scenario.total_s", 0.0)), 3
        ),
        "routes_built": int(metrics.get("route.routes_built", 0)),
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
    }


@dataclass
class WorkUnit:
    """One contiguous grid slice: the unit of dispatch and retry."""

    index: int
    scenarios: List[Scenario]
    state: str = "pending"  # pending | running | done | failed
    attempts: int = 0  # dispatches so far (1 = first run, no retry yet)
    done_keys: Set[str] = field(default_factory=set)
    slot: Optional[int] = None

    @property
    def keys(self) -> List[str]:
        return [scenario.key() for scenario in self.scenarios]

    @property
    def remaining(self) -> int:
        return sum(1 for key in self.keys if key not in self.done_keys)


@dataclass
class CampaignState:
    """One submitted campaign: its grid, units, and progress."""

    id: str
    spec: CampaignSpec
    grid: List[Scenario]
    shard_size: int
    directory: Path
    units: List[WorkUnit]
    resumed: int = 0  # keys recovered from shard journals at (re)load
    retries: int = 0  # resubmissions after worker death or stall
    error_keys: Set[str] = field(default_factory=set)
    # The campaign's merged registry delta: one per-scenario delta folded
    # per *distinct* key (rows are deduplicated against done_keys before
    # merging, so a unit resubmitted after a worker death cannot
    # double-count a scenario; journal-recovered rows fold in at load).
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.grid)

    @property
    def completed(self) -> int:
        return sum(len(unit.done_keys) for unit in self.units)

    @property
    def state(self) -> str:
        if all(unit.state == "done" for unit in self.units):
            return "done"
        if any(unit.state in ("pending", "running") for unit in self.units):
            return "running"
        return "failed"  # nothing left to schedule, but units failed

    def status(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "state": self.state,
            "total": self.total,
            "completed": self.completed,
            "errors": len(self.error_keys),
            "resumed": self.resumed,
            "retries": self.retries,
            "shard_size": self.shard_size,
            "units": [
                {
                    "unit": unit.index,
                    "state": unit.state,
                    "size": len(unit.scenarios),
                    "done": len(unit.done_keys),
                    "attempts": unit.attempts,
                    "slot": unit.slot,
                }
                for unit in self.units
            ],
        }


class _Slot:
    """One persistent worker: process + private task queue + liveness."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.tasks = None  # per-incarnation task queue
        self.unit: Optional[Tuple[str, int]] = None  # (campaign id, unit idx)
        self.last_seen: float = 0.0
        self.generation: int = 0  # respawn count, for status/debugging
        # Latest cumulative registry snapshot this incarnation shipped on
        # a heartbeat (merged into the service's retired pool on respawn).
        self.metrics: Dict[str, float] = {}

    @property
    def heartbeat_age_s(self) -> float:
        return max(0.0, time.monotonic() - self.last_seen)

    @property
    def queue_depth(self) -> int:
        if self.tasks is None:
            return 0
        try:
            return self.tasks.qsize()
        except (NotImplementedError, OSError):
            return 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def idle(self) -> bool:
        return self.alive and self.unit is None


class CampaignService:
    """The long-running scheduler behind ``repro serve``."""

    def __init__(
        self,
        state_dir: "Path | str",
        workers: int = 2,
        retry_limit: int = 2,
        heartbeat_s: float = 0.5,
        stall_timeout_s: Optional[float] = 60.0,
        poll_s: float = 0.02,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.state_dir = Path(state_dir)
        self.workers = workers
        self.retry_limit = retry_limit
        self.heartbeat_s = heartbeat_s
        self.stall_timeout_s = stall_timeout_s
        self.poll_s = poll_s
        self.started_at = time.monotonic()
        self._ctx = multiprocessing.get_context("spawn")
        self._results = self._ctx.Queue()
        self._slots = [_Slot(index) for index in range(workers)]
        # Cumulative snapshots of dead worker incarnations, so respawns
        # never lose metric history (heartbeat-sourced, best-effort).
        self._retired_metrics: Dict[str, float] = {}
        self._campaigns: Dict[str, CampaignState] = {}
        self._stop_event: Optional[asyncio.Event] = None
        self._running = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool and reload persisted campaigns."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._load_campaigns()
        for slot in self._slots:
            self._spawn(slot)
        self._running = True

    async def run(self) -> None:
        """Serve until :meth:`request_stop` — the asyncio main loop."""
        self._stop_event = asyncio.Event()
        if not self._running:
            self.start()
        try:
            while not self._stop_event.is_set():
                self._drain_results()
                self._reap_workers()
                self._dispatch()
                try:
                    await asyncio.wait_for(
                        self._stop_event.wait(), timeout=self.poll_s
                    )
                except asyncio.TimeoutError:
                    pass
        finally:
            self.shutdown()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def shutdown(self, join_timeout_s: float = 2.0) -> None:
        """Stop workers; in-flight units stay journaled up to their last
        finished scenario and resume on the next start."""
        self._running = False
        for slot in self._slots:
            if slot.alive and slot.tasks is not None:
                try:
                    slot.tasks.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + join_timeout_s
        for slot in self._slots:
            if slot.process is None:
                continue
            slot.process.join(max(0.0, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(1.0)
            slot.process = None

    # -- submission & queries --------------------------------------------------

    def submit(self, spec: CampaignSpec) -> CampaignState:
        """Validate, persist, and enqueue a campaign; returns its state.

        Everything needed to finish the campaign after a crash is on
        disk before this returns: the materialized grid in
        ``spec.json`` and the grid-ordered manifest header the offline
        report merges shards under.
        """
        grid = spec.build()  # ValueError on bad axes, same as batch CLI
        if not grid:
            raise ValueError("campaign grid is empty")
        shard_size = spec.resolve_shard_size(len(grid), self.workers)
        campaign_id = self._next_id()
        directory = self.state_dir / campaign_id
        directory.mkdir(parents=True)
        (directory / SPEC_FILENAME).write_text(
            json.dumps(
                {
                    "id": campaign_id,
                    "spec": spec.to_dict(),
                    "shard_size": shard_size,
                    "grid": [asdict(scenario) for scenario in grid],
                },
                indent=2,
            )
            + "\n"
        )
        manifest = _open_journal(directory / MANIFEST_FILENAME, append=False)
        try:
            _append(manifest, _journal_header(grid))
        finally:
            manifest.close()
        state = CampaignState(
            id=campaign_id,
            spec=spec,
            grid=grid,
            shard_size=shard_size,
            directory=directory,
            units=[
                WorkUnit(index=index, scenarios=slice_)
                for index, slice_ in enumerate(
                    shard_scenarios(grid, shard_size)
                )
            ],
        )
        self._campaigns[campaign_id] = state
        _LOGGER.info(
            "campaign %s submitted (spec %s): %d scenario(s) in %d unit(s)",
            campaign_id, spec_fingerprint(spec), state.total, len(state.units),
        )
        return state

    def campaign(self, campaign_id: str) -> CampaignState:
        try:
            return self._campaigns[campaign_id]
        except KeyError:
            raise ValueError(f"unknown campaign {campaign_id!r}") from None

    def campaign_ids(self) -> List[str]:
        return sorted(self._campaigns)

    def status(self, campaign_id: str) -> Dict[str, Any]:
        return self.campaign(campaign_id).status()

    def workers_status(self) -> List[Dict[str, Any]]:
        return [
            {
                "slot": slot.index,
                "pid": slot.process.pid if slot.process is not None else None,
                "alive": slot.alive,
                "generation": slot.generation,
                "restarts": max(0, slot.generation - 1),
                "heartbeat_age_s": round(slot.heartbeat_age_s, 3),
                "queue_depth": slot.queue_depth,
                "unit": (
                    f"{slot.unit[0]}:{slot.unit[1]}"
                    if slot.unit is not None else None
                ),
                "metrics": _metric_summary(slot.metrics),
            }
            for slot in self._slots
        ]

    def service_health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload: liveness, uptime, version, per-worker
        heartbeat ages and metric summaries."""
        from .. import __version__

        return {
            "ok": True,
            "version": __version__,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "campaigns": len(self.campaign_ids()),
            "workers": self.workers_status(),
        }

    def campaign_metrics(self) -> Dict[str, float]:
        """Every campaign's merged per-scenario registry deltas — each
        journaled scenario counted exactly once, so for settled campaigns
        these equal the journal-folded totals."""
        return metrics_merge(
            {}, *(state.metrics for state in self._campaigns.values())
        )

    def worker_metrics(self) -> Dict[str, float]:
        """Cumulative registry series across every worker incarnation,
        dead or alive (heartbeat-sourced; includes warmup/in-flight work
        the per-campaign view excludes)."""
        merged = dict(self._retired_metrics)
        return metrics_merge(merged, *(slot.metrics for slot in self._slots))

    def metrics_samples(self) -> List[Tuple[str, Optional[Dict[str, str]], float, str]]:
        """Everything ``GET /metrics`` exposes, as Prometheus samples."""
        now = time.monotonic()
        uptime_s = max(now - self.started_at, 1e-9)
        completed = sum(
            state.completed for state in self._campaigns.values()
        )
        errors = sum(
            len(state.error_keys) for state in self._campaigns.values()
        )
        inflight = sum(1 for slot in self._slots if slot.unit is not None)
        pending_units = sum(
            1
            for state in self._campaigns.values()
            for unit in state.units
            if unit.state == "pending"
        )
        retries = sum(state.retries for state in self._campaigns.values())
        samples: List[Tuple[str, Optional[Dict[str, str]], float, str]] = [
            ("repro_service_uptime_seconds", None, uptime_s, "gauge"),
            ("repro_service_workers", None, len(self._slots), "gauge"),
            ("repro_service_campaigns", None, len(self._campaigns), "gauge"),
            ("repro_service_inflight_units", None, inflight, "gauge"),
            ("repro_service_pending_units", None, pending_units, "gauge"),
            ("repro_scenarios_completed_total", None, completed, "counter"),
            ("repro_scenario_errors_total", None, errors, "counter"),
            ("repro_unit_retries_total", None, retries, "counter"),
            (
                "repro_scenarios_per_second",
                None,
                completed / uptime_s,
                "gauge",
            ),
        ]
        for slot in self._slots:
            labels = {"slot": str(slot.index)}
            samples.extend(
                [
                    ("repro_worker_alive", labels, 1 if slot.alive else 0,
                     "gauge"),
                    ("repro_worker_heartbeat_age_seconds", labels,
                     slot.heartbeat_age_s, "gauge"),
                    ("repro_worker_restarts_total", labels,
                     max(0, slot.generation - 1), "counter"),
                    ("repro_worker_queue_depth", labels, slot.queue_depth,
                     "gauge"),
                    ("repro_worker_inflight_units", labels,
                     1 if slot.unit is not None else 0, "gauge"),
                ]
            )
        # The campaign-folded registry series (exactly-once per scenario:
        # these match what `campaign --report <dir>` folds from journals).
        folded = self.campaign_metrics()
        for name in sorted(folded):
            kind = "gauge" if name.endswith(".max_s") else "counter"
            samples.append(
                (f"repro_{sanitize_metric_name(name)}", None, folded[name],
                 kind)
            )
        return samples

    def prometheus_text(self) -> str:
        return render_prometheus(self.metrics_samples())

    def journals(self, campaign_id: str) -> List[Path]:
        """Manifest + existing shard journals, manifest first (the
        merge order that reproduces batch-run row order)."""
        state = self.campaign(campaign_id)
        return [
            state.directory / MANIFEST_FILENAME,
            *sorted(state.directory.glob("shard-*.jsonl")),
        ]

    def result(self, campaign_id: str) -> Tuple[CampaignSummary, bool]:
        """The merged summary *right now* — streamable mid-run — plus
        whether the campaign is complete."""
        state = self.campaign(campaign_id)
        summary = summary_from_journals(self.journals(campaign_id))
        return summary, state.state == "done"

    # -- internals -------------------------------------------------------------

    def _next_id(self) -> str:
        taken = set(self._campaigns)
        if self.state_dir.exists():
            taken.update(p.name for p in self.state_dir.iterdir() if p.is_dir())
        index = len(taken) + 1
        while f"c{index:04d}" in taken:
            index += 1
        return f"c{index:04d}"

    def _shard_path(self, state: CampaignState, slot: int) -> Path:
        return state.directory / f"shard-{slot:02d}.jsonl"

    def _load_campaigns(self) -> None:
        """Reload persisted campaigns; completed scenarios (folded from
        the shard journals) are never re-run."""
        for spec_path in sorted(self.state_dir.glob(f"*/{SPEC_FILENAME}")):
            directory = spec_path.parent
            try:
                payload = json.loads(spec_path.read_text())
                spec = CampaignSpec.from_dict(payload["spec"])
                grid = [Scenario(**coords) for coords in payload["grid"]]
                shard_size = int(payload["shard_size"])
                campaign_id = payload["id"]
            except (KeyError, TypeError, ValueError) as exc:
                _LOGGER.warning(
                    "skipping unreadable campaign dir %s: %s", directory, exc
                )
                continue
            key_set = {scenario.key() for scenario in grid}
            folded: Dict[str, CompletedScenario] = {}
            for shard in sorted(directory.glob("shard-*.jsonl")):
                records, _ = _scan_journal(shard, key_set)
                folded.update(records)
            done: Set[str] = set(folded)
            errors: Set[str] = {
                key for key, record in folded.items()
                if record.row.error is not None
            }
            recovered_metrics: Dict[str, float] = metrics_merge(
                {}, *(record.metrics for record in folded.values())
            )
            units = []
            for index, slice_ in enumerate(shard_scenarios(grid, shard_size)):
                unit = WorkUnit(index=index, scenarios=slice_)
                unit.done_keys = {
                    key for key in unit.keys if key in done
                }
                if unit.remaining == 0:
                    unit.state = "done"
                units.append(unit)
            self._campaigns[campaign_id] = CampaignState(
                id=campaign_id,
                spec=spec,
                grid=grid,
                shard_size=shard_size,
                directory=directory,
                units=units,
                resumed=len(done),
                error_keys=errors,
                metrics=recovered_metrics,
            )
            pending = sum(1 for unit in units if unit.state == "pending")
            _LOGGER.info(
                "campaign %s reloaded: %d/%d scenario(s) journaled, "
                "%d unit(s) pending", campaign_id, len(done), len(grid),
                pending,
            )

    def _spawn(self, slot: _Slot) -> None:
        """(Re)start a slot with a fresh task queue.  The old queue may
        hold a partially-consumed item from the dead incarnation, so it
        is abandoned wholesale — the in-flight unit is re-dispatched
        explicitly by the caller."""
        if slot.metrics:
            # Keep the dead incarnation's cumulative history before the
            # fresh process starts its series from zero.
            metrics_merge(self._retired_metrics, slot.metrics)
            slot.metrics = {}
        slot.tasks = self._ctx.Queue()
        slot.process = self._ctx.Process(
            target=worker_main,
            args=(
                slot.index,
                slot.tasks,
                self._results,
                self._toggle_snapshot(),
                self.heartbeat_s,
            ),
            daemon=True,
            name=f"repro-service-worker-{slot.index}",
        )
        slot.process.start()
        slot.generation += 1
        slot.unit = None
        slot.last_seen = time.monotonic()

    @staticmethod
    def _toggle_snapshot() -> Dict[str, Any]:
        from ..core import toggles

        return toggles.snapshot()

    def _drain_results(self) -> None:
        while True:
            try:
                message = self._results.get_nowait()
            except queue_module.Empty:
                break
            except (EOFError, OSError):
                break
            kind, slot_index = message[0], message[1]
            if 0 <= slot_index < len(self._slots):
                self._slots[slot_index].last_seen = time.monotonic()
            if kind == "hb":
                if len(message) > 2 and isinstance(message[2], dict):
                    if 0 <= slot_index < len(self._slots):
                        self._slots[slot_index].metrics = message[2]
            elif kind == "row":
                _, _, campaign_id, unit_index, key, has_error = message[:6]
                row_metrics = message[6] if len(message) > 6 else None
                state = self._campaigns.get(campaign_id)
                if state is None or not 0 <= unit_index < len(state.units):
                    continue
                unit = state.units[unit_index]
                if key not in unit.done_keys:
                    # First sighting of this key: fold its delta.  A row
                    # journaled by a worker that died before reporting it
                    # re-executes on resubmit and lands here exactly once
                    # — set semantics keep the count honest either way.
                    unit.done_keys.add(key)
                    if isinstance(row_metrics, dict):
                        metrics_merge(state.metrics, row_metrics)
                if has_error:
                    state.error_keys.add(key)
            elif kind == "unit":
                _, _, campaign_id, unit_index = message
                state = self._campaigns.get(campaign_id)
                if state is None or not 0 <= unit_index < len(state.units):
                    continue
                unit = state.units[unit_index]
                # Guard against a stalled-then-killed worker's stale
                # completion racing the resubmitted unit: only the
                # current owner may complete it.
                if unit.slot == slot_index:
                    unit.state = "done"
                    unit.slot = None
                    slot = self._slots[slot_index]
                    if slot.unit == (campaign_id, unit_index):
                        slot.unit = None

    def _reap_workers(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if not self._running:
                return
            if slot.process is None:
                continue
            dead = not slot.process.is_alive()
            stalled = (
                not dead
                and self.stall_timeout_s is not None
                and slot.unit is not None
                and now - slot.last_seen > self.stall_timeout_s
            )
            if not dead and not stalled:
                continue
            if stalled:
                _LOGGER.warning(
                    "worker %d silent for %.1fs with unit %s in flight; "
                    "killing it", slot.index, now - slot.last_seen, slot.unit,
                )
                slot.process.kill()
                slot.process.join(1.0)
            forfeited = slot.unit
            _LOGGER.warning(
                "worker %d (pid %s) died%s; respawning",
                slot.index, slot.process.pid,
                f" with unit {forfeited} in flight" if forfeited else "",
            )
            self._spawn(slot)
            if forfeited is not None:
                self._forfeit(forfeited)

    def _forfeit(self, assignment: Tuple[str, int]) -> None:
        campaign_id, unit_index = assignment
        state = self._campaigns.get(campaign_id)
        if state is None or not 0 <= unit_index < len(state.units):
            return
        unit = state.units[unit_index]
        if unit.state != "running":
            return
        unit.slot = None
        if unit.attempts > self.retry_limit:
            unit.state = "failed"
            _LOGGER.error(
                "campaign %s unit %d failed: retry budget (%d) exhausted "
                "after %d attempt(s); %d scenario(s) of the unit are "
                "journaled", campaign_id, unit_index, self.retry_limit,
                unit.attempts, len(unit.done_keys),
            )
        else:
            unit.state = "pending"
            state.retries += 1
            _LOGGER.info(
                "campaign %s unit %d resubmitted (attempt %d of %d); "
                "%d finished scenario(s) will be skipped",
                campaign_id, unit_index, unit.attempts + 1,
                self.retry_limit + 1, len(unit.done_keys),
            )

    def _dispatch(self) -> None:
        for slot in self._slots:
            if not slot.idle:
                continue
            assignment = self._next_pending()
            if assignment is None:
                return
            state, unit = assignment
            payload = {
                "campaign": state.id,
                "unit": unit.index,
                "scenarios": [asdict(s) for s in unit.scenarios],
                "skip": sorted(unit.done_keys),
                "shard": str(self._shard_path(state, slot.index)),
                "chaos": (
                    state.spec.chaos_kill_key
                    if state.spec.chaos_kill_key is not None
                    and (state.spec.chaos_always or unit.attempts == 0)
                    and state.spec.chaos_kill_key not in unit.done_keys
                    else None
                ),
            }
            unit.state = "running"
            unit.slot = slot.index
            unit.attempts += 1
            slot.unit = (state.id, unit.index)
            slot.tasks.put(payload)

    def _next_pending(self) -> Optional[Tuple[CampaignState, WorkUnit]]:
        for campaign_id in sorted(self._campaigns):
            state = self._campaigns[campaign_id]
            for unit in state.units:
                if unit.state == "pending":
                    return state, unit
        return None
