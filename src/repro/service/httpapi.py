"""A small HTTP/1.1 JSON API over asyncio streams (stdlib only).

Routes::

    GET  /healthz                 service liveness, uptime, version, and
                                  per-worker heartbeat/metric summaries
    GET  /metrics                 Prometheus text exposition (worker
                                  liveness/queue gauges + the campaigns'
                                  exactly-once folded registry counters)
    GET  /campaigns               every campaign's status
    POST /campaigns               submit a CampaignSpec body -> {"id": ...}
    GET  /campaigns/<id>          one campaign's live status
    GET  /campaigns/<id>/result   merged summary (streams mid-run: the
                                  shards folded *right now*, plus
                                  "complete" so pollers know when the
                                  numbers are final)
    POST /shutdown                stop the service (drains workers)

The server intentionally speaks just enough HTTP for ``urllib`` and
``curl``: one request per connection, JSON bodies, ``Content-Length``
framing.  It shares the event loop with the scheduler's pump, so every
handler runs between pump ticks and sees consistent campaign state.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, Dict, Optional, Tuple

from .scheduler import CampaignService
from .spec import CampaignSpec

__all__ = ["HttpApi", "PlainText", "serve"]

_LOGGER = logging.getLogger(__name__)

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class PlainText:
    """A non-JSON response body (``GET /metrics`` Prometheus text)."""

    def __init__(
        self, body: str, content_type: str = "text/plain; version=0.0.4"
    ) -> None:
        self.body = body
        self.content_type = content_type


class HttpApi:
    """Routes HTTP requests onto a :class:`CampaignService`."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service

    # -- transport -------------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length") or 0)
            if length:
                body = await reader.readexactly(length)
            try:
                status, payload = self.route(method, path, body)
            except ValueError as exc:
                status, payload = 400, {"error": str(exc)}
            except Exception as exc:  # a handler bug must not kill serve
                _LOGGER.exception("unhandled error for %s %s", method, path)
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            if isinstance(payload, PlainText):
                content_type = payload.content_type
                data = payload.body.encode("utf-8")
            else:
                content_type = "application/json"
                data = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
                + data
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing ---------------------------------------------------------------

    def route(
        self, method: str, path: str, body: bytes
    ) -> "Tuple[int, Dict[str, Any] | PlainText]":
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, self.service.service_health()
        if path == "/metrics" and method == "GET":
            return 200, PlainText(self.service.prometheus_text())
        if path == "/shutdown" and method == "POST":
            self.service.request_stop()
            return 202, {"ok": True, "stopping": True}
        if path == "/campaigns":
            if method == "POST":
                try:
                    payload = json.loads(body.decode("utf-8") or "{}")
                except json.JSONDecodeError as exc:
                    raise ValueError(f"invalid JSON body: {exc}") from None
                spec = CampaignSpec.from_dict(payload)
                state = self.service.submit(spec)
                return 202, {
                    "id": state.id,
                    "total": state.total,
                    "units": len(state.units),
                    "shard_size": state.shard_size,
                }
            if method == "GET":
                return 200, {
                    "campaigns": [
                        self.service.status(campaign_id)
                        for campaign_id in self.service.campaign_ids()
                    ]
                }
            return 405, {"error": f"{method} not allowed on {path}"}
        if path.startswith("/campaigns/"):
            rest = path[len("/campaigns/"):]
            campaign_id, _, tail = rest.partition("/")
            try:
                self.service.campaign(campaign_id)
            except ValueError as exc:
                return 404, {"error": str(exc)}
            if not tail and method == "GET":
                status = self.service.status(campaign_id)
                status["workers"] = self.service.workers_status()
                return 200, status
            if tail == "result" and method == "GET":
                summary, complete = self.service.result(campaign_id)
                return 200, {
                    "id": campaign_id,
                    "complete": complete,
                    "state": self.service.status(campaign_id)["state"],
                    "scenarios": len(summary.rows),
                    "total": self.service.campaign(campaign_id).total,
                    "summary": summary.to_dict(),
                }
            return 405, {"error": f"{method} {path} not supported"}
        return 404, {"error": f"no route for {path}"}


async def serve(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 8642,
    ready: "Optional[asyncio.Future]" = None,
) -> None:
    """Run the service and its HTTP API until shutdown is requested.

    ``ready`` (if given) receives the bound ``(host, port)`` once the
    socket is listening — how tests and ``--port 0`` callers discover
    the actual port.
    """
    api = HttpApi(service)
    server = await asyncio.start_server(api.handle_connection, host, port)
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None and not ready.done():
        ready.set_result(bound)
    _LOGGER.info("repro service listening on http://%s:%d", *bound)
    try:
        await service.run()
    finally:
        server.close()
        await server.wait_closed()
