"""Campaign-as-a-service: a crash-surviving scheduler for scenario grids.

The batch CLI (``repro campaign``) runs one grid and exits; this
package keeps a pool of **persistent** worker processes warm and
schedules any number of submitted grids onto them.  An asyncio
scheduler shards each grid into work units, feeds them to workers over
``multiprocessing`` queues (workers keep their memoization caches and
warm per-topology simulation states across units *and* campaigns),
detects worker death via liveness checks and heartbeats, resubmits a
dead worker's in-flight unit under a retry budget, and journals every
finished scenario to per-worker **shard journals** in the campaign's
state directory.  The shards merge through the exact same
last-write-wins fold as the batch engine (``repro campaign --report
<campaign dir>``), so a grid that survived worker SIGKILLs and full
service restarts renders artifacts byte-identical to an uninterrupted
batch run.

Entry points: ``repro serve`` runs the service; ``repro submit`` /
``status`` / ``result`` talk to it over the small HTTP API
(:mod:`repro.service.httpapi`, stdlib-only).
"""

from .scheduler import CampaignService, CampaignState, WorkUnit
from .spec import DEFAULT_SHARD_SIZE, CampaignSpec
from .client import ServiceClient, ServiceError

__all__ = [
    "CampaignService",
    "CampaignSpec",
    "CampaignState",
    "DEFAULT_SHARD_SIZE",
    "ServiceClient",
    "ServiceError",
    "WorkUnit",
]
