"""A small stdlib client for the campaign service's HTTP API.

Used by the ``repro submit`` / ``status`` / ``result`` CLI commands,
the service tests, and the CI smoke job.  ``urllib`` only — the
container bakes no HTTP libraries, and none are needed for a
JSON-over-HTTP API this small.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP error from the service, carrying its JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"service returned {status}: {message}")
        self.status = status


class ServiceClient:
    def __init__(self, base_url: str, timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
                message = payload.get("error", "")
            except Exception:
                message = exc.reason
            raise ServiceError(exc.code, message) from None

    # -- API -------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """The raw Prometheus text of ``GET /metrics``."""
        request = urllib.request.Request(
            self.base_url + "/metrics", method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, exc.reason) from None

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/campaigns", body=spec)

    def campaigns(self) -> Dict[str, Any]:
        return self._request("GET", "/campaigns")

    def status(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def result(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}/result")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")

    def wait(
        self,
        campaign_id: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the campaign settles (done or failed)."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(campaign_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {status['state']} "
                    f"({status['completed']}/{status['total']}) after "
                    f"{timeout_s:g}s"
                )
            time.sleep(poll_s)

    def wait_healthy(self, timeout_s: float = 30.0, poll_s: float = 0.2) -> None:
        """Block until the service answers /healthz (startup barrier)."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                self.health()
                return
            except (ServiceError, OSError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"service at {self.base_url} not healthy after "
                        f"{timeout_s:g}s"
                    ) from None
                time.sleep(poll_s)
