"""What a client submits: a grid specification plus scheduling knobs.

A :class:`CampaignSpec` carries exactly the axes the batch CLI's
``build_grid`` accepts, so a grid submitted to the service enumerates
the same scenarios, in the same order, as ``repro campaign`` given the
same flags — the precondition for the merged shard journals rendering
byte-identical artifacts.

``chaos_kill_key`` / ``chaos_always`` are deliberate crash injection
for tests and CI smoke jobs: a worker SIGKILLs itself immediately
before executing the named scenario (first dispatch of the unit only,
unless ``chaos_always``), which exercises the death-detection →
resubmit → retry-budget path deterministically instead of racing a
signal against a fast grid.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional

from ..experiments.campaign import Scenario, build_grid

__all__ = ["CampaignSpec", "DEFAULT_SHARD_SIZE", "shard_scenarios"]

# Fallback unit size when neither the spec nor the grid suggests one.
DEFAULT_SHARD_SIZE = 4


@dataclass(frozen=True)
class CampaignSpec:
    """One submitted grid: the campaign axes plus scheduling knobs."""

    families: List[str] = field(default_factory=lambda: ["star"])
    sizes: List[int] = field(default_factory=lambda: [4])
    seeds: int = 1
    profiles: List[str] = field(default_factory=lambda: ["default"])
    iip_ablation: bool = False
    roles: List[str] = field(default_factory=lambda: ["default"])
    topos: List[str] = field(default_factory=lambda: ["default"])
    places: List[str] = field(default_factory=lambda: ["default"])
    # Scenarios per work unit; None picks a size that gives each worker
    # a few units of pipelining headroom.
    shard_size: Optional[int] = None
    # Crash injection (tests/CI only): SIGKILL the worker right before
    # this scenario key runs — once per unit, or on every attempt.
    chaos_kill_key: Optional[str] = None
    chaos_always: bool = False

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        """Build a spec from a submission body; unknown keys are an
        error (a typoed axis silently defaulting would fake coverage)."""
        if not isinstance(payload, dict):
            raise ValueError("campaign spec must be a JSON object")
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown campaign spec field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**payload)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def build(self) -> List[Scenario]:
        """Enumerate the grid (same validation as the batch CLI)."""
        return build_grid(
            self.families,
            self.sizes,
            seeds=self.seeds,
            profiles=self.profiles,
            iip_ablation=self.iip_ablation,
            roles=self.roles or ["default"],
            topos=self.topos or ["default"],
            places=self.places or ["default"],
        )

    def resolve_shard_size(self, grid_len: int, workers: int) -> int:
        """The unit size this campaign shards under (stored with the
        campaign so restarts re-shard identically even if the service
        restarts with a different worker count)."""
        if self.shard_size is not None:
            if self.shard_size < 1:
                raise ValueError(
                    f"shard_size must be >= 1, got {self.shard_size}"
                )
            return self.shard_size
        # ~4 units of pipelining headroom per worker keeps every worker
        # busy near the tail without making units too small to amortize
        # warm-cache reuse.
        return max(
            1,
            min(DEFAULT_SHARD_SIZE, math.ceil(grid_len / max(1, workers * 4))),
        )


def shard_scenarios(
    grid: List[Scenario], shard_size: int
) -> List[List[Scenario]]:
    """Contiguous grid slices: deterministic for a (grid, shard_size)
    pair, so a restarted service rebuilds exactly the same units."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        grid[start:start + shard_size]
        for start in range(0, len(grid), shard_size)
    ]


def spec_fingerprint(spec: CampaignSpec) -> str:
    """A stable digest of the spec (used in logs/status, not identity)."""
    import zlib

    material = json.dumps(spec.to_dict(), sort_keys=True)
    return f"{zlib.crc32(material.encode('utf-8')):08x}"
