"""The persistent worker process: warm caches, shard journals, heartbeats.

Each worker slot runs :func:`worker_main` in its own process for the
lifetime of the service.  Unlike the batch engine's pool — which
pickles one task per scenario — a worker here receives whole *work
units* (a contiguous grid slice) over its task queue and executes them
with :func:`repro.experiments.campaign.execute_scenario`, so the
process-local memoization caches, interned route attributes, and warm
per-topology simulation states survive across units and across
campaigns.

Durability contract: a scenario's journal line is appended and flushed
to the worker's shard journal *before* its completion message is
posted, so any key the scheduler saw finish is guaranteed to be on
disk — a SIGKILL can only lose the scenario in flight, never one that
was reported.  Shard files are opened through the campaign engine's
``_open_journal``, which repairs a crash-truncated final line whenever
it appends: a respawned worker re-attaching to its dead predecessor's
shard cannot write onto the fragment.

A daemon thread posts heartbeats every ``heartbeat_s`` so the
scheduler can tell a *hung* worker (alive but silent) from a busy one;
hard death (SIGKILL, OOM) is detected by the process liveness check.
"""

from __future__ import annotations

import os
import signal
import threading
from pathlib import Path
from typing import Any, Dict

__all__ = ["worker_main"]

# Message kinds posted on the shared result queue.  Tuples, not
# dataclasses: they must unpickle in the parent without importing this
# module's class definitions mid-drain.
#   ("hb", slot, metrics)                liveness heartbeat + the worker's
#                                        cumulative registry snapshot
#   ("started", slot, campaign, unit)    unit accepted, now running
#   ("row", slot, campaign, unit, key, has_error, metrics)
#                                        one scenario journaled; metrics is
#                                        its registry delta
#   ("unit", slot, campaign, unit)       unit finished (all rows journaled)
#   ("bye", slot)                        clean shutdown acknowledgement


def _heartbeat_loop(result_queue, slot: int, interval_s: float,
                    stop: threading.Event) -> None:
    from ..obs import counters_snapshot

    while not stop.wait(interval_s):
        try:
            # The cumulative snapshot rides on every heartbeat: the
            # scheduler keeps the latest per slot for /healthz worker
            # summaries (and folds it into a retired-metrics pool when
            # the incarnation dies, so restarts lose nothing).
            result_queue.put(("hb", slot, counters_snapshot()))
        except Exception:
            return  # parent gone; the process is about to be reaped


def worker_main(
    slot: int,
    task_queue,
    result_queue,
    toggle_values: Dict[str, Any],
    heartbeat_s: float,
) -> None:
    """Run work units until the ``None`` shutdown sentinel arrives."""
    from ..core import toggles
    from ..experiments.campaign import (
        Scenario,
        _append,
        _journal_line,
        _open_journal,
        execute_scenario,
    )

    # The service parent snapshots its toggle registry at spawn time —
    # the same propagation contract as the batch engine's _init_worker,
    # so a toggle added to the registry reaches service workers
    # automatically.
    toggles.apply(toggle_values)

    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(result_queue, slot, heartbeat_s, stop),
        daemon=True,
    )
    beat.start()
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            campaign = task["campaign"]
            unit = task["unit"]
            skip = set(task.get("skip") or ())
            chaos_key = task.get("chaos")
            result_queue.put(("started", slot, campaign, unit))
            shard = Path(task["shard"])
            handle = _open_journal(shard, append=True)
            try:
                for coordinates in task["scenarios"]:
                    scenario = Scenario(**coordinates)
                    key = scenario.key()
                    if key in skip:
                        continue  # journaled by a previous attempt
                    if chaos_key is not None and key == chaos_key:
                        # Crash injection: die exactly the way the
                        # scheduler must survive — no cleanup, no
                        # goodbye, mid-unit.
                        os.kill(os.getpid(), signal.SIGKILL)
                    record = execute_scenario(scenario)
                    _append(handle, _journal_line(record))
                    result_queue.put(
                        ("row", slot, campaign, unit, key,
                         record.row.error is not None, record.metrics)
                    )
            finally:
                handle.close()
            result_queue.put(("unit", slot, campaign, unit))
    finally:
        stop.set()
        try:
            result_queue.put(("bye", slot))
        except Exception:
            pass
