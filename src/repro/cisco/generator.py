"""Cisco IOS configuration generator (vendor-neutral IR → text).

The generator produces the *reference* (correct) rendering of a
configuration.  The simulated GPT-4 builds its drafts by taking this
output and injecting faults; the VPP loop then repairs the draft back
toward something this generator could have emitted.
"""

from __future__ import annotations

from typing import List

from ..netmodel.device import RouterConfig
from ..netmodel.routing_policy import (
    MatchAcl,
    MatchAsPathList,
    MatchCommunityInline,
    MatchCommunityList,
    MatchPrefixList,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetCommunity,
    SetLocalPref,
    SetMed,
    SetNextHop,
)

__all__ = ["generate_cisco"]


def generate_cisco(config: RouterConfig) -> str:
    """Render a :class:`RouterConfig` as an IOS configuration file."""
    sections: List[str] = []
    if config.hostname:
        sections.append(f"hostname {config.hostname}\n")
    for interface in config.sorted_interfaces():
        sections.append(_render_interface(interface))
    for name in sorted(config.access_lists):
        sections.append(_render_access_list(config, name))
    for name in sorted(config.prefix_lists):
        sections.append(_render_prefix_list(config, name))
    for name in sorted(config.community_lists):
        sections.append(_render_community_list(config, name))
    for name in sorted(config.as_path_lists):
        sections.append(_render_as_path_list(config, name))
    for name in sorted(config.route_maps):
        sections.append(_render_route_map(config.route_maps[name]))
    if config.ospf is not None:
        sections.append(_render_ospf(config))
    if config.bgp is not None:
        sections.append(_render_bgp(config))
    return "!\n".join(section for section in sections if section) + "\n"


def _render_interface(interface) -> str:
    lines = [f"interface {interface.name}"]
    if interface.description:
        lines.append(f" description {interface.description}")
    if interface.address is not None and interface.prefix is not None:
        lines.append(
            f" ip address {interface.address} {interface.prefix.mask_string()}"
        )
    if interface.ospf_cost is not None:
        lines.append(f" ip ospf cost {interface.ospf_cost}")
    if interface.shutdown:
        lines.append(" shutdown")
    return "\n".join(lines) + "\n"


def _render_access_list(config: RouterConfig, name: str) -> str:
    access_list = config.access_lists[name]
    if name.isdigit():
        lines = [
            f"access-list {name} {entry.render_cisco()}"
            for entry in access_list.entries
        ]
    else:
        lines = [f"ip access-list standard {name}"]
        lines.extend(f" {entry.render_cisco()}" for entry in access_list.entries)
    return "\n".join(lines) + "\n"


def _render_prefix_list(config: RouterConfig, name: str) -> str:
    prefix_list = config.prefix_lists[name]
    lines = [entry.render_cisco(name) for entry in prefix_list.entries]
    return "\n".join(lines) + "\n"


def _render_community_list(config: RouterConfig, name: str) -> str:
    community_list = config.community_lists[name]
    lines = []
    for entry in community_list.entries:
        if entry.regex is not None:
            lines.append(
                f"ip community-list expanded {name} {entry.action} {entry.regex}"
            )
        else:
            values = " ".join(str(item) for item in entry.communities)
            lines.append(f"ip community-list {name} {entry.action} {values}")
    return "\n".join(lines) + "\n"


def _render_as_path_list(config: RouterConfig, name: str) -> str:
    as_path_list = config.as_path_lists[name]
    lines = [
        f"ip as-path access-list {name} {entry.action} {entry.regex}"
        for entry in as_path_list.entries
    ]
    return "\n".join(lines) + "\n"


def _render_route_map(route_map: RouteMap) -> str:
    lines: List[str] = []
    for clause in route_map.clauses:
        lines.append(f"route-map {route_map.name} {clause.action} {clause.seq}")
        lines.extend(_render_clause_body(clause))
    return "\n".join(lines) + "\n"


def _render_clause_body(clause: RouteMapClause) -> List[str]:
    lines: List[str] = []
    for condition in clause.matches:
        if isinstance(condition, MatchPrefixList):
            lines.append(f" match ip address prefix-list {condition.name}")
        elif isinstance(condition, MatchAcl):
            lines.append(f" match ip address {condition.name}")
        elif isinstance(condition, MatchCommunityList):
            lines.append(f" match community {condition.name}")
        elif isinstance(condition, MatchCommunityInline):
            # Invalid IOS, preserved verbatim so a draft round-trips and
            # the syntax verifier sees exactly what the "LLM" wrote.
            lines.append(f" match community {condition.community}")
        elif isinstance(condition, MatchAsPathList):
            lines.append(f" match as-path {condition.name}")
        else:
            lines.append(f" ! unsupported match: {condition.describe()}")
    for set_action in clause.sets:
        if isinstance(set_action, SetCommunity):
            values = " ".join(str(item) for item in set_action.communities)
            suffix = " additive" if set_action.additive else ""
            lines.append(f" set community {values}{suffix}")
        elif isinstance(set_action, SetMed):
            lines.append(f" set metric {set_action.med}")
        elif isinstance(set_action, SetLocalPref):
            lines.append(f" set local-preference {set_action.local_pref}")
        elif isinstance(set_action, SetNextHop):
            lines.append(f" set ip next-hop {set_action.next_hop}")
        elif isinstance(set_action, SetAsPathPrepend):
            rendered = " ".join([str(set_action.asn)] * set_action.count)
            lines.append(f" set as-path prepend {rendered}")
        else:
            lines.append(f" ! unsupported set: {set_action.describe()}")
    return lines


def _render_ospf(config: RouterConfig) -> str:
    ospf = config.ospf
    assert ospf is not None
    lines = [f"router ospf {ospf.process_id}"]
    if ospf.router_id is not None:
        lines.append(f" router-id {ospf.router_id}")
    for statement in ospf.networks:
        lines.append(
            f" network {statement.prefix.address} "
            f"{statement.prefix.wildcard_string()} area {statement.area}"
        )
    for name in ospf.passive_interfaces:
        lines.append(f" passive-interface {name}")
    return "\n".join(lines) + "\n"


def _render_bgp(config: RouterConfig) -> str:
    bgp = config.bgp
    assert bgp is not None
    lines = [f"router bgp {bgp.asn}"]
    if bgp.router_id is not None:
        lines.append(f" bgp router-id {bgp.router_id}")
    for prefix in bgp.networks:
        lines.append(f" network {prefix.address} mask {prefix.mask_string()}")
    for neighbor in bgp.sorted_neighbors():
        lines.append(f" neighbor {neighbor.ip} remote-as {neighbor.remote_as}")
        if neighbor.description:
            lines.append(f" neighbor {neighbor.ip} description {neighbor.description}")
        if neighbor.send_community:
            lines.append(f" neighbor {neighbor.ip} send-community")
        if neighbor.next_hop_self:
            lines.append(f" neighbor {neighbor.ip} next-hop-self")
        if neighbor.import_policy:
            lines.append(
                f" neighbor {neighbor.ip} route-map {neighbor.import_policy} in"
            )
        if neighbor.export_policy:
            lines.append(
                f" neighbor {neighbor.ip} route-map {neighbor.export_policy} out"
            )
    for redistribution in bgp.redistributions:
        line = f" redistribute {redistribution.protocol.value}"
        if redistribution.route_map:
            line += f" route-map {redistribution.route_map}"
        lines.append(line)
    return "\n".join(lines) + "\n"
