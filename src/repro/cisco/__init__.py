"""Cisco IOS dialect: parser and generator over the shared IR."""

from .generator import generate_cisco
from .lexer import ConfigLine, tokenize
from .parser import CiscoParseResult, parse_cisco

__all__ = [
    "CiscoParseResult",
    "ConfigLine",
    "generate_cisco",
    "parse_cisco",
    "tokenize",
]
