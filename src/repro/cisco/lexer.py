"""Line tokenization for Cisco IOS configurations.

IOS configs are line-oriented with indentation indicating block
membership.  The lexer turns raw text into :class:`ConfigLine` records
(number, indent, tokens) and filters comments, leaving block structure
to the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = ["ConfigLine", "tokenize"]


@dataclass(frozen=True)
class ConfigLine:
    """One meaningful line of an IOS config."""

    number: int
    indent: int
    text: str
    tokens: Tuple[str, ...]

    @property
    def keyword(self) -> str:
        """The first token, lower-cased (IOS keywords are case-insensitive)."""
        return self.tokens[0].lower() if self.tokens else ""

    def starts_with(self, *words: str) -> bool:
        """True if the line's leading tokens equal ``words`` (case-insensitive)."""
        if len(self.tokens) < len(words):
            return False
        return all(
            token.lower() == word.lower()
            for token, word in zip(self.tokens, words)
        )


def tokenize(text: str) -> List[ConfigLine]:
    """Split config text into :class:`ConfigLine` records.

    Blank lines, ``!`` separators, and ``#`` comments are dropped.
    """
    lines: List[ConfigLine] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("!") or stripped.startswith("#"):
            continue
        indent = len(raw) - len(raw.lstrip(" "))
        lines.append(
            ConfigLine(
                number=number,
                indent=indent,
                text=stripped,
                tokens=tuple(stripped.split()),
            )
        )
    return lines


def iter_blocks(lines: List[ConfigLine]) -> Iterator[Tuple[ConfigLine, List[ConfigLine]]]:
    """Yield (header, children) pairs using indentation for nesting.

    A line at indent 0 is a header; subsequent lines with greater indent
    are its children.  IOS emits one level of nesting for the blocks the
    experiments use (interface, router, route-map stanzas).
    """
    index = 0
    while index < len(lines):
        header = lines[index]
        index += 1
        children: List[ConfigLine] = []
        while index < len(lines) and lines[index].indent > header.indent:
            children.append(lines[index])
            index += 1
        yield header, children
