"""Cisco IOS configuration parser (text → vendor-neutral IR).

The parser is deliberately forgiving: like Batfish, it never raises on
bad input.  Unrecognized or misplaced lines become
:class:`~repro.netmodel.diagnostics.ParseWarning` records, which the
syntax-verifier leg of COSYNTH turns into correction prompts.

Context tracking is keyword-driven rather than purely indentation-driven
because LLM-generated configs frequently mis-indent; a ``neighbor``
command appearing outside a ``router bgp`` block is precisely the
"misplaced neighbor command" failure of §4.2, and must be *detected*
(with an intentionally generic message — the paper notes Batfish's
output for this case "is not informative enough" for GPT-4 to self-fix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netmodel.acl import AccessList, AclEntry
from ..netmodel.aspath import AsPathAccessList
from ..netmodel.bgp import BgpNeighbor, Redistribution
from ..netmodel.communities import Community, CommunityError, CommunityList, CommunityListEntry
from ..netmodel.device import RouterConfig, Vendor
from ..netmodel.diagnostics import Diagnostics
from ..netmodel.interfaces import Interface
from ..netmodel.ip import AddressError, Ipv4Address, Prefix, PrefixRange
from ..netmodel.prefixlist import PrefixList
from ..netmodel.route import Protocol
from ..netmodel.routing_policy import (
    Action,
    MatchAcl,
    MatchAsPathList,
    MatchCommunityInline,
    MatchCommunityList,
    MatchPrefixList,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetCommunity,
    SetLocalPref,
    SetMed,
    SetNextHop,
)
from .lexer import ConfigLine, tokenize

__all__ = ["CiscoParseResult", "parse_cisco"]

# Interactive CLI keywords GPT-4 tends to emit inside .cfg files (§4.2,
# "Wrong keywords"); each is flagged with a dedicated warning.
FORBIDDEN_KEYWORDS = (
    "exit",
    "end",
    "write",
    "wr",
    "enable",
    "conf",
    "configure",
)

_BLOCK_CHILD_KEYWORDS = frozenset(
    ["neighbor", "network", "match", "set", "redistribute", "passive-interface"]
)


@dataclass
class CiscoParseResult:
    """Outcome of a parse: the IR plus diagnostics."""

    config: RouterConfig
    diagnostics: Diagnostics

    @property
    def warnings(self):
        return self.diagnostics.warnings


def parse_cisco(text: str, filename: str = "<cisco>") -> CiscoParseResult:
    """Parse IOS config text into a :class:`RouterConfig`."""
    parser = _CiscoParser(filename)
    return parser.parse(text)


class _CiscoParser:
    """Stateful single-pass parser over tokenized lines."""

    def __init__(self, filename: str) -> None:
        self.diagnostics = Diagnostics(filename=filename)
        self.config = RouterConfig(hostname="", vendor=Vendor.CISCO)
        self._context: Optional[str] = None
        self._current_interface: Optional[Interface] = None
        self._current_clause: Optional[RouteMapClause] = None
        self._current_map: Optional[RouteMap] = None
        self._current_acl: Optional[AccessList] = None

    # -- top level ----------------------------------------------------------

    def parse(self, text: str) -> CiscoParseResult:
        for line in tokenize(text):
            self._dispatch(line)
        return CiscoParseResult(self.config, self.diagnostics)

    def _dispatch(self, line: ConfigLine) -> None:
        keyword = line.keyword
        if keyword in FORBIDDEN_KEYWORDS:
            self._context = None
            self.diagnostics.warn(
                line.number,
                line.text,
                "Interactive CLI command is not valid in a configuration file",
            )
            return
        if keyword == "hostname":
            self._context = None
            if len(line.tokens) >= 2:
                self.config.hostname = line.tokens[1]
            else:
                self.diagnostics.warn(line.number, line.text, "hostname requires a name")
            return
        if keyword == "interface":
            self._enter_interface(line)
            return
        if line.starts_with("router", "bgp"):
            self._enter_bgp(line)
            return
        if line.starts_with("router", "ospf"):
            self._enter_ospf(line)
            return
        if keyword == "route-map":
            self._enter_route_map(line)
            return
        if line.starts_with("ip", "prefix-list"):
            self._context = None
            self._parse_prefix_list(line)
            return
        if line.starts_with("ip", "community-list"):
            self._context = None
            self._parse_community_list(line)
            return
        if line.starts_with("ip", "as-path", "access-list"):
            self._context = None
            self._parse_as_path_list(line)
            return
        if keyword == "access-list":
            self._context = None
            self._parse_numbered_acl(line)
            return
        if line.starts_with("ip", "access-list", "standard"):
            self._enter_named_acl(line)
            return
        if line.starts_with("ip", "routing") or line.starts_with("no", "ip"):
            self._context = None
            self.diagnostics.warn(
                line.number, line.text, "Statement is unnecessary in this context"
            )
            return
        # Child lines dispatched to the active block context.
        if self._context == "interface":
            self._parse_interface_child(line)
            return
        if self._context == "bgp":
            self._parse_bgp_child(line)
            return
        if self._context == "ospf":
            self._parse_ospf_child(line)
            return
        if self._context == "route-map":
            self._parse_route_map_child(line)
            return
        if self._context == "acl" and line.keyword in ("permit", "deny"):
            self._parse_acl_entry_line(line)
            return
        if keyword in _BLOCK_CHILD_KEYWORDS:
            # The §4.2 "misplaced neighbor command" case: a block child
            # with no enclosing block.  Mirror Batfish's unhelpful output.
            self.diagnostics.warn(
                line.number, line.text, "This syntax is unrecognized at this location"
            )
            return
        self.diagnostics.warn(line.number, line.text, "This syntax is unrecognized")

    # -- interface ----------------------------------------------------------

    def _enter_interface(self, line: ConfigLine) -> None:
        if len(line.tokens) < 2:
            self.diagnostics.warn(line.number, line.text, "interface requires a name")
            self._context = None
            return
        name = line.tokens[1]
        interface = self.config.get_interface(name) or Interface(name=name)
        self.config.add_interface(interface)
        self._current_interface = interface
        self._context = "interface"

    def _parse_interface_child(self, line: ConfigLine) -> None:
        interface = self._current_interface
        assert interface is not None
        if line.starts_with("ip", "address") and len(line.tokens) >= 4:
            try:
                prefix = Prefix.from_address_mask(line.tokens[2], line.tokens[3])
                interface.address = Ipv4Address.parse(line.tokens[2])
                interface.prefix = prefix
            except AddressError as exc:
                self.diagnostics.warn(line.number, line.text, str(exc))
            return
        if line.starts_with("ip", "ospf", "cost") and len(line.tokens) >= 4:
            interface.ospf_cost = _parse_int(self, line, line.tokens[3])
            return
        if line.keyword == "description":
            interface.description = " ".join(line.tokens[1:])
            return
        if line.starts_with("shutdown"):
            interface.shutdown = True
            return
        if line.starts_with("no", "shutdown"):
            interface.shutdown = False
            return
        self.diagnostics.warn(
            line.number, line.text, "This interface statement is unrecognized"
        )

    # -- BGP ------------------------------------------------------------------

    def _enter_bgp(self, line: ConfigLine) -> None:
        if len(line.tokens) < 3:
            self.diagnostics.warn(line.number, line.text, "router bgp requires an AS number")
            self._context = None
            return
        asn = _parse_int(self, line, line.tokens[2])
        if asn is None:
            self._context = None
            return
        self.config.ensure_bgp(asn)
        self._context = "bgp"

    def _parse_bgp_child(self, line: ConfigLine) -> None:
        bgp = self.config.bgp
        assert bgp is not None
        if line.starts_with("bgp", "router-id") and len(line.tokens) >= 3:
            try:
                bgp.router_id = Ipv4Address.parse(line.tokens[2])
            except AddressError as exc:
                self.diagnostics.warn(line.number, line.text, str(exc))
            return
        if line.keyword == "neighbor":
            self._parse_neighbor(line, bgp)
            return
        if line.keyword == "network":
            self._parse_bgp_network(line, bgp)
            return
        if line.keyword == "redistribute":
            self._parse_redistribute(line, bgp)
            return
        if line.starts_with("no", "synchronization") or line.starts_with(
            "no", "auto-summary"
        ):
            return
        self.diagnostics.warn(line.number, line.text, "This BGP statement is unrecognized")

    def _parse_neighbor(self, line: ConfigLine, bgp) -> None:
        if len(line.tokens) < 3:
            self.diagnostics.warn(line.number, line.text, "neighbor statement is incomplete")
            return
        try:
            ip = Ipv4Address.parse(line.tokens[1])
        except AddressError as exc:
            self.diagnostics.warn(line.number, line.text, str(exc))
            return
        rest = [token.lower() for token in line.tokens[2:]]
        neighbor = bgp.get_neighbor(ip)
        if rest[0] == "remote-as" and len(line.tokens) >= 4:
            remote_as = _parse_int(self, line, line.tokens[3])
            if remote_as is None:
                return
            if neighbor is None:
                bgp.add_neighbor(BgpNeighbor(ip=ip, remote_as=remote_as))
            else:
                neighbor.remote_as = remote_as
            return
        if neighbor is None:
            # IOS requires remote-as before other neighbor statements.
            self.diagnostics.warn(
                line.number,
                line.text,
                f"Neighbor {ip} has no remote-as declared before this statement",
            )
            neighbor = bgp.add_neighbor(BgpNeighbor(ip=ip, remote_as=0))
        if rest[0] == "route-map" and len(line.tokens) >= 5:
            direction = line.tokens[4].lower()
            name = line.tokens[3]
            if direction == "in":
                neighbor.import_policy = name
            elif direction == "out":
                neighbor.export_policy = name
            else:
                self.diagnostics.warn(
                    line.number, line.text, "route-map direction must be 'in' or 'out'"
                )
            return
        if rest[0] == "description":
            neighbor.description = " ".join(line.tokens[3:])
            return
        if rest[0] == "send-community":
            neighbor.send_community = True
            return
        if rest[0] == "next-hop-self":
            neighbor.next_hop_self = True
            return
        if rest[0] == "local-as" and len(line.tokens) >= 4:
            neighbor.local_as = _parse_int(self, line, line.tokens[3])
            return
        self.diagnostics.warn(
            line.number, line.text, "This neighbor statement is unrecognized"
        )

    def _parse_bgp_network(self, line: ConfigLine, bgp) -> None:
        try:
            if len(line.tokens) >= 4 and line.tokens[2].lower() == "mask":
                prefix = Prefix.from_address_mask(line.tokens[1], line.tokens[3])
            elif "/" in line.tokens[1]:
                prefix = Prefix.parse(line.tokens[1])
            else:
                # Classful shorthand: infer /24 the way the experiments use it.
                prefix = Prefix.parse(f"{line.tokens[1]}/24")
        except (AddressError, IndexError) as exc:
            self.diagnostics.warn(line.number, line.text, f"invalid network: {exc}")
            return
        bgp.announce(prefix)

    def _parse_redistribute(self, line: ConfigLine, bgp) -> None:
        protocol_name = line.tokens[1].lower() if len(line.tokens) > 1 else ""
        try:
            protocol = Protocol(protocol_name)
        except ValueError:
            self.diagnostics.warn(
                line.number, line.text, f"unknown redistribution protocol {protocol_name!r}"
            )
            return
        route_map = None
        tokens = [token.lower() for token in line.tokens]
        if "route-map" in tokens:
            position = tokens.index("route-map")
            if position + 1 < len(line.tokens):
                route_map = line.tokens[position + 1]
        bgp.redistributions.append(Redistribution(protocol=protocol, route_map=route_map))

    # -- OSPF -----------------------------------------------------------------

    def _enter_ospf(self, line: ConfigLine) -> None:
        process_id = 1
        if len(line.tokens) >= 3:
            parsed = _parse_int(self, line, line.tokens[2])
            if parsed is not None:
                process_id = parsed
        self.config.ensure_ospf(process_id)
        self._context = "ospf"

    def _parse_ospf_child(self, line: ConfigLine) -> None:
        ospf = self.config.ospf
        assert ospf is not None
        if line.keyword == "router-id" and len(line.tokens) >= 2:
            try:
                ospf.router_id = Ipv4Address.parse(line.tokens[1])
            except AddressError as exc:
                self.diagnostics.warn(line.number, line.text, str(exc))
            return
        if line.keyword == "network" and len(line.tokens) >= 5:
            try:
                wildcard = Ipv4Address.parse(line.tokens[2]).value
                mask = ~wildcard & 0xFFFFFFFF
                length = bin(mask).count("1")
                prefix = Prefix(Ipv4Address.parse(line.tokens[1]).value & mask, length)
                area = int(line.tokens[4])
            except (AddressError, ValueError) as exc:
                self.diagnostics.warn(line.number, line.text, f"invalid network: {exc}")
                return
            ospf.add_network(prefix, area)
            return
        if line.starts_with("passive-interface") and len(line.tokens) >= 2:
            ospf.set_passive(line.tokens[1])
            return
        self.diagnostics.warn(line.number, line.text, "This OSPF statement is unrecognized")

    # -- route maps -------------------------------------------------------------

    def _enter_route_map(self, line: ConfigLine) -> None:
        if len(line.tokens) < 3:
            self.diagnostics.warn(line.number, line.text, "route-map header is incomplete")
            self._context = None
            return
        name = line.tokens[1]
        action_token = line.tokens[2].lower()
        if action_token not in ("permit", "deny"):
            self.diagnostics.warn(
                line.number, line.text, f"invalid route-map action {line.tokens[2]!r}"
            )
            self._context = None
            return
        seq = 10
        if len(line.tokens) >= 4:
            parsed = _parse_int(self, line, line.tokens[3])
            if parsed is not None:
                seq = parsed
        route_map = self.config.get_route_map(name) or RouteMap(name)
        self.config.add_route_map(route_map)
        clause = route_map.get_clause(seq)
        if clause is None:
            clause = RouteMapClause(seq=seq, action=Action(action_token))
            route_map.add_clause(clause)
        else:
            clause.action = Action(action_token)
        self._current_map = route_map
        self._current_clause = clause
        self._context = "route-map"

    def _parse_route_map_child(self, line: ConfigLine) -> None:
        clause = self._current_clause
        assert clause is not None
        if line.keyword == "match":
            self._parse_match(line, clause)
            return
        if line.keyword == "set":
            self._parse_set(line, clause)
            return
        self.diagnostics.warn(
            line.number, line.text, "This route-map statement is unrecognized"
        )

    def _parse_match(self, line: ConfigLine, clause: RouteMapClause) -> None:
        tokens = [token.lower() for token in line.tokens]
        if line.starts_with("match", "ip", "address", "prefix-list") and len(line.tokens) >= 5:
            clause.matches.append(MatchPrefixList(line.tokens[4]))
            return
        if line.starts_with("match", "ip", "address") and len(line.tokens) >= 4:
            # Without the prefix-list keyword, the argument names an ACL.
            for name in line.tokens[3:]:
                clause.matches.append(MatchAcl(name))
            return
        if line.starts_with("match", "community") and len(line.tokens) >= 3:
            argument = line.tokens[2]
            if ":" in argument:
                # Inline community value: the invalid form GPT-4 favours
                # (§4.2 "Match Community" IIP).  Record it, and warn.
                try:
                    community = Community.parse(argument)
                except CommunityError as exc:
                    self.diagnostics.warn(line.number, line.text, str(exc))
                    return
                clause.matches.append(MatchCommunityInline(community))
                self.diagnostics.warn(
                    line.number,
                    line.text,
                    "match community expects a community-list name or number, "
                    "not a literal community value",
                )
                return
            for name in line.tokens[2:]:
                clause.matches.append(MatchCommunityList(name))
            return
        if line.starts_with("match", "as-path") and len(line.tokens) >= 3:
            clause.matches.append(MatchAsPathList(line.tokens[2]))
            return
        self.diagnostics.warn(
            line.number, line.text, f"unsupported match condition: {' '.join(tokens[1:])}"
        )

    def _parse_set(self, line: ConfigLine, clause: RouteMapClause) -> None:
        if line.starts_with("set", "community") and len(line.tokens) >= 3:
            additive = line.tokens[-1].lower() == "additive"
            value_tokens = line.tokens[2 : len(line.tokens) - (1 if additive else 0)]
            communities = []
            for token in value_tokens:
                try:
                    communities.append(Community.parse(token))
                except CommunityError as exc:
                    self.diagnostics.warn(line.number, line.text, str(exc))
                    return
            clause.sets.append(SetCommunity(tuple(communities), additive=additive))
            return
        if line.starts_with("set", "metric") and len(line.tokens) >= 3:
            med = _parse_int(self, line, line.tokens[2])
            if med is not None:
                clause.sets.append(SetMed(med))
            return
        if line.starts_with("set", "local-preference") and len(line.tokens) >= 3:
            local_pref = _parse_int(self, line, line.tokens[2])
            if local_pref is not None:
                clause.sets.append(SetLocalPref(local_pref))
            return
        if line.starts_with("set", "ip", "next-hop") and len(line.tokens) >= 4:
            try:
                clause.sets.append(SetNextHop(Ipv4Address.parse(line.tokens[3])))
            except AddressError as exc:
                self.diagnostics.warn(line.number, line.text, str(exc))
            return
        if line.starts_with("set", "as-path", "prepend") and len(line.tokens) >= 4:
            asns = [int(token) for token in line.tokens[3:] if token.isdigit()]
            if asns:
                clause.sets.append(SetAsPathPrepend(asns[0], len(asns)))
            return
        self.diagnostics.warn(
            line.number, line.text, f"unsupported set action: {line.text}"
        )

    # -- named lists ----------------------------------------------------------

    def _parse_prefix_list(self, line: ConfigLine) -> None:
        # ip prefix-list NAME [seq N] permit|deny P [ge N] [le N]
        tokens = list(line.tokens[2:])
        if not tokens:
            self.diagnostics.warn(line.number, line.text, "prefix-list is incomplete")
            return
        name = tokens.pop(0)
        seq: Optional[int] = None
        if len(tokens) >= 2 and tokens[0].lower() == "seq":
            seq_value = _parse_int(self, line, tokens[1])
            if seq_value is None:
                return
            seq = seq_value
            tokens = tokens[2:]
        if not tokens or tokens[0].lower() not in ("permit", "deny"):
            self.diagnostics.warn(
                line.number, line.text, "prefix-list entry requires permit or deny"
            )
            return
        action = tokens.pop(0).lower()
        if not tokens:
            self.diagnostics.warn(line.number, line.text, "prefix-list entry missing prefix")
            return
        prefix_token = tokens.pop(0)
        try:
            prefix = Prefix.parse(prefix_token)
        except AddressError as exc:
            self.diagnostics.warn(line.number, line.text, str(exc))
            return
        ge_value: Optional[int] = None
        le_value: Optional[int] = None
        while tokens:
            modifier = tokens.pop(0).lower()
            if modifier == "ge" and tokens:
                ge_value = _parse_int(self, line, tokens.pop(0))
                if ge_value is None:
                    return
            elif modifier == "le" and tokens:
                le_value = _parse_int(self, line, tokens.pop(0))
                if le_value is None:
                    return
            else:
                self.diagnostics.warn(
                    line.number, line.text, f"unexpected prefix-list modifier {modifier!r}"
                )
                return
        # Cisco semantics: exact match by default; ``ge N`` widens to
        # N..32 (or N..le); ``le M`` alone widens to length..M.
        if ge_value is None and le_value is None:
            low, high = prefix.length, prefix.length
        elif ge_value is not None and le_value is None:
            low, high = ge_value, 32
        elif ge_value is None and le_value is not None:
            low, high = prefix.length, le_value
        else:
            low, high = ge_value, le_value  # type: ignore[assignment]
        try:
            prefix_range = PrefixRange(prefix, low, high)
        except AddressError as exc:
            self.diagnostics.warn(line.number, line.text, str(exc))
            return
        prefix_list = self.config.prefix_lists.get(name) or PrefixList(name)
        self.config.add_prefix_list(prefix_list)
        prefix_list.add(action, prefix_range, seq=seq)

    def _parse_community_list(self, line: ConfigLine) -> None:
        # ip community-list [standard|expanded] NAME permit|deny VALUE...
        tokens = list(line.tokens[2:])
        if tokens and tokens[0].lower() in ("standard", "expanded"):
            kind = tokens.pop(0).lower()
        else:
            kind = "standard"
        if len(tokens) < 3:
            self.diagnostics.warn(line.number, line.text, "community-list is incomplete")
            return
        name = tokens.pop(0)
        action = tokens.pop(0).lower()
        if action not in ("permit", "deny"):
            self.diagnostics.warn(
                line.number, line.text, "community-list entry requires permit or deny"
            )
            return
        community_list = self.config.community_lists.get(name) or CommunityList(name)
        self.config.add_community_list(community_list)
        if kind == "expanded":
            community_list.add(CommunityListEntry(action=action, regex=" ".join(tokens)))
            return
        values = []
        for token in tokens:
            try:
                values.append(Community.parse(token))
            except CommunityError:
                self.diagnostics.warn(
                    line.number,
                    line.text,
                    f"'{line.text}' is wrong syntax: {token!r} is not a valid "
                    "community value for a standard community-list",
                )
                return
        community_list.add(CommunityListEntry(action=action, communities=tuple(values)))

    def _parse_numbered_acl(self, line: ConfigLine) -> None:
        # access-list N permit|deny (any | host A | A W)
        if len(line.tokens) < 3:
            self.diagnostics.warn(line.number, line.text, "access-list is incomplete")
            return
        name = line.tokens[1]
        access_list = self.config.access_lists.get(name) or AccessList(name)
        self.config.add_access_list(access_list)
        entry = self._acl_entry_from_tokens(line, list(line.tokens[2:]))
        if entry is not None:
            access_list.add(entry)

    def _enter_named_acl(self, line: ConfigLine) -> None:
        # ip access-list standard NAME  (entries follow as child lines)
        if len(line.tokens) < 4:
            self.diagnostics.warn(line.number, line.text, "access-list requires a name")
            self._context = None
            return
        name = line.tokens[3]
        access_list = self.config.access_lists.get(name) or AccessList(name)
        self.config.add_access_list(access_list)
        self._current_acl = access_list
        self._context = "acl"

    def _parse_acl_entry_line(self, line: ConfigLine) -> None:
        assert self._current_acl is not None
        entry = self._acl_entry_from_tokens(line, list(line.tokens))
        if entry is not None:
            self._current_acl.add(entry)

    def _acl_entry_from_tokens(self, line: ConfigLine, tokens) -> Optional[AclEntry]:
        action = tokens.pop(0).lower()
        if action not in ("permit", "deny"):
            self.diagnostics.warn(
                line.number, line.text, "access-list entry requires permit or deny"
            )
            return None
        if not tokens:
            self.diagnostics.warn(line.number, line.text, "access-list entry is incomplete")
            return None
        first = tokens.pop(0).lower()
        try:
            if first == "any":
                return AclEntry.any(action)
            if first == "host" and tokens:
                return AclEntry.from_strings(action, tokens.pop(0))
            wildcard = tokens.pop(0) if tokens else "0.0.0.0"
            return AclEntry.from_strings(action, first, wildcard)
        except AddressError as exc:
            self.diagnostics.warn(line.number, line.text, str(exc))
            return None

    def _parse_as_path_list(self, line: ConfigLine) -> None:
        # ip as-path access-list N permit|deny REGEX
        if len(line.tokens) < 6:
            self.diagnostics.warn(line.number, line.text, "as-path access-list is incomplete")
            return
        name = line.tokens[3]
        action = line.tokens[4].lower()
        if action not in ("permit", "deny"):
            self.diagnostics.warn(
                line.number, line.text, "as-path access-list requires permit or deny"
            )
            return
        regex = " ".join(line.tokens[5:])
        as_path_list = self.config.as_path_lists.get(name) or AsPathAccessList(name)
        self.config.add_as_path_list(as_path_list)
        as_path_list.add(action, regex)


def _parse_int(parser: _CiscoParser, line: ConfigLine, token: str) -> Optional[int]:
    """Parse an integer token, warning (not raising) on failure."""
    try:
        return int(token)
    except ValueError:
        parser.diagnostics.warn(
            line.number, line.text, f"expected a number, found {token!r}"
        )
        return None
