"""Phase spans: per-phase wall-clock timers plus Chrome trace events.

``with span("converge", router="R3"):`` does two things:

* always: feeds the elapsed wall-clock into the registry timer
  ``phase.converge`` (so phase breakdowns cost one ``perf_counter`` pair
  per span, tracing on or off);
* when tracing is enabled (``set_tracing(True)`` / ``campaign --trace``):
  records a Chrome trace-event ``"ph": "X"`` complete event with
  microsecond timestamps, viewable in Perfetto / chrome://tracing.

Events accumulate in a process-local buffer; :func:`drain_events` empties
it.  Campaign workers drain after each scenario and ship the events back
with the result, so the parent writes one merged trace file covering
every process (events carry real pids/tids, so Perfetto lays each worker
out on its own track).

Timestamps are wall-clock epoch microseconds (shared basis across
processes); durations come from ``perf_counter`` (monotonic, precise).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import REGISTRY

__all__ = [
    "drain_events",
    "open_spans",
    "set_tracing",
    "span",
    "span_events",
    "tracing_enabled",
    "validate_trace",
    "validate_trace_file",
    "write_trace",
]

_enabled = False
_events: List[Dict[str, Any]] = []
_events_lock = threading.Lock()
_local = threading.local()


def set_tracing(enabled: bool) -> None:
    """Turn trace-event capture on/off (phase timers always run)."""
    global _enabled
    _enabled = bool(enabled)


def tracing_enabled() -> bool:
    return _enabled


def _stack() -> List[str]:
    stack: Optional[List[str]] = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def open_spans() -> int:
    """Spans currently open on *this* thread (hygiene-fixture probe)."""
    return len(_stack())


@contextmanager
def span(name: str, **args: Any) -> Iterator[None]:
    """Time a phase; emit a trace event when tracing is on.

    ``args`` become the trace event's ``args`` payload (stringified, so
    arbitrary values are JSON-safe).
    """
    stack = _stack()
    stack.append(name)
    wall_us = time.time() * 1e6
    t0 = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - t0
        stack.pop()
        REGISTRY.timer(f"phase.{name}").observe(elapsed)
        if _enabled:
            event = {
                "name": name,
                "ph": "X",
                "ts": wall_us,
                "dur": elapsed * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            }
            if args:
                event["args"] = {k: str(v) for k, v in args.items()}
            with _events_lock:
                _events.append(event)


def drain_events() -> List[Dict[str, Any]]:
    """Return and clear the buffered trace events."""
    global _events
    with _events_lock:
        drained = _events
        _events = []
    return drained


def span_events() -> List[Dict[str, Any]]:
    """Peek at the buffer without clearing it."""
    with _events_lock:
        return list(_events)


def write_trace(path: str, events: List[Dict[str, Any]]) -> None:
    """Write a Chrome trace-event JSON file (Perfetto-compatible)."""
    payload = {
        "traceEvents": sorted(events, key=lambda e: (e["pid"], e["tid"], e["ts"])),
        "displayTimeUnit": "ms",
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    os.replace(tmp, path)


def validate_trace(events: List[Dict[str, Any]]) -> Tuple[int, int]:
    """Check well-formedness and nesting; return ``(n_events, n_tracks)``.

    Within each ``(pid, tid)`` track, complete events must either nest
    (one interval contains the other) or not overlap — the invariant a
    synchronous span stack guarantees and trace viewers assume.  Raises
    ``ValueError`` on the first violation.
    """
    tracks: Dict[Tuple[Any, Any], List[Tuple[float, float, str]]] = {}
    for i, event in enumerate(events):
        for field in ("name", "ph", "ts", "dur", "pid", "tid"):
            if field not in event:
                raise ValueError(f"event {i} missing field {field!r}: {event}")
        if event["ph"] != "X":
            raise ValueError(f"event {i} has unsupported phase {event['ph']!r}")
        key = (event["pid"], event["tid"])
        start = float(event["ts"])
        end = start + float(event["dur"])
        tracks.setdefault(key, []).append((start, end, event["name"]))
    for key, intervals in tracks.items():
        # Parents sort before their children: by start ascending, then by
        # end *descending* so an enclosing span that shares a start
        # timestamp with its first child is opened first.
        intervals.sort(key=lambda iv: (iv[0], -iv[1]))
        open_stack: List[Tuple[float, float, str]] = []
        for start, end, name in intervals:
            while open_stack and open_stack[-1][1] <= start:
                open_stack.pop()
            if open_stack and end > open_stack[-1][1]:
                parent = open_stack[-1]
                raise ValueError(
                    f"track {key}: span {name!r} [{start}, {end}] overlaps "
                    f"{parent[2]!r} [{parent[0]}, {parent[1]}] without nesting"
                )
            open_stack.append((start, end, name))
    return len(events), len(tracks)


def validate_trace_file(path: str) -> Tuple[int, int]:
    """Load + validate a trace file written by :func:`write_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents list")
    return validate_trace(events)


def _main(argv: Optional[List[str]] = None) -> int:
    import sys

    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.obs.tracing TRACE.json [...]")
        return 2
    for path in paths:
        n_events, n_tracks = validate_trace_file(path)
        print(f"{path}: OK ({n_events} events, {n_tracks} tracks)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke
    raise SystemExit(_main())
