"""Process-wide metrics registry: counters, gauges, and timers.

Every subsystem used to keep its own ad-hoc counter dict (``route._STATS``,
``bgpsim._STATS``, per-``MemoCache`` hit/miss fields) and campaign code
hand-threaded each one into journals.  This module gives them one shared
substrate:

* :class:`Counter` — a monotonically increasing integer (events since reset).
* :class:`Gauge` — a level that goes up and down (in-flight work).
* :class:`Timer` — accumulated wall-clock observations for a phase
  (``count`` / ``total_s`` / ``max_s``); the span API in
  :mod:`repro.obs.tracing` feeds one per phase name.

All three are created through a process-wide :class:`MetricsRegistry`
(module-level ``REGISTRY`` plus the ``counter``/``gauge``/``timer``
helpers).  Two instruments with the same name are the *same object*, so a
module can publish a handle (``ROUTES_BUILT = counter("route.routes_built")``)
and other modules — or tests — can read it by name without importing
private state.

Shipping semantics are the point: workers are separate processes, each
with its own registry, so campaign/service workers measure a scenario by
``snapshot`` → work → ``snapshot`` → :func:`delta`, send the (small, flat,
JSON-safe) delta dict over the existing result queues, and the parent
folds them with :func:`merge`.  Deltas of monotonic series subtract;
gauges are levels and are excluded from ``counters_snapshot``; ``.max_s``
keys take the *after* value in a delta and merge by ``max``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "REGISTRY",
    "Timer",
    "counter",
    "counters_snapshot",
    "delta",
    "gauge",
    "merge",
    "reset_metrics",
    "snapshot",
    "timer",
]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A level that moves both ways (e.g. in-flight scenarios).

    Gauges are process-local state, not events: they are excluded from
    ``counters_snapshot`` (and therefore from worker deltas), and the
    test-suite hygiene fixture fails any test that leaves one nonzero.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0


class Timer:
    """Accumulated wall-clock for a named phase.

    Exposed in snapshots as three series: ``{name}.count``,
    ``{name}.total_s`` and ``{name}.max_s``.
    """

    __slots__ = ("name", "count", "total_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0


class MetricsRegistry:
    """Get-or-create home for every instrument in the process.

    Instruments live in flat dot-separated namespaces
    (``route.routes_built``, ``memo.universe-policy.hits``,
    ``phase.converge``).  A name is bound to exactly one instrument kind;
    asking for it as a different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def _check_free(self, name: str, want: str) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("timer", self._timers),
        ):
            if kind != want and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        got = self._counters.get(name)
        if got is not None:
            return got
        with self._lock:
            got = self._counters.get(name)
            if got is None:
                self._check_free(name, "counter")
                got = self._counters[name] = Counter(name)
            return got

    def gauge(self, name: str) -> Gauge:
        got = self._gauges.get(name)
        if got is not None:
            return got
        with self._lock:
            got = self._gauges.get(name)
            if got is None:
                self._check_free(name, "gauge")
                got = self._gauges[name] = Gauge(name)
            return got

    def timer(self, name: str) -> Timer:
        got = self._timers.get(name)
        if got is not None:
            return got
        with self._lock:
            got = self._timers.get(name)
            if got is None:
                self._check_free(name, "timer")
                got = self._timers[name] = Timer(name)
            return got

    def gauges(self) -> List[Gauge]:
        with self._lock:
            return list(self._gauges.values())

    # Snapshot/reset hold the creation lock: a worker's heartbeat thread
    # snapshots while the main thread may be registering instruments
    # (first span of a phase, a new memo cache), and iterating a dict
    # during insertion raises.

    def snapshot(self) -> Dict[str, float]:
        """Every series (counters, gauges, timer triples), zeros included."""
        out: Dict[str, float] = {}
        with self._lock:
            for c in self._counters.values():
                out[c.name] = c.value
            for g in self._gauges.values():
                out[g.name] = g.value
            for t in self._timers.values():
                out[f"{t.name}.count"] = t.count
                out[f"{t.name}.total_s"] = t.total_s
                out[f"{t.name}.max_s"] = t.max_s
        return out

    def counters_snapshot(self) -> Dict[str, float]:
        """Only the monotonic series — what :func:`delta` is defined over.

        Gauges are levels, not events; excluding them keeps worker deltas
        meaningful under merge.
        """
        out: Dict[str, float] = {}
        with self._lock:
            for c in self._counters.values():
                out[c.name] = c.value
            for t in self._timers.values():
                out[f"{t.name}.count"] = t.count
                out[f"{t.name}.total_s"] = t.total_s
                out[f"{t.name}.max_s"] = t.max_s
        return out

    def reset(self) -> None:
        """Zero every instrument (instances stay registered — published
        handles remain valid)."""
        with self._lock:
            for c in self._counters.values():
                c.reset()
            for g in self._gauges.values():
                g.reset()
            for t in self._timers.values():
                t.reset()


def _is_max_key(name: str) -> bool:
    return name.endswith(".max_s")


def delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
    """``after - before`` over monotonic snapshots, dropping zero series.

    ``.max_s`` series are not subtractive: the delta carries the *after*
    value whenever the matching ``.count`` moved (a per-window max is
    unrecoverable from two cumulative maxima, so the cumulative max is
    the honest upper bound).
    """
    out: Dict[str, float] = {}
    for name, after_value in after.items():
        before_value = before.get(name, 0)
        if _is_max_key(name):
            count_key = name[: -len(".max_s")] + ".count"
            if after.get(count_key, 0) > before.get(count_key, 0):
                out[name] = after_value
            continue
        diff = after_value - before_value
        if diff:
            out[name] = diff
    return out


def merge(
    into: Dict[str, float], *updates: Optional[Dict[str, float]]
) -> Dict[str, float]:
    """Fold delta/snapshot dicts into ``into`` in place (and return it).

    Sums every series except ``.max_s``, which merges by ``max``.
    ``None`` updates are skipped so callers can pass optional payloads.
    """
    for update in updates:
        if not update:
            continue
        for name, value in update.items():
            if _is_max_key(name):
                if value > into.get(name, 0):
                    into[name] = value
            else:
                into[name] = into.get(name, 0) + value
    return into


#: The process-wide registry.  Worker processes each get their own copy
#: (spawn/fork both re-import this module); deltas travel over queues.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def timer(name: str) -> Timer:
    return REGISTRY.timer(name)


def snapshot() -> Dict[str, float]:
    return REGISTRY.snapshot()


def counters_snapshot() -> Dict[str, float]:
    return REGISTRY.counters_snapshot()


def reset_metrics() -> None:
    REGISTRY.reset()
