"""Unified observability layer: metrics registry, phase spans, exposition.

One substrate for every counter surface in the tree — route-datapath
stats, simulator totals, memo-cache hit rates, campaign per-scenario
deltas, service worker health — plus span tracing that renders to Chrome
trace-event JSON and a Prometheus text renderer for ``GET /metrics``.

See :mod:`repro.obs.metrics` for the registry/delta/merge semantics and
:mod:`repro.obs.tracing` for spans.
"""

from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    REGISTRY,
    Timer,
    counter,
    counters_snapshot,
    delta,
    gauge,
    merge,
    reset_metrics,
    snapshot,
    timer,
)
from .prom import render_prometheus, sanitize_metric_name
from .tracing import (
    drain_events,
    open_spans,
    set_tracing,
    span,
    span_events,
    tracing_enabled,
    validate_trace,
    validate_trace_file,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "REGISTRY",
    "Timer",
    "counter",
    "counters_snapshot",
    "delta",
    "drain_events",
    "gauge",
    "merge",
    "open_spans",
    "render_prometheus",
    "reset_metrics",
    "sanitize_metric_name",
    "set_tracing",
    "snapshot",
    "span",
    "span_events",
    "timer",
    "tracing_enabled",
    "validate_trace",
    "validate_trace_file",
    "write_trace",
]
