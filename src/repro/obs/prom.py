"""Prometheus text-exposition rendering (stdlib only).

The service's ``GET /metrics`` endpoint serves version 0.0.4 of the text
format: one ``# TYPE`` line per metric family, then one sample per line,
optionally labeled.  Metric names come from the registry's dot-separated
namespaces; dots and dashes become underscores (``memo.universe-policy.hits``
→ ``memo_universe_policy_hits``).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Sample", "render_prometheus", "sanitize_metric_name"]

#: ``(name, labels-or-None, value, type)`` — type is "counter" or "gauge".
Sample = Tuple[str, Optional[Mapping[str, str]], float, str]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    sanitized = _INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def render_prometheus(samples: Iterable[Sample]) -> str:
    """Render samples grouped by family, with ``# TYPE`` headers.

    Samples sharing a (sanitized) name form one family and must share a
    type; families render in first-seen order, samples in given order.
    """
    families: Dict[str, List[Tuple[Optional[Mapping[str, str]], float]]] = {}
    types: Dict[str, str] = {}
    order: List[str] = []
    for name, labels, value, sample_type in samples:
        metric = sanitize_metric_name(name)
        if metric not in families:
            families[metric] = []
            types[metric] = sample_type
            order.append(metric)
        elif types[metric] != sample_type:
            raise ValueError(
                f"metric {metric!r} declared as both {types[metric]!r} "
                f"and {sample_type!r}"
            )
        families[metric].append((labels, value))
    lines: List[str] = []
    for metric in order:
        lines.append(f"# TYPE {metric} {types[metric]}")
        for labels, value in families[metric]:
            if labels:
                rendered = ",".join(
                    f'{sanitize_metric_name(k)}="{_escape_label_value(str(v))}"'
                    for k, v in labels.items()
                )
                lines.append(f"{metric}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{metric} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""
