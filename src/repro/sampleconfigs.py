"""Bundled configurations used by the experiments.

§3.2 translates "a Cisco configuration from the Batfish examples ...
short enough to fit within GPT-4 text input limits, but us[ing]
non-trivial features including BGP, OSPF, prefix lists, and route maps."
The config below is an equivalent stand-in exercising the exact feature
surface the paper's Table 2 errors arise from: BGP neighbors with import
and export route-maps, a prefix list with ``ge`` length matching, MED
setting, OSPF costs and passive interfaces, and redistribution into BGP
through a separate route-map.
"""

from __future__ import annotations

from .cisco import parse_cisco
from .netmodel.device import RouterConfig

__all__ = [
    "BATFISH_EXAMPLE_CISCO",
    "BATFISH_EXAMPLE_CISCO_2",
    "load_second_source",
    "load_translation_source",
]

BATFISH_EXAMPLE_CISCO = """\
hostname as100border1
!
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
 ip ospf cost 1
!
interface GigabitEthernet0/0
 description to provider AS 200
 ip address 2.3.4.1 255.255.255.0
!
interface GigabitEthernet0/1
 description to customer AS 300
 ip address 1.2.3.1 255.255.255.0
 ip ospf cost 10
!
ip prefix-list our-networks seq 5 permit 1.2.3.0/24 ge 24
ip prefix-list private-ips seq 5 permit 10.0.0.0/8 le 32
ip prefix-list private-ips seq 10 permit 172.16.0.0/12 le 32
ip prefix-list private-ips seq 15 permit 192.168.0.0/16 le 32
!
ip community-list 1 permit 100:300
!
route-map to_provider permit 10
 match ip address prefix-list our-networks
 set metric 50
!
route-map from_provider deny 10
 match ip address prefix-list private-ips
route-map from_provider permit 20
!
route-map from_customer deny 100
 match ip address prefix-list private-ips
route-map from_customer permit 200
 set community 100:300 additive
!
route-map ospf-into-bgp permit 10
 match ip address prefix-list our-networks
!
router ospf 1
 router-id 1.1.1.1
 network 1.1.1.1 0.0.0.0 area 0
 network 1.2.3.0 0.0.0.255 area 0
 passive-interface Loopback0
!
router bgp 100
 bgp router-id 1.1.1.1
 network 1.2.3.0 mask 255.255.255.0
 neighbor 2.3.4.5 remote-as 200
 neighbor 2.3.4.5 send-community
 neighbor 2.3.4.5 route-map from_provider in
 neighbor 2.3.4.5 route-map to_provider out
 neighbor 1.2.3.9 remote-as 300
 neighbor 1.2.3.9 send-community
 neighbor 1.2.3.9 route-map from_customer in
 redistribute ospf route-map ospf-into-bgp
"""


def load_translation_source() -> RouterConfig:
    """Parse the bundled Cisco config (it must parse warning-free)."""
    result = parse_cisco(BATFISH_EXAMPLE_CISCO, filename="as100border1.cfg")
    if result.warnings:
        rendered = "; ".join(warning.render() for warning in result.warnings)
        raise ValueError(f"bundled config failed to parse cleanly: {rendered}")
    return result.config

# A second config exercising the features the first does not: local
# preference, AS-path access lists, standard ACLs used as route filters,
# and AS-path prepending — the wider surface a translation tool must
# face beyond the paper's single example.
BATFISH_EXAMPLE_CISCO_2 = """\
hostname as200edge1
!
interface Loopback0
 ip address 2.2.2.2 255.255.255.255
!
interface GigabitEthernet0/0
 description to upstream AS 100
 ip address 2.3.4.5 255.255.255.0
!
interface GigabitEthernet0/1
 description to peer AS 400
 ip address 4.5.6.1 255.255.255.0
!
access-list 20 permit 20.0.0.0 0.255.255.255
!
ip as-path access-list 1 permit ^400_
!
ip community-list 5 permit 200:500
!
route-map from_upstream permit 10
 set local-preference 80
!
route-map from_peer permit 10
 match as-path 1
 set local-preference 200
route-map from_peer deny 20
!
route-map to_upstream permit 10
 match ip address 20
 set as-path prepend 200 200
route-map to_upstream deny 20
 match community 5
route-map to_upstream permit 30
!
router bgp 200
 bgp router-id 2.2.2.2
 network 20.1.0.0 mask 255.255.0.0
 neighbor 2.3.4.1 remote-as 100
 neighbor 2.3.4.1 send-community
 neighbor 2.3.4.1 route-map from_upstream in
 neighbor 2.3.4.1 route-map to_upstream out
 neighbor 4.5.6.2 remote-as 400
 neighbor 4.5.6.2 route-map from_peer in
"""


def load_second_source() -> RouterConfig:
    """Parse the second bundled Cisco config (warning-free)."""
    result = parse_cisco(BATFISH_EXAMPLE_CISCO_2, filename="as200edge1.cfg")
    if result.warnings:
        rendered = "; ".join(warning.render() for warning in result.warnings)
        raise ValueError(f"second bundled config failed to parse: {rendered}")
    return result.config
