"""Snapshots: named bundles of configuration files.

Mirrors Batfish's notion of a snapshot — a directory of config files
that is parsed as a unit.  The Composer of COSYNTH (§2, Figure 3) "puts
back the pieces ... in a folder for Batfish"; that folder is a
:class:`Snapshot` here.  Vendor detection is textual: Junos configs are
brace-structured, IOS configs are line-oriented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..cisco import parse_cisco
from ..juniper import parse_juniper
from ..netmodel.device import RouterConfig, Vendor
from ..netmodel.diagnostics import ParseWarning

__all__ = ["Snapshot", "detect_vendor"]


def detect_vendor(text: str) -> Vendor:
    """Guess the config dialect from its shape.

    Junos statements end in ``;`` and open ``{`` blocks; IOS has neither.
    """
    brace_score = text.count("{") + text.count(";")
    cisco_markers = sum(
        text.count(marker)
        for marker in ("router bgp", "route-map", "ip prefix-list", "interface ")
    )
    if brace_score > cisco_markers:
        return Vendor.JUNIPER
    return Vendor.CISCO


@dataclass
class Snapshot:
    """A parsed set of configurations, keyed by file name."""

    name: str = "snapshot"
    texts: Dict[str, str] = field(default_factory=dict)
    configs: Dict[str, RouterConfig] = field(default_factory=dict)
    warnings: Dict[str, List[ParseWarning]] = field(default_factory=dict)

    @classmethod
    def from_texts(cls, texts: Dict[str, str], name: str = "snapshot") -> "Snapshot":
        """Parse a mapping of ``filename -> config text``."""
        snapshot = cls(name=name)
        for filename, text in texts.items():
            snapshot.add_file(filename, text)
        return snapshot

    @classmethod
    def from_directory(cls, path: "Path | str", name: Optional[str] = None) -> "Snapshot":
        """Parse every ``*.cfg``/``*.conf`` file in a directory."""
        directory = Path(path)
        texts: Dict[str, str] = {}
        for pattern in ("*.cfg", "*.conf"):
            for file_path in sorted(directory.glob(pattern)):
                texts[file_path.name] = file_path.read_text()
        return cls.from_texts(texts, name=name or directory.name)

    def add_file(self, filename: str, text: str) -> RouterConfig:
        """Parse and add (or replace) one config file."""
        self.texts[filename] = text
        vendor = detect_vendor(text)
        if vendor is Vendor.JUNIPER:
            result = parse_juniper(text, filename=filename)
        else:
            result = parse_cisco(text, filename=filename)
        config = result.config
        if not config.hostname:
            config.hostname = Path(filename).stem
        self.configs[filename] = config
        self.warnings[filename] = list(result.warnings)
        return config

    def write_to(self, path: "Path | str") -> Path:
        """Materialize the snapshot as a config folder on disk."""
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        for filename, text in self.texts.items():
            (directory / filename).write_text(text)
        return directory

    def config_by_hostname(self, hostname: str) -> Optional[RouterConfig]:
        for config in self.configs.values():
            if config.hostname == hostname:
                return config
        return None

    def all_warnings(self) -> List[ParseWarning]:
        collected: List[ParseWarning] = []
        for filename in sorted(self.warnings):
            collected.extend(self.warnings[filename])
        return collected

    def hostnames(self) -> List[str]:
        return sorted(config.hostname for config in self.configs.values())
