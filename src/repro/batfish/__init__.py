"""Batfish substitute: snapshots, parse warnings, symbolic policy
questions, and BGP control-plane simulation behind a pybatfish-like API.
"""

from .bgpsim import (
    BgpSession,
    BgpSimulation,
    ResimStats,
    RibEntry,
    SimulationState,
    incremental_simulation_enabled,
    reset_sim_stats,
    set_incremental_simulation,
    sim_totals,
)
from .session import BfSessionError, BgpSessionRow, Session
from .snapshot import Snapshot, detect_vendor

__all__ = [
    "BfSessionError",
    "BgpSession",
    "BgpSessionRow",
    "BgpSimulation",
    "ResimStats",
    "RibEntry",
    "Session",
    "SimulationState",
    "Snapshot",
    "detect_vendor",
    "incremental_simulation_enabled",
    "reset_sim_stats",
    "set_incremental_simulation",
    "sim_totals",
]
