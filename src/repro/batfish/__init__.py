"""Batfish substitute: snapshots, parse warnings, symbolic policy
questions, and BGP control-plane simulation behind a pybatfish-like API.
"""

from .bgpsim import BgpSession, BgpSimulation, RibEntry
from .session import BfSessionError, BgpSessionRow, Session
from .snapshot import Snapshot, detect_vendor

__all__ = [
    "BfSessionError",
    "BgpSession",
    "BgpSessionRow",
    "BgpSimulation",
    "RibEntry",
    "Session",
    "Snapshot",
    "detect_vendor",
]
