"""A pybatfish-flavoured session facade.

The paper's COSYNTH design calls Batfish in two roles: a *syntax
verifier* (parse warnings) and a *semantic verifier* (symbolic route-map
search, plus full BGP simulation for the final global check).  This
module packages those roles behind an API shaped like ``pybatfish``'s
``Session``/questions so a future port to the real Batfish is a drop-in
swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..netmodel.device import RouterConfig
from ..netmodel.diagnostics import ParseWarning
from ..netmodel.ip import Prefix
from ..netmodel.routing_policy import Action
from ..symbolic import (
    PolicySearchResult,
    RouteConstraint,
    search_route_policies,
)
from .bgpsim import BgpSimulation
from .snapshot import Snapshot

__all__ = ["Session", "BfSessionError", "BgpSessionRow"]


class BfSessionError(Exception):
    """Raised for misuse of the session (no snapshot, unknown node...)."""


@dataclass(frozen=True)
class BgpSessionRow:
    """One row of the bgp-session-compatibility answer."""

    node: str
    remote_node: Optional[str]
    local_ip: str
    remote_ip: str
    established: bool


class Session:
    """Entry point mirroring ``pybatfish.client.session.Session``."""

    def __init__(self) -> None:
        self._snapshot: Optional[Snapshot] = None
        self._simulation: Optional[BgpSimulation] = None
        self.q = _Questions(self)

    # -- snapshot management --------------------------------------------------

    def init_snapshot_from_texts(
        self, texts: Dict[str, str], name: str = "snapshot"
    ) -> Snapshot:
        self._snapshot = Snapshot.from_texts(texts, name=name)
        self._simulation = None
        return self._snapshot

    def init_snapshot(self, path: "Path | str", name: Optional[str] = None) -> Snapshot:
        self._snapshot = Snapshot.from_directory(path, name=name)
        self._simulation = None
        return self._snapshot

    @property
    def snapshot(self) -> Snapshot:
        if self._snapshot is None:
            raise BfSessionError("no snapshot initialized")
        return self._snapshot

    def config_of(self, node: str) -> RouterConfig:
        config = self.snapshot.config_by_hostname(node)
        if config is None and node in self.snapshot.configs:
            config = self.snapshot.configs[node]
        if config is None:
            raise BfSessionError(f"unknown node {node!r}")
        return config

    def simulation(self) -> BgpSimulation:
        """The (lazily built) BGP simulation over the snapshot."""
        if self._simulation is None:
            configs = {
                config.hostname: config
                for config in self.snapshot.configs.values()
            }
            self._simulation = BgpSimulation(configs)
            self._simulation.run()
        return self._simulation


class _Questions:
    """The ``session.q.<question>()`` namespace."""

    def __init__(self, session: Session) -> None:
        self._session = session

    def parse_warning(self) -> List[ParseWarning]:
        """All parse warnings across the snapshot (syntax verifier)."""
        return self._session.snapshot.all_warnings()

    def parse_warning_for(self, node: str) -> List[ParseWarning]:
        snapshot = self._session.snapshot
        for filename, config in snapshot.configs.items():
            if config.hostname == node or filename == node:
                return list(snapshot.warnings[filename])
        raise BfSessionError(f"unknown node {node!r}")

    def undefined_references(self, node: str) -> List[str]:
        """Policy names referenced but never defined on a node."""
        return self._session.config_of(node).undefined_references()

    def search_route_policies(
        self,
        node: str,
        policy: str,
        action: str = "permit",
        input_constraints: Optional[RouteConstraint] = None,
        limit: int = 10,
    ) -> List[PolicySearchResult]:
        """Batfish's SearchRoutePolicies (semantic verifier, §4.1)."""
        config = self._session.config_of(node)
        return search_route_policies(
            config,
            policy,
            Action(action),
            constraint=input_constraints,
            limit=limit,
        )

    def bgp_session_compatibility(self) -> List[BgpSessionRow]:
        """Which declared sessions actually establish."""
        session = self._session
        simulation = session.simulation()
        established = {
            (item.local_router, str(item.remote_ip)) for item in simulation.sessions
        } | {
            (item.remote_router, str(item.local_ip)) for item in simulation.sessions
        }
        remote_by_key = {}
        for item in simulation.sessions:
            remote_by_key[(item.local_router, str(item.remote_ip))] = item.remote_router
            remote_by_key[(item.remote_router, str(item.local_ip))] = item.local_router
        rows: List[BgpSessionRow] = []
        for config in session.snapshot.configs.values():
            if config.bgp is None:
                continue
            for neighbor in config.bgp.sorted_neighbors():
                key = (config.hostname, str(neighbor.ip))
                rows.append(
                    BgpSessionRow(
                        node=config.hostname,
                        remote_node=remote_by_key.get(key),
                        local_ip="",
                        remote_ip=str(neighbor.ip),
                        established=key in established,
                    )
                )
        return rows

    def routes(self, node: str) -> List[Dict[str, str]]:
        """The converged BGP RIB of a node, as printable rows."""
        simulation = self._session.simulation()
        rows = []
        for prefix, entry in sorted(simulation.rib(node).items()):
            rows.append(
                {
                    "node": node,
                    "prefix": str(prefix),
                    "as_path": str(entry.route.as_path),
                    "communities": ", ".join(
                        sorted(str(c) for c in entry.route.communities)
                    ),
                    "learned_from": entry.learned_from or "local",
                    "origin": entry.origin_router,
                }
            )
        return rows

    def reachable(self, node: str, prefix: "Prefix | str") -> bool:
        """Whether ``node`` has a converged route for ``prefix``."""
        target = prefix if isinstance(prefix, Prefix) else Prefix.parse(prefix)
        return self._session.simulation().has_route(node, target)
