"""BGP control-plane simulation over a snapshot of router configs.

This is the "simulate the entire BGP communication using Batfish as a
final step" of §4.1: after the per-router local policies verify, the
whole network is simulated to confirm the *global* no-transit policy.

The simulator:

* derives eBGP sessions from mutual neighbor declarations (A declares a
  neighbor address owned by B with B's AS, and vice versa);
* originates a router's ``network`` statements as BGP routes;
* propagates routes to fixpoint, applying the advertiser's export
  route-map, AS-path prepending, AS-loop rejection, and the receiver's
  import route-map;
* runs standard best-path selection (local-pref, AS-path length, MED,
  total tie-break on advertiser then originator name for determinism).

Best-path selection is driven by a *decision cache*: every
:class:`RibEntry` computes its C-ordered decision tuple once at
construction (``RibEntry.decision_key``), so comparing two candidates
is a single tuple ``<`` and ``_advertise`` picks each (router, prefix)
winner with a ``min()`` over those tuples.  :func:`set_decision_cache`
keeps the historical attribute-cascade comparator alive for A/B
benchmarking; both orders are identical by construction (the
decision-order property tests assert tuple-vs-cascade agreement over
randomized entries).

Communities always propagate (Junos default); the experiments' policies
tag and filter within a single router, so Cisco's ``send-community``
subtlety does not change any experiment outcome — the flag is still
parsed and carried in the IR for completeness.

Incremental re-simulation
-------------------------

Campaign grids and synthesis rounds re-converge the same network over
and over with only a handful of routers changed between runs.
:class:`SimulationState` keeps a warm, converged simulation and, given
the set of changed routers, re-converges only the affected dependency
cone: every RIB entry records the routers its route traversed
(``RibEntry.path``), so entries whose provenance avoids the changed set
survive verbatim, while the rest are invalidated and refilled by a
prefix-filtered worklist that advertises only along dirty BGP sessions.
A converged incremental state is always identical to a from-scratch
run (the differential property tests assert this per topology family);
if the worklist ever exceeds the full simulator's iteration budget the
state falls back to a full convergence, so incrementality can change
performance but never verdicts.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..netmodel.device import RouterConfig
from ..netmodel.ip import Ipv4Address, Prefix
from ..netmodel.route import (
    ROUTES_REUSED,
    Protocol,
    Route,
    route_model_is_v2,
)
from ..obs import counter, span, timer
from ..netmodel.routebuilder import RouteBuilder, export_route
from ..netmodel.routing_policy import (
    Action,
    PolicyEvaluationError,
    SetLocalPref,
    SetMed,
)

__all__ = [
    "BgpSession",
    "BgpSimulation",
    "ResimStats",
    "RibEntry",
    "SimulationState",
    "batched_evaluation_enabled",
    "decision_cache_enabled",
    "incremental_simulation_enabled",
    "reset_sim_stats",
    "rib_snapshots",
    "set_batched_evaluation",
    "set_decision_cache",
    "set_incremental_simulation",
    "sim_totals",
]

MAX_ITERATIONS = 64


@dataclass(frozen=True)
class BgpSession:
    """An established (bidirectional) eBGP session between two routers."""

    local_router: str
    local_ip: Ipv4Address
    remote_router: str
    remote_ip: Ipv4Address

    def reversed(self) -> "BgpSession":
        return BgpSession(
            local_router=self.remote_router,
            local_ip=self.remote_ip,
            remote_router=self.local_router,
            remote_ip=self.local_ip,
        )


@dataclass(frozen=True)
class RibEntry:
    """A route installed in a router's BGP RIB, with provenance.

    ``path`` lists every router the route traversed before reaching the
    holder, origin first (empty for locally originated routes).  The
    incremental engine invalidates exactly the entries whose path
    crosses a changed router: everything about such an entry — the
    export maps applied, the prepends, the tags — was computed from a
    configuration that no longer exists.

    ``decision_key`` is the C-ordered BGP decision tuple, computed once
    at construction: ``(not locally-originated, -local_pref, as-path
    length, med, learned_from, origin_router, as-path asns, path)``.  A
    plain tuple ``<`` prefers the better entry, so best-path selection
    is one comparison instead of a cascade of attribute checks — and
    the trailing ``(learned_from, origin_router, asns, path)`` segment
    makes the tie-break *total over route content*: any two
    distinguishable entries are strictly ordered, independent of
    arrival order.  The content components matter because the leading
    attributes are not injective — two routes from the same neighbor
    with the same originator can still carry different (equal-length)
    AS paths, and the differential fuzzer demonstrated that breaking
    such a tie by arrival order makes incremental re-simulation diverge
    from a from-scratch run.
    """

    route: Route
    learned_from: Optional[str]  # hostname, or None for locally originated
    origin_router: str  # hostname of the originator
    path: Tuple[str, ...] = ()  # routers traversed, origin first
    decision_key: Tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "decision_key",
            (self.learned_from is not None,)
            + self.route.decision_slice()
            + (
                self.learned_from or "",
                self.origin_router,
                self.route.as_path.asns,
                self.path,
            ),
        )

    @classmethod
    def _learned(
        cls,
        route: Route,
        learned_from: str,
        origin_router: str,
        path: Tuple[str, ...],
    ) -> "RibEntry":
        """Hot-path constructor for session-learned entries: builds the
        decision key flat and skips the dataclass ``__init__`` /
        ``__post_init__`` chain (the export pipeline constructs one
        entry per candidate, so this is converge-dominant)."""
        entry = object.__new__(cls)
        new = object.__setattr__
        new(entry, "route", route)
        new(entry, "learned_from", learned_from)
        new(entry, "origin_router", origin_router)
        new(entry, "path", path)
        new(
            entry,
            "decision_key",
            (
                True,  # learned, never locally originated
                -route.local_pref,
                len(route.as_path.asns),
                route.med,
                learned_from,
                origin_router,
                route.as_path.asns,
                path,
            ),
        )
        return entry

    @property
    def is_local(self) -> bool:
        return self.learned_from is None


class BgpSimulation:
    """Fixpoint BGP route propagation over a set of configs."""

    def __init__(self, configs: Dict[str, RouterConfig]) -> None:
        """``configs`` maps hostname to parsed config."""
        self._configs = dict(configs)
        self._address_owner = self._index_addresses()
        self._sessions = self._derive_sessions()
        self._ribs: Dict[str, Dict[Prefix, RibEntry]] = {
            hostname: {} for hostname in self._configs
        }
        self._converged = False
        self._iterations = 0
        self.evaluations = 0  # route-map/install evaluations performed
        # (config id, map name) -> PreparedRouteMap; configs are fixed
        # for the lifetime of a simulation, so each policy is bound to
        # its config once per convergence, not once per session visit.
        self._prepared: Dict[Tuple[int, str], object] = {}
        # route-map id -> whether its set chains can improve a route's
        # decision attributes (same lifetime guarantee as _prepared).
        self._neutral: Dict[int, bool] = {}
        # (sender, receiver) -> {prefix: (rib entry, candidate or None)}.
        # Configs never change within one simulation and routes are
        # immutable flyweights, so advertising the *same* RIB entry
        # across a session is a pure function — the v2 datapath reuses
        # the computed candidate (None = denied) until the sender's
        # entry object is replaced, instead of re-running the export
        # pipeline every fixpoint round.
        self._advertised: Dict[Tuple[str, str], Dict[Prefix, Tuple]] = {}

    # -- topology derivation ---------------------------------------------------

    def _index_addresses(self) -> Dict[Ipv4Address, str]:
        owners: Dict[Ipv4Address, str] = {}
        for hostname, config in self._configs.items():
            for interface in config.interfaces.values():
                if interface.address is not None:
                    owners[interface.address] = hostname
        return owners

    def _derive_sessions(self) -> List[BgpSession]:
        """Sessions where both sides declare each other correctly."""
        sessions: List[BgpSession] = []
        seen: Set[Tuple[str, str]] = set()
        for hostname, config in self._configs.items():
            if config.bgp is None:
                continue
            for neighbor in config.bgp.sorted_neighbors():
                remote_hostname = self._address_owner.get(neighbor.ip)
                if remote_hostname is None or remote_hostname == hostname:
                    continue
                remote_config = self._configs[remote_hostname]
                if remote_config.bgp is None:
                    continue
                if neighbor.remote_as != remote_config.bgp.asn:
                    continue
                # The remote must declare a neighbor address owned by us
                # with our AS.
                local_ip = self._find_reverse_address(
                    remote_config, hostname, config.bgp.asn
                )
                if local_ip is None:
                    continue
                key = tuple(sorted((hostname, remote_hostname)))
                if key in seen:
                    continue
                seen.add(key)
                sessions.append(
                    BgpSession(
                        local_router=hostname,
                        local_ip=local_ip,
                        remote_router=remote_hostname,
                        remote_ip=neighbor.ip,
                    )
                )
        return sessions

    def _find_reverse_address(
        self, remote_config: RouterConfig, local_hostname: str, local_asn: int
    ) -> Optional[Ipv4Address]:
        assert remote_config.bgp is not None
        local_config = self._configs[local_hostname]
        local_addresses = {
            interface.address
            for interface in local_config.interfaces.values()
            if interface.address is not None
        }
        for neighbor in remote_config.bgp.sorted_neighbors():
            if neighbor.ip in local_addresses and neighbor.remote_as == local_asn:
                return neighbor.ip
        return None

    # -- public accessors ---------------------------------------------------------

    @property
    def sessions(self) -> List[BgpSession]:
        """Established sessions (one record per bidirectional session)."""
        return list(self._sessions)

    @property
    def iterations(self) -> int:
        return self._iterations

    def rib(self, hostname: str) -> Dict[Prefix, RibEntry]:
        """The post-convergence RIB of a router."""
        if not self._converged:
            self.run()
        return dict(self._ribs[hostname])

    def has_route(self, hostname: str, prefix: Prefix) -> bool:
        return prefix in self.rib(hostname)

    def provenance(self, hostname: str, prefix: Prefix) -> Optional[str]:
        """Hostname of the originator of the installed route, if any."""
        entry = self.rib(hostname).get(prefix)
        return entry.origin_router if entry is not None else None

    # -- simulation -------------------------------------------------------------------

    def run(self) -> int:
        """Propagate to fixpoint; returns the number of iterations."""
        if self._converged:
            return self._iterations
        self._originate()
        directed = [
            session for pair in self._sessions for session in (pair, pair.reversed())
        ]
        for iteration in range(1, MAX_ITERATIONS + 1):
            changed = False
            for session in directed:
                if self._advertise(session):
                    changed = True
            self._iterations = iteration
            if not changed:
                break
        self._converged = True
        return self._iterations

    def run_worklist(
        self,
        dirty: Set[str],
        removed: Dict[str, Set[Prefix]],
    ) -> Optional[int]:
        """Re-converge from partially seeded RIBs along dirty sessions.

        ``dirty`` routers were re-originated with empty learned state;
        ``removed`` maps non-dirty routers to the prefixes whose entries
        were invalidated.  Propagates prefix-filtered advertisements
        until quiescent.  Returns the number of directed-session
        processings, or ``None`` if the worklist exceeded the full
        simulator's budget (the caller then falls back to a full run).
        """
        directed: Dict[Tuple[str, str], BgpSession] = {}
        out_edges: Dict[str, List[Tuple[str, str]]] = {}
        in_edges: Dict[str, List[Tuple[str, str]]] = {}
        for pair in self._sessions:
            for session in (pair, pair.reversed()):
                key = (session.local_router, session.remote_router)
                directed[key] = session
                out_edges.setdefault(session.local_router, []).append(key)
                in_edges.setdefault(session.remote_router, []).append(key)

        pending: "OrderedDict[Tuple[str, str], Optional[Set[Prefix]]]" = (
            OrderedDict()
        )

        def enqueue(key: Tuple[str, str], prefixes: Optional[Set[Prefix]]) -> None:
            if key in pending:
                current = pending[key]
                if current is not None:
                    if prefixes is None:
                        pending[key] = None
                    else:
                        current.update(prefixes)
            else:
                pending[key] = None if prefixes is None else set(prefixes)

        for router in sorted(dirty):
            for key in in_edges.get(router, ()):
                enqueue(key, None)
            for key in out_edges.get(router, ()):
                enqueue(key, None)
        for router in sorted(removed):
            for key in in_edges.get(router, ()):
                enqueue(key, set(removed[router]))

        budget = MAX_ITERATIONS * max(1, len(directed))
        processed = 0
        while pending:
            processed += 1
            if processed > budget:
                return None  # would not have converged; caller re-runs fully
            key, prefixes = pending.popitem(last=False)
            changed = self._advertise(directed[key], prefixes)
            if changed:
                for out in out_edges.get(key[1], ()):
                    enqueue(out, changed)
        self._converged = True
        self._iterations = max(self._iterations, 1)
        return processed

    def _originate(self) -> None:
        for hostname in self._configs:
            self._originate_router(hostname)

    def _originate_router(self, hostname: str) -> None:
        config = self._configs[hostname]
        if config.bgp is None:
            return
        for prefix in config.bgp.networks:
            route = Route(prefix=prefix, protocol=Protocol.BGP)
            self._install(
                hostname,
                RibEntry(route=route, learned_from=None, origin_router=hostname),
            )

    def _advertise(
        self, session: BgpSession, prefixes: Optional[Set[Prefix]] = None
    ) -> Set[Prefix]:
        """Advertise the sender's RIB across one directed session.

        With ``prefixes``, only entries for those prefixes are
        advertised (the incremental engine's targeted refill).  Returns
        the prefixes whose RIB entry changed at the receiver.
        """
        sender = session.local_router
        receiver = session.remote_router
        sender_config = self._configs[sender]
        receiver_config = self._configs[receiver]
        assert sender_config.bgp is not None and receiver_config.bgp is not None
        export_map = self._neighbor_policy(sender_config, session.remote_ip, "export")
        import_map = self._neighbor_policy(receiver_config, session.local_ip, "import")
        # Batched evaluation: bind each policy to its config once per
        # session batch, so the per-entry loop below pays no repeated
        # name resolution.  The toggle keeps the historical per-entry
        # path alive for A/B benchmarking.  Under route model v2 the
        # policies *apply to a shared builder* (no intermediate route);
        # v1 keeps the PolicyResult-returning evaluators.
        v2 = route_model_is_v2()
        if v2:
            if _BATCH_ENABLED:
                export_find = (
                    self._prepared_policy(sender_config, export_map).find_clause
                    if export_map is not None
                    else None
                )
                import_find = (
                    self._prepared_policy(receiver_config, import_map).find_clause
                    if import_map is not None
                    else None
                )
            else:
                export_find = (
                    (lambda route: export_map.find_clause(route, sender_config))
                    if export_map is not None
                    else None
                )
                import_find = (
                    (lambda route: import_map.find_clause(route, receiver_config))
                    if import_map is not None
                    else None
                )
        elif _BATCH_ENABLED:
            export_eval = (
                self._prepared_policy(sender_config, export_map).evaluate
                if export_map is not None
                else None
            )
            import_eval = (
                self._prepared_policy(receiver_config, import_map).evaluate
                if import_map is not None
                else None
            )
        else:
            export_eval = (
                (lambda route: export_map.evaluate(route, sender_config))
                if export_map is not None
                else None
            )
            import_eval = (
                (lambda route: import_map.evaluate(route, receiver_config))
                if import_map is not None
                else None
            )
        sender_asn = sender_config.bgp.asn
        receiver_asn = receiver_config.bgp.asn
        if v2:
            session_cache = self._advertised.get((sender, receiver))
            if session_cache is None:
                session_cache = {}
                self._advertised[(sender, receiver)] = session_cache
        changed: Set[Prefix] = set()
        if prefixes is None:
            entries = list(self._ribs[sender].values())
        else:
            # Targeted refill: look the prefixes up instead of scanning
            # the whole RIB (sorted so propagation order is stable).
            rib = self._ribs[sender]
            entries = [
                rib[prefix]
                for prefix in sorted(prefixes, key=str)
                if prefix in rib
            ]
        if v2:
            # The receiver's RIB and the decision-cache toggle are
            # loop-invariant; with the cache on, the per-(router, prefix)
            # winner is picked by a min() over decision tuples right
            # here — no pairwise _install call per candidate.
            receiver_rib = self._ribs[receiver]
            batch = _DECISION_CACHE
            # Loser pre-screen: when neither session policy can improve
            # a route's decision attributes, the candidate's best
            # possible decision key is computable from the sender's
            # entry alone ((learned, -local_pref, len+1, med, sender,
            # origin) — extra prepends only worsen it).  A candidate
            # whose optimistic key does not beat the incumbent can never
            # install, so the whole export pipeline is skipped for it.
            screen = (
                batch
                and (export_map is None or self._decision_neutral(export_map))
                and (import_map is None or self._decision_neutral(import_map))
            )
            for entry in entries:
                if entry.learned_from == receiver:
                    continue  # do not reflect a route back to its source
                self.evaluations += 1
                prefix = entry.route.prefix
                cached = session_cache.get(prefix)
                if cached is not None and cached[0] is entry:
                    # Same sender entry as last round: the export
                    # pipeline's output (candidate or denial) is reused
                    # verbatim instead of being rebuilt.
                    candidate = cached[1]
                    ROUTES_REUSED.inc()
                    if candidate is None:
                        continue  # denied last time; entry unchanged
                else:
                    if screen:
                        incumbent = receiver_rib.get(prefix)
                        if incumbent is not None:
                            route = entry.route
                            optimistic = (
                                True,
                                -route.local_pref,
                                len(route.as_path.asns) + 1,
                                route.med,
                                sender,
                                entry.origin_router,
                            )
                            if not optimistic < incumbent.decision_key:
                                continue  # cannot beat the incumbent
                    candidate = self._export_candidate(
                        entry,
                        export_find,
                        import_find,
                        sender,
                        sender_asn,
                        receiver_asn,
                        session.local_ip,
                    )
                    session_cache[prefix] = (entry, candidate)
                    if candidate is None:
                        continue
                if batch:
                    incumbent = receiver_rib.get(prefix)
                    if incumbent is None or (
                        incumbent is not candidate
                        and candidate.decision_key < incumbent.decision_key
                    ):
                        receiver_rib[prefix] = candidate
                        changed.add(prefix)
                elif self._install(receiver, candidate):
                    changed.add(prefix)
            return changed
        for entry in entries:
            if entry.learned_from == receiver:
                continue  # do not reflect a route back to its source
            self.evaluations += 1
            advertised = entry.route
            if export_eval is not None:
                try:
                    outcome = export_eval(advertised)
                except PolicyEvaluationError:
                    continue
                if outcome.action is Action.DENY:
                    continue
                advertised = outcome.route
            advertised = advertised.with_as_prepended(sender_asn)
            advertised = advertised.with_next_hop(session.local_ip)
            if advertised.as_path.contains(receiver_asn):
                continue  # AS-loop prevention
            if import_eval is not None:
                try:
                    outcome = import_eval(advertised)
                except PolicyEvaluationError:
                    continue
                if outcome.action is Action.DENY:
                    continue
                advertised = outcome.route
            candidate = RibEntry(
                route=advertised,
                learned_from=sender,
                origin_router=entry.origin_router,
                path=entry.path + (sender,),
            )
            if self._install(receiver, candidate):
                changed.add(candidate.route.prefix)
        return changed

    def _export_candidate(
        self,
        entry: RibEntry,
        export_find,
        import_find,
        sender: str,
        sender_asn: int,
        receiver_asn: int,
        local_ip: Ipv4Address,
    ) -> Optional[RibEntry]:
        """One sender RIB entry through the v2 export pipeline.

        Matching runs against immutable state first (``find_clause``
        never mutates), so a builder is allocated only when a firing
        clause actually carries set actions; the dominant permit-all
        fall-through reduces to one direct interned construction
        (:func:`~repro.netmodel.routebuilder.export_route`).  Either
        way the pipeline allocates one ``Route``, not one per stage.
        Returns the receiver-side candidate, or ``None`` when any stage
        denies (cached by the caller until the sender's entry changes).
        """
        route = entry.route
        # AS paths only grow (export maps can prepend, never strip), so
        # a loop already present in the stored path — or the prepend
        # about to happen — is final.  Export prepends re-check below.
        if receiver_asn == sender_asn or receiver_asn in route.as_path.asns:
            return None
        builder = None
        if export_find is not None:
            try:
                clause = export_find(route)
            except PolicyEvaluationError:
                return None
            if clause is None or clause.action is Action.DENY:
                return None
            if clause.sets:
                builder = RouteBuilder(route)
                clause.apply_sets(builder)
        if builder is None:
            advertised = export_route(route, sender_asn, local_ip)
        else:
            builder.prepend_as(sender_asn)
            builder.set_next_hop(local_ip)
            if builder.path_contains(receiver_asn):
                return None  # AS-loop via an export-map prepend
            advertised = builder.freeze()
        if import_find is not None:
            try:
                clause = import_find(advertised)
            except PolicyEvaluationError:
                return None
            if clause is None or clause.action is Action.DENY:
                return None
            if clause.sets:
                import_builder = RouteBuilder(advertised)
                clause.apply_sets(import_builder)
                advertised = import_builder.freeze()
        return RibEntry._learned(
            advertised, sender, entry.origin_router, entry.path + (sender,)
        )

    def _prepared_policy(self, config: RouterConfig, route_map):
        key = (id(config), route_map.name)
        prepared = self._prepared.get(key)
        if prepared is None:
            prepared = route_map.prepare(config)
            self._prepared[key] = prepared
        return prepared

    def _decision_neutral(self, route_map) -> bool:
        """Whether the map's set chains cannot *improve* a route's
        decision attributes: no ``set local-preference`` and no ``set
        med`` anywhere (prepends only lengthen the AS path, i.e. only
        worsen it).  Licenses the loser pre-screen in ``_advertise``."""
        key = id(route_map)
        cached = self._neutral.get(key)
        if cached is None:
            cached = not any(
                isinstance(set_action, (SetLocalPref, SetMed))
                for clause in route_map.clauses
                for set_action in clause.sets
            )
            self._neutral[key] = cached
        return cached

    def _neighbor_policy(
        self, config: RouterConfig, neighbor_ip: Ipv4Address, direction: str
    ):
        assert config.bgp is not None
        neighbor = config.bgp.get_neighbor(neighbor_ip)
        if neighbor is None:
            return None
        name = (
            neighbor.export_policy if direction == "export" else neighbor.import_policy
        )
        if name is None:
            return None
        return config.get_route_map(name)

    def _install(self, hostname: str, candidate: RibEntry) -> bool:
        """Install if better than the current best; returns True on change.

        The no-op check runs *first*: an identical (or indistinguishable)
        candidate returns False through the same branch whether it ties
        or loses, so incremental re-simulation's dirty tracking sees the
        exact change set a full run would.
        """
        rib = self._ribs[hostname]
        incumbent = rib.get(candidate.route.prefix)
        if incumbent is not None:
            if incumbent is candidate or _same_entry(incumbent, candidate):
                return False
            if not self._better(candidate, incumbent):
                return False
        rib[candidate.route.prefix] = candidate
        return True

    @staticmethod
    def _better(candidate: RibEntry, incumbent: RibEntry) -> bool:
        """Standard BGP decision process (deterministic, *total*
        tie-break).  With the decision cache on (the default) this is a
        single tuple ``<`` over the keys computed at entry construction;
        off, the historical attribute cascade — both end in the same
        ``(learned_from, origin_router)`` tie-break, so the two paths
        order every entry pair identically (the decision-order property
        tests assert it)."""
        if _DECISION_CACHE:
            return candidate.decision_key < incumbent.decision_key
        return _legacy_better(candidate, incumbent)


def rib_snapshots(simulation: BgpSimulation) -> Dict[str, Dict[Prefix, Tuple]]:
    """Comparable per-router RIB snapshots: every route attribute plus
    the provenance path.  This is the equality contract the
    differential tests and benches assert between incremental and
    from-scratch convergence — one definition, shared, so both always
    check the same notion of "identical"."""
    return {
        name: {
            prefix: (_entry_key(entry), entry.path)
            for prefix, entry in simulation.rib(name).items()
        }
        for name in sorted(simulation._configs)
    }


def _legacy_better(candidate: RibEntry, incumbent: RibEntry) -> bool:
    """The pre-cache attribute cascade, kept for the A/B toggle and as
    the oracle the decision-order property tests compare tuples against."""
    candidate_local = candidate.learned_from is None
    if candidate_local != (incumbent.learned_from is None):
        return candidate_local  # locally originated wins
    left, right = candidate.route, incumbent.route
    if left.local_pref != right.local_pref:
        return left.local_pref > right.local_pref
    left_asns, right_asns = left.as_path.asns, right.as_path.asns
    if left_asns is not right_asns and len(left_asns) != len(right_asns):
        return len(left_asns) < len(right_asns)
    if left.med != right.med:
        return left.med < right.med
    if candidate.learned_from != incumbent.learned_from:
        return (candidate.learned_from or "") < (incumbent.learned_from or "")
    if "legacy-tiebreak" in _PLANTED_BUGS:
        # The historical ``"" < ""`` fall-through: a full tie keeps the
        # incumbent, making the winner depend on arrival order.
        return False
    # Total tie-break: two equally-attributed entries from the same
    # neighbor (or both locally originated, where learned_from is None
    # on both sides) are ordered by originator, then by route content —
    # equal-length AS paths through different routers must still order
    # deterministically, never by arrival order.
    if candidate.origin_router != incumbent.origin_router:
        return candidate.origin_router < incumbent.origin_router
    if left_asns != right_asns:
        return left_asns < right_asns
    return candidate.path < incumbent.path


# -- planted regressions (fuzz-harness self-test) ------------------------------
#
# The differential fuzzer is only trustworthy if it can find bugs we
# already understand.  These hidden flags re-introduce a known,
# previously-shipped bug behind a switch the fuzzer's self-tests (and
# the hidden ``repro fuzz --plant`` CLI option) can flip; production
# code never sets them.

_KNOWN_PLANTED_BUGS = frozenset({"legacy-tiebreak"})

_PLANTED_BUGS: Set[str] = set()


def _plant_bug(name: str, enabled: bool = True) -> None:
    """Enable/disable a planted known bug.  ``legacy-tiebreak`` reverts
    the legacy comparator's total ``(learned_from, origin_router)``
    tie-break to the pre-fix arrival-order fall-through."""
    if name not in _KNOWN_PLANTED_BUGS:
        known = ", ".join(sorted(_KNOWN_PLANTED_BUGS))
        raise ValueError(f"unknown planted bug {name!r} (known: {known})")
    if enabled:
        _PLANTED_BUGS.add(name)
    else:
        _PLANTED_BUGS.discard(name)


def _planted_bugs() -> "frozenset[str]":
    return frozenset(_PLANTED_BUGS)


def _same_entry(left: RibEntry, right: RibEntry) -> bool:
    """Whether two entries are indistinguishable (the no-op install
    check).  The cached decision key screens out most mismatches in one
    tuple compare (it covers provenance, local-pref, path length, and
    MED); only the attributes outside the decision process remain."""
    if left.decision_key != right.decision_key:
        return False
    a, b = left.route, right.route
    return (
        (a.as_path is b.as_path or a.as_path.asns == b.as_path.asns)
        and (a.communities is b.communities or a.communities == b.communities)
        and a.next_hop == b.next_hop
        and a.prefix == b.prefix
    )


def _entry_key(entry: RibEntry) -> Tuple:
    # Route attributes are interned (see repro.netmodel.route), so the
    # as-path tuple and community frozenset compare by pointer on the
    # hot same-entry check in _install — no per-comparison string
    # rendering or sorting.
    route = entry.route
    return (
        route.prefix,
        route.as_path.asns,
        route.communities,
        route.med,
        route.local_pref,
        str(route.next_hop),
        entry.learned_from,
        entry.origin_router,
    )


# -- the decision cache --------------------------------------------------------

_DECISION_CACHE = True


def set_decision_cache(enabled: bool) -> None:
    """Enable/disable decision-tuple best-path selection.

    When on (the default), :meth:`BgpSimulation._better` is a single
    ``<`` over the ``decision_key`` tuples cached on each
    :class:`RibEntry`, and ``_advertise`` selects the per-(router,
    prefix) winner with a ``min()`` over those tuples instead of a
    pairwise ``_install`` call per candidate.  Off restores the
    historical attribute-cascade comparator so benchmarks and the
    differential suite can compare the two paths; both use the same
    total ``(learned_from, origin_router)`` tie-break, so RIBs are
    identical either way (mirrors :func:`set_batched_evaluation`)."""
    global _DECISION_CACHE
    _DECISION_CACHE = bool(enabled)


def decision_cache_enabled() -> bool:
    return _DECISION_CACHE


# -- batched policy evaluation -------------------------------------------------

_BATCH_ENABLED = True


def set_batched_evaluation(enabled: bool) -> None:
    """Enable/disable per-session batched route-map evaluation.

    When on (the default), :meth:`BgpSimulation._advertise` binds the
    session's export and import policies to their configs once per
    advertisement batch (see
    :meth:`repro.netmodel.routing_policy.RouteMap.prepare`) instead of
    re-resolving named lists on every RIB entry.  Off restores the
    historical per-entry ``evaluate`` calls so benchmarks can compare
    the two paths; results are identical either way (the batch
    equivalence tests assert it)."""
    global _BATCH_ENABLED
    _BATCH_ENABLED = bool(enabled)


def batched_evaluation_enabled() -> bool:
    return _BATCH_ENABLED


# -- incremental re-simulation -------------------------------------------------

_ENABLED = True

# Registry-backed simulation accounting.  The converge timers double as
# run counters: ``count`` is runs, ``total_s`` is accumulated wall-clock
# (the ``sim_totals`` view below re-exposes the historical key names).
_FULL_CONVERGE = timer("sim.full_converge")
_INCREMENTAL_CONVERGE = timer("sim.incremental_converge")
_FULL_EVALUATIONS = counter("sim.full_evaluations")
_INCREMENTAL_EVALUATIONS = counter("sim.incremental_evaluations")
_REUSED_ENTRIES = counter("sim.reused_entries")
_INVALIDATED_ENTRIES = counter("sim.invalidated_entries")


def set_incremental_simulation(enabled: bool) -> None:
    """Globally enable/disable incremental re-convergence.  When off,
    every :class:`SimulationState` request runs a full simulation, so
    incremental and full code paths can be compared without touching
    call sites (mirrors :func:`repro.symbolic.set_memoization`)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def incremental_simulation_enabled() -> bool:
    return _ENABLED


def reset_sim_stats() -> None:
    for instrument in (
        _FULL_CONVERGE,
        _INCREMENTAL_CONVERGE,
        _FULL_EVALUATIONS,
        _INCREMENTAL_EVALUATIONS,
        _REUSED_ENTRIES,
        _INVALIDATED_ENTRIES,
    ):
        instrument.reset()


def sim_totals() -> Dict[str, float]:
    """Process-wide simulation accounting (full vs incremental runs,
    route evaluations, wall-clock) for campaign reporting."""
    return {
        "full_runs": _FULL_CONVERGE.count,
        "incremental_runs": _INCREMENTAL_CONVERGE.count,
        "full_evaluations": _FULL_EVALUATIONS.value,
        "incremental_evaluations": _INCREMENTAL_EVALUATIONS.value,
        "full_time_s": _FULL_CONVERGE.total_s,
        "incremental_time_s": _INCREMENTAL_CONVERGE.total_s,
        "reused_entries": _REUSED_ENTRIES.value,
        "invalidated_entries": _INVALIDATED_ENTRIES.value,
    }


@dataclass(frozen=True)
class ResimStats:
    """What one :meth:`SimulationState.resimulate` call actually did."""

    mode: str  # "full" or "incremental"
    dirty_routers: int = 0
    invalidated_entries: int = 0
    reused_entries: int = 0
    evaluations: int = 0

    @property
    def incremental(self) -> bool:
        return self.mode == "incremental"


def _canonical_session(session: BgpSession) -> Tuple:
    return tuple(
        sorted(
            (
                (session.local_router, str(session.local_ip)),
                (session.remote_router, str(session.remote_ip)),
            )
        )
    )


class SimulationState:
    """A warm, converged BGP simulation that re-converges incrementally.

    ``converge`` runs a full simulation; ``resimulate`` takes the new
    configs plus the set of routers whose configuration changed and
    re-converges only the affected dependency cone.  The state is
    *reusable* across runs of the same network as long as the caller
    names every changed router; it *invalidates itself* (falls back to
    a full run) when there is no prior state, when the changed set is
    unknown (``None``), when incremental simulation is globally
    disabled, or when the worklist fails to quiesce within the full
    simulator's iteration budget.
    """

    def __init__(self, configs: Optional[Dict[str, RouterConfig]] = None) -> None:
        self._sim: Optional[BgpSimulation] = None
        self.last_stats: Optional[ResimStats] = None
        if configs is not None:
            self.converge(configs)

    @property
    def warm(self) -> bool:
        """True once the state holds a converged simulation."""
        return self._sim is not None

    @property
    def simulation(self) -> BgpSimulation:
        if self._sim is None:
            raise ValueError("SimulationState has no converged simulation yet")
        return self._sim

    @property
    def configs(self) -> Dict[str, RouterConfig]:
        return dict(self.simulation._configs)

    def converge(self, configs: Dict[str, RouterConfig]) -> ResimStats:
        """Full from-scratch convergence; replaces any prior state."""
        started = time.perf_counter()
        with span("converge", mode="full", routers=len(configs)):
            sim = BgpSimulation(configs)
            sim.run()
        self._sim = sim
        _FULL_CONVERGE.observe(time.perf_counter() - started)
        _FULL_EVALUATIONS.inc(sim.evaluations)
        self.last_stats = ResimStats(mode="full", evaluations=sim.evaluations)
        return self.last_stats

    def resimulate(
        self,
        configs: Dict[str, RouterConfig],
        changed_routers: Optional[Iterable[str]] = None,
    ) -> ResimStats:
        """Re-converge after ``changed_routers``' configs changed.

        Every router whose configuration differs from the previous
        convergence MUST be named (unchanged routers may be named too —
        that only costs time).  ``None`` means "unknown" and forces a
        full run.
        """
        if (
            self._sim is None
            or changed_routers is None
            or not incremental_simulation_enabled()
        ):
            return self.converge(configs)
        started = time.perf_counter()
        with span("converge", mode="incremental", routers=len(configs)):
            return self._resimulate_incremental(configs, changed_routers, started)

    def _resimulate_incremental(
        self,
        configs: Dict[str, RouterConfig],
        changed_routers: Iterable[str],
        started: float,
    ) -> ResimStats:
        old = self._sim
        new = BgpSimulation(configs)
        dirty = set(changed_routers)
        # Routers appearing or disappearing are changed by definition.
        dirty |= set(old._configs) ^ set(new._configs)
        # A session that appeared or disappeared dirties both endpoints
        # (covers address-ownership shifts between other routers).
        old_sessions = {_canonical_session(s) for s in old._sessions}
        new_sessions = {_canonical_session(s) for s in new._sessions}
        for canon in old_sessions ^ new_sessions:
            dirty.update(router for router, _ip in canon)

        invalidated = 0
        reused = 0
        removed: Dict[str, Set[Prefix]] = {}
        for hostname in new._configs:
            if hostname in dirty:
                continue
            target = new._ribs[hostname]
            for prefix, entry in old._ribs.get(hostname, {}).items():
                if dirty.isdisjoint(entry.path):
                    target[prefix] = entry
                    reused += 1
                else:
                    removed.setdefault(hostname, set()).add(prefix)
                    invalidated += 1
        live_dirty = dirty & set(new._configs)
        for hostname in live_dirty:
            new._originate_router(hostname)
        if new.run_worklist(live_dirty, removed) is None:
            return self.converge(configs)
        self._sim = new
        _INCREMENTAL_CONVERGE.observe(time.perf_counter() - started)
        _INCREMENTAL_EVALUATIONS.inc(new.evaluations)
        _REUSED_ENTRIES.inc(reused)
        _INVALIDATED_ENTRIES.inc(invalidated)
        self.last_stats = ResimStats(
            mode="incremental",
            dirty_routers=len(dirty),
            invalidated_entries=invalidated,
            reused_entries=reused,
            evaluations=new.evaluations,
        )
        return self.last_stats
