"""BGP control-plane simulation over a snapshot of router configs.

This is the "simulate the entire BGP communication using Batfish as a
final step" of §4.1: after the per-router local policies verify, the
whole network is simulated to confirm the *global* no-transit policy.

The simulator:

* derives eBGP sessions from mutual neighbor declarations (A declares a
  neighbor address owned by B with B's AS, and vice versa);
* originates a router's ``network`` statements as BGP routes;
* propagates routes to fixpoint, applying the advertiser's export
  route-map, AS-path prepending, AS-loop rejection, and the receiver's
  import route-map;
* runs standard best-path selection (local-pref, AS-path length, MED,
  tie-break on advertiser name for determinism).

Communities always propagate (Junos default); the experiments' policies
tag and filter within a single router, so Cisco's ``send-community``
subtlety does not change any experiment outcome — the flag is still
parsed and carried in the IR for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..netmodel.device import RouterConfig
from ..netmodel.ip import Ipv4Address, Prefix
from ..netmodel.route import Protocol, Route
from ..netmodel.routing_policy import Action, PolicyEvaluationError
from ..netmodel.aspath import AsPath

__all__ = ["BgpSession", "BgpSimulation", "RibEntry"]

MAX_ITERATIONS = 64


@dataclass(frozen=True)
class BgpSession:
    """An established (bidirectional) eBGP session between two routers."""

    local_router: str
    local_ip: Ipv4Address
    remote_router: str
    remote_ip: Ipv4Address

    def reversed(self) -> "BgpSession":
        return BgpSession(
            local_router=self.remote_router,
            local_ip=self.remote_ip,
            remote_router=self.local_router,
            remote_ip=self.local_ip,
        )


@dataclass(frozen=True)
class RibEntry:
    """A route installed in a router's BGP RIB, with provenance."""

    route: Route
    learned_from: Optional[str]  # hostname, or None for locally originated
    origin_router: str  # hostname of the originator

    @property
    def is_local(self) -> bool:
        return self.learned_from is None


class BgpSimulation:
    """Fixpoint BGP route propagation over a set of configs."""

    def __init__(self, configs: Dict[str, RouterConfig]) -> None:
        """``configs`` maps hostname to parsed config."""
        self._configs = dict(configs)
        self._address_owner = self._index_addresses()
        self._sessions = self._derive_sessions()
        self._ribs: Dict[str, Dict[Prefix, RibEntry]] = {
            hostname: {} for hostname in self._configs
        }
        self._converged = False
        self._iterations = 0

    # -- topology derivation ---------------------------------------------------

    def _index_addresses(self) -> Dict[Ipv4Address, str]:
        owners: Dict[Ipv4Address, str] = {}
        for hostname, config in self._configs.items():
            for interface in config.interfaces.values():
                if interface.address is not None:
                    owners[interface.address] = hostname
        return owners

    def _derive_sessions(self) -> List[BgpSession]:
        """Sessions where both sides declare each other correctly."""
        sessions: List[BgpSession] = []
        seen: Set[Tuple[str, str]] = set()
        for hostname, config in self._configs.items():
            if config.bgp is None:
                continue
            for neighbor in config.bgp.sorted_neighbors():
                remote_hostname = self._address_owner.get(neighbor.ip)
                if remote_hostname is None or remote_hostname == hostname:
                    continue
                remote_config = self._configs[remote_hostname]
                if remote_config.bgp is None:
                    continue
                if neighbor.remote_as != remote_config.bgp.asn:
                    continue
                # The remote must declare a neighbor address owned by us
                # with our AS.
                local_ip = self._find_reverse_address(
                    remote_config, hostname, config.bgp.asn
                )
                if local_ip is None:
                    continue
                key = tuple(sorted((hostname, remote_hostname)))
                if key in seen:
                    continue
                seen.add(key)
                sessions.append(
                    BgpSession(
                        local_router=hostname,
                        local_ip=local_ip,
                        remote_router=remote_hostname,
                        remote_ip=neighbor.ip,
                    )
                )
        return sessions

    def _find_reverse_address(
        self, remote_config: RouterConfig, local_hostname: str, local_asn: int
    ) -> Optional[Ipv4Address]:
        assert remote_config.bgp is not None
        local_config = self._configs[local_hostname]
        local_addresses = {
            interface.address
            for interface in local_config.interfaces.values()
            if interface.address is not None
        }
        for neighbor in remote_config.bgp.sorted_neighbors():
            if neighbor.ip in local_addresses and neighbor.remote_as == local_asn:
                return neighbor.ip
        return None

    # -- public accessors ---------------------------------------------------------

    @property
    def sessions(self) -> List[BgpSession]:
        """Established sessions (one record per bidirectional session)."""
        return list(self._sessions)

    @property
    def iterations(self) -> int:
        return self._iterations

    def rib(self, hostname: str) -> Dict[Prefix, RibEntry]:
        """The post-convergence RIB of a router."""
        if not self._converged:
            self.run()
        return dict(self._ribs[hostname])

    def has_route(self, hostname: str, prefix: Prefix) -> bool:
        return prefix in self.rib(hostname)

    def provenance(self, hostname: str, prefix: Prefix) -> Optional[str]:
        """Hostname of the originator of the installed route, if any."""
        entry = self.rib(hostname).get(prefix)
        return entry.origin_router if entry is not None else None

    # -- simulation -------------------------------------------------------------------

    def run(self) -> int:
        """Propagate to fixpoint; returns the number of iterations."""
        if self._converged:
            return self._iterations
        self._originate()
        directed = [
            session for pair in self._sessions for session in (pair, pair.reversed())
        ]
        for iteration in range(1, MAX_ITERATIONS + 1):
            changed = False
            for session in directed:
                if self._advertise(session):
                    changed = True
            self._iterations = iteration
            if not changed:
                break
        self._converged = True
        return self._iterations

    def _originate(self) -> None:
        for hostname, config in self._configs.items():
            if config.bgp is None:
                continue
            for prefix in config.bgp.networks:
                route = Route(prefix=prefix, protocol=Protocol.BGP)
                self._install(
                    hostname,
                    RibEntry(route=route, learned_from=None, origin_router=hostname),
                )

    def _advertise(self, session: BgpSession) -> bool:
        """Advertise the sender's RIB across one directed session."""
        sender = session.local_router
        receiver = session.remote_router
        sender_config = self._configs[sender]
        receiver_config = self._configs[receiver]
        assert sender_config.bgp is not None and receiver_config.bgp is not None
        export_map = self._neighbor_policy(sender_config, session.remote_ip, "export")
        import_map = self._neighbor_policy(receiver_config, session.local_ip, "import")
        changed = False
        for entry in list(self._ribs[sender].values()):
            if entry.learned_from == receiver:
                continue  # do not reflect a route back to its source
            advertised = entry.route
            if export_map is not None:
                try:
                    outcome = export_map.evaluate(advertised, sender_config)
                except PolicyEvaluationError:
                    continue
                if outcome.action is Action.DENY:
                    continue
                advertised = outcome.route
            advertised = advertised.with_as_prepended(sender_config.bgp.asn)
            advertised = advertised.with_next_hop(session.local_ip)
            if advertised.as_path.contains(receiver_config.bgp.asn):
                continue  # AS-loop prevention
            if import_map is not None:
                try:
                    outcome = import_map.evaluate(advertised, receiver_config)
                except PolicyEvaluationError:
                    continue
                if outcome.action is Action.DENY:
                    continue
                advertised = outcome.route
            candidate = RibEntry(
                route=advertised,
                learned_from=sender,
                origin_router=entry.origin_router,
            )
            if self._install(receiver, candidate):
                changed = True
        return changed

    def _neighbor_policy(
        self, config: RouterConfig, neighbor_ip: Ipv4Address, direction: str
    ):
        assert config.bgp is not None
        neighbor = config.bgp.get_neighbor(neighbor_ip)
        if neighbor is None:
            return None
        name = (
            neighbor.export_policy if direction == "export" else neighbor.import_policy
        )
        if name is None:
            return None
        return config.get_route_map(name)

    def _install(self, hostname: str, candidate: RibEntry) -> bool:
        """Install if better than the current best; returns True on change."""
        rib = self._ribs[hostname]
        incumbent = rib.get(candidate.route.prefix)
        if incumbent is None or self._better(candidate, incumbent):
            if incumbent is not None and _entry_key(incumbent) == _entry_key(candidate):
                return False
            rib[candidate.route.prefix] = candidate
            return True
        return False

    @staticmethod
    def _better(candidate: RibEntry, incumbent: RibEntry) -> bool:
        """Standard BGP decision process (deterministic tie-break)."""
        if candidate.is_local != incumbent.is_local:
            return candidate.is_local  # locally originated wins
        left, right = candidate.route, incumbent.route
        if left.local_pref != right.local_pref:
            return left.local_pref > right.local_pref
        if len(left.as_path) != len(right.as_path):
            return len(left.as_path) < len(right.as_path)
        if left.med != right.med:
            return left.med < right.med
        return (candidate.learned_from or "") < (incumbent.learned_from or "")


def _entry_key(entry: RibEntry) -> Tuple:
    route = entry.route
    return (
        route.prefix,
        route.as_path.asns,
        tuple(sorted(str(c) for c in route.communities)),
        route.med,
        route.local_pref,
        str(route.next_hop),
        entry.learned_from,
        entry.origin_router,
    )
