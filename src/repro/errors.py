"""The unified verification-error taxonomy of COSYNTH.

§3.1 distinguishes four error classes for translation (syntax errors,
structural mismatches, attribute differences, policy behavior
differences) and §4.1 three for synthesis (syntax, topology, semantic).
Every verifier in this repository reports through one shape — a
:class:`Finding` with an :class:`ErrorCategory` — which is what the
humanizer consumes and what the simulated LLM's fault model is indexed
by.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ErrorCategory", "Finding"]


class ErrorCategory(enum.Enum):
    """Which verifier (and prompt formula) an error belongs to."""

    SYNTAX = "syntax"
    STRUCTURAL = "structural"
    ATTRIBUTE = "attribute"
    POLICY = "policy"
    TOPOLOGY = "topology"
    SEMANTIC = "semantic"

    @property
    def verifier(self) -> str:
        """The verifier responsible for this category."""
        return {
            ErrorCategory.SYNTAX: "batfish-parse",
            ErrorCategory.STRUCTURAL: "campion",
            ErrorCategory.ATTRIBUTE: "campion",
            ErrorCategory.POLICY: "campion",
            ErrorCategory.TOPOLOGY: "topology-verifier",
            ErrorCategory.SEMANTIC: "batfish-search-route-policies",
        }[self]


@dataclass(frozen=True)
class Finding:
    """One verification error, normalized across all verifiers.

    ``detail`` is the native finding object (ParseWarning,
    StructuralMismatch, TopologyIssue, InvariantViolation, ...), kept for
    programmatic access; ``message`` is its rendered description, the
    raw material of the humanizer.
    """

    category: ErrorCategory
    message: str
    router: str = ""
    detail: object = None

    def describe(self) -> str:
        scope = f"[{self.router}] " if self.router else ""
        return f"{scope}{self.category.value}: {self.message}"
