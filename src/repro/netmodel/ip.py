"""IPv4 addressing primitives used throughout the vendor-neutral IR.

The reproduction deliberately implements addresses and prefixes from
scratch (rather than thinly wrapping :mod:`ipaddress`) so that the
symbolic analysis layer can manipulate raw integer forms directly and so
that error messages can mirror router-style notation exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

__all__ = [
    "AddressError",
    "Ipv4Address",
    "Prefix",
    "PrefixRange",
]

_OCTET_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

MAX_PREFIX_LENGTH = 32


class AddressError(ValueError):
    """Raised when an address or prefix string cannot be parsed."""


def _mask(length: int) -> int:
    """Return the 32-bit network mask integer for ``length`` bits."""
    if length == 0:
        return 0
    return ((1 << length) - 1) << (32 - length)


@dataclass(frozen=True, order=True)
class Ipv4Address:
    """A single IPv4 address stored as a 32-bit integer.

    >>> Ipv4Address.parse("10.0.0.1").value
    167772161
    >>> str(Ipv4Address.parse("10.0.0.1"))
    '10.0.0.1'
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise AddressError(f"address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        """Parse dotted-quad notation, raising :class:`AddressError`."""
        match = _OCTET_RE.match(text.strip())
        if match is None:
            raise AddressError(f"invalid IPv4 address: {text!r}")
        octets = [int(group) for group in match.groups()]
        if any(octet > 255 for octet in octets):
            raise AddressError(f"octet out of range in {text!r}")
        value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        return cls(value)

    def __str__(self) -> str:
        return ".".join(
            str((self.value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
        )


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix: a network address and a prefix length.

    The network address is canonicalized (host bits cleared) at
    construction so equality is structural.

    >>> str(Prefix.parse("1.2.3.4/24"))
    '1.2.3.0/24'
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= MAX_PREFIX_LENGTH:
            raise AddressError(f"invalid prefix length: {self.length}")
        canonical = self.network & _mask(self.length)
        if canonical != self.network:
            object.__setattr__(self, "network", canonical)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        text = text.strip()
        if "/" not in text:
            raise AddressError(f"prefix missing length: {text!r}")
        addr_part, _, len_part = text.partition("/")
        address = Ipv4Address.parse(addr_part)
        try:
            length = int(len_part)
        except ValueError as exc:
            raise AddressError(f"invalid prefix length in {text!r}") from exc
        if not 0 <= length <= MAX_PREFIX_LENGTH:
            raise AddressError(f"prefix length out of range in {text!r}")
        return cls(address.value & _mask(length), length)

    @classmethod
    def from_address_mask(cls, address: str, mask: str) -> "Prefix":
        """Build a prefix from an address and a dotted-quad subnet mask.

        Cisco interface stanzas use ``ip address 10.0.0.1 255.255.255.0``.
        """
        addr = Ipv4Address.parse(address)
        mask_value = Ipv4Address.parse(mask).value
        length = bin(mask_value).count("1")
        if _mask(length) != mask_value:
            raise AddressError(f"non-contiguous mask: {mask!r}")
        return cls(addr.value & mask_value, length)

    @property
    def address(self) -> Ipv4Address:
        """The network address as an :class:`Ipv4Address`."""
        return Ipv4Address(self.network)

    @property
    def first_value(self) -> int:
        """Lowest address integer covered by this prefix."""
        return self.network

    @property
    def last_value(self) -> int:
        """Highest address integer covered by this prefix."""
        return self.network | (~_mask(self.length) & 0xFFFFFFFF)

    def mask_string(self) -> str:
        """The subnet mask in dotted-quad form (Cisco style)."""
        return str(Ipv4Address(_mask(self.length)))

    def wildcard_string(self) -> str:
        """The inverse (wildcard) mask in dotted-quad form."""
        return str(Ipv4Address(~_mask(self.length) & 0xFFFFFFFF))

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.network & _mask(self.length)) == self.network

    def contains_address(self, address: Ipv4Address) -> bool:
        """True if ``address`` falls inside this prefix."""
        return (address.value & _mask(self.length)) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Yield all sub-prefixes of the given (longer) length."""
        if length < self.length:
            raise AddressError("subprefix length must not be shorter")
        step = 1 << (32 - length)
        for network in range(self.first_value, self.last_value + 1, step):
            yield Prefix(network, length)

    def __str__(self) -> str:
        return f"{self.address}/{self.length}"


@dataclass(frozen=True, order=True)
class PrefixRange:
    """A prefix plus a permitted range of more-specific lengths.

    Models Cisco ``ip prefix-list ... permit 1.2.3.0/24 ge 24 le 32`` and
    Junos ``route-filter 1.2.3.0/24 prefix-length-range /24-/32``: a route's
    prefix matches if it falls under :attr:`prefix` and its length lies in
    ``[low, high]``.
    """

    prefix: Prefix
    low: int
    high: int

    def __post_init__(self) -> None:
        if not self.prefix.length <= self.low <= self.high <= MAX_PREFIX_LENGTH:
            raise AddressError(
                f"invalid length range {self.low}-{self.high} "
                f"for {self.prefix}"
            )

    @classmethod
    def exact(cls, prefix: Prefix) -> "PrefixRange":
        """A range matching exactly one prefix."""
        return cls(prefix, prefix.length, prefix.length)

    @classmethod
    def at_least(cls, prefix: Prefix, low: int) -> "PrefixRange":
        """Cisco ``ge low`` with no ``le``: lengths ``low..32``."""
        return cls(prefix, low, MAX_PREFIX_LENGTH)

    @classmethod
    def orlonger(cls, prefix: Prefix) -> "PrefixRange":
        """Junos ``orlonger``: the prefix and everything beneath it."""
        return cls(prefix, prefix.length, MAX_PREFIX_LENGTH)

    def matches(self, candidate: Prefix) -> bool:
        """True if ``candidate`` is covered with a length in range."""
        return (
            self.prefix.contains(candidate)
            and self.low <= candidate.length <= self.high
        )

    def is_exact(self) -> bool:
        """True if only the prefix itself can match."""
        return self.low == self.high == self.prefix.length

    def intersect(self, other: "PrefixRange") -> "PrefixRange | None":
        """The range matching exactly the prefixes both ranges match."""
        if self.prefix.contains(other.prefix):
            base = other.prefix
        elif other.prefix.contains(self.prefix):
            base = self.prefix
        else:
            return None
        low = max(self.low, other.low, base.length)
        high = min(self.high, other.high)
        if low > high:
            return None
        return PrefixRange(base, low, high)

    def example(self) -> Prefix:
        """A concrete prefix matched by this range (for counterexamples)."""
        return Prefix(self.prefix.network, self.low)

    def subtract(self, other: "PrefixRange") -> List["PrefixRange"]:
        """Ranges matching what ``self`` matches but ``other`` does not.

        The result is a disjoint list.  Used by the symbolic engine to
        compute policy-behaviour differences.
        """
        common = self.intersect(other)
        if common is None:
            return [self]
        pieces: List[PrefixRange] = []
        # Length-band leftovers over the same base as ``self``.
        if self.low < common.low:
            pieces.append(PrefixRange(self.prefix, self.low, common.low - 1))
        if common.high < self.high:
            pieces.append(PrefixRange(self.prefix, common.high + 1, self.high))
        # Address-space leftovers: parts of self's cone outside other's cone.
        if other.prefix.length > self.prefix.length and self.prefix.contains(
            other.prefix
        ):
            low = max(self.low, common.low)
            high = min(self.high, common.high)
            if low <= high:
                for sibling in _cone_complement(self.prefix, other.prefix):
                    band_low = max(low, sibling.length)
                    if band_low <= high:
                        pieces.append(PrefixRange(sibling, band_low, high))
        return pieces

    def __str__(self) -> str:
        if self.is_exact():
            return str(self.prefix)
        return f"{self.prefix} ge {self.low} le {self.high}"


def _cone_complement(outer: Prefix, inner: Prefix) -> List[Prefix]:
    """Prefixes covering ``outer`` minus ``inner``.

    Standard binary-trie walk: at each level from ``outer`` down to
    ``inner``, emit the sibling of the branch taken.
    """
    if not outer.contains(inner):
        raise AddressError(f"{inner} not inside {outer}")
    siblings: List[Prefix] = []
    for length in range(outer.length + 1, inner.length + 1):
        branch_bit = 1 << (32 - length)
        taken = inner.network & _mask(length)
        siblings.append(Prefix(taken ^ branch_bit, length))
    return siblings


def summarize_ranges(ranges: List[PrefixRange]) -> str:
    """Human-readable, comma-separated rendering of a range list."""
    return ", ".join(str(item) for item in sorted(ranges))
