"""Interface model shared by both vendors.

Interfaces carry the attributes the experiments verify: an address, an
OSPF cost, and an OSPF passive flag (the two attribute-difference rows of
Table 2), plus the physical naming needed by the topology verifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .ip import Ipv4Address, Prefix

__all__ = ["Interface"]


@dataclass
class Interface:
    """A router interface.

    ``address`` is the interface's own address; ``prefix`` the connected
    subnet.  ``ospf_cost`` of ``None`` means the vendor default (the
    Table 2 OSPF-cost row is a translated ``None`` vs explicit 0
    mismatch).
    """

    name: str
    address: Optional[Ipv4Address] = None
    prefix: Optional[Prefix] = None
    description: str = ""
    ospf_cost: Optional[int] = None
    ospf_passive: bool = False
    ospf_area: Optional[int] = None
    shutdown: bool = False
    unit: int = 0

    @classmethod
    def with_address(cls, name: str, cidr: str, **kwargs: object) -> "Interface":
        """Build from ``a.b.c.d/len`` where the address keeps host bits.

        >>> iface = Interface.with_address("eth0/1", "2.0.0.1/24")
        >>> str(iface.address), str(iface.prefix)
        ('2.0.0.1', '2.0.0.0/24')
        """
        addr_part, _, len_part = cidr.partition("/")
        address = Ipv4Address.parse(addr_part)
        prefix = Prefix.parse(f"{addr_part}/{len_part}")
        return cls(name=name, address=address, prefix=prefix, **kwargs)  # type: ignore[arg-type]

    @property
    def connected_prefix(self) -> Optional[Prefix]:
        """The subnet this interface attaches to (alias for ``prefix``)."""
        return self.prefix

    def cidr(self) -> str:
        """Render ``address/length`` or raise if unnumbered."""
        if self.address is None or self.prefix is None:
            raise ValueError(f"interface {self.name} has no address")
        return f"{self.address}/{self.prefix.length}"

    def is_loopback(self) -> bool:
        """True for loopback interfaces on either vendor naming scheme."""
        lowered = self.name.lower()
        return lowered.startswith("loopback") or lowered.startswith("lo")
