"""Prefix lists with ``ge``/``le`` length modifiers.

The Cisco ``ge 24`` prefix-list modifier is one of the paper's star
witnesses (§3.2, "BGP prefix list issues"): it has no direct Junos
equivalent, GPT-4 tends to drop it, and the invalid
``1.2.3.0/24-32`` syntax it invents while fixing the drop is Table 1's
syntax-error example.  The IR therefore models length ranges precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .ip import Prefix, PrefixRange

__all__ = ["PrefixList", "PrefixListEntry"]


@dataclass(frozen=True)
class PrefixListEntry:
    """One sequenced permit/deny line of a prefix list."""

    seq: int
    action: str
    range: PrefixRange

    def matches(self, prefix: Prefix) -> bool:
        return self.range.matches(prefix)

    def render_cisco(self, list_name: str) -> str:
        """Render back to IOS syntax (used by the config generator)."""
        parts = [
            f"ip prefix-list {list_name} seq {self.seq}",
            self.action,
            str(self.range.prefix),
        ]
        exact = self.range.is_exact()
        if not exact:
            if self.range.low != self.range.prefix.length:
                parts.append(f"ge {self.range.low}")
            if self.range.high != 32:
                parts.append(f"le {self.range.high}")
            elif self.range.low == self.range.prefix.length:
                # ``le 32`` with default low still needs rendering.
                parts.append("le 32")
        return " ".join(parts)


@dataclass
class PrefixList:
    """A named, ordered prefix list (first match wins, default deny)."""

    name: str
    entries: List[PrefixListEntry] = field(default_factory=list)

    def add(
        self,
        action: str,
        prefix_range: PrefixRange,
        seq: Optional[int] = None,
    ) -> PrefixListEntry:
        """Append an entry, auto-sequencing by fives like IOS does."""
        if seq is None:
            seq = (self.entries[-1].seq + 5) if self.entries else 5
        entry = PrefixListEntry(seq, action, prefix_range)
        self.entries.append(entry)
        self.entries.sort(key=lambda item: item.seq)
        return entry

    def permits(self, prefix: Prefix) -> bool:
        """Evaluate the list against a concrete prefix."""
        for entry in self.entries:
            if entry.matches(prefix):
                return entry.action == "permit"
        return False

    def permitted_ranges(self) -> List[PrefixRange]:
        """The space of prefixes this list permits, as disjoint ranges.

        Entries are processed in order; a permit entry contributes the
        part of its range not shadowed by earlier deny entries.
        """
        permitted: List[PrefixRange] = []
        denied: List[PrefixRange] = []
        for entry in self.entries:
            if entry.action == "permit":
                remaining = [entry.range]
                for deny_range in denied:
                    remaining = [
                        piece
                        for item in remaining
                        for piece in item.subtract(deny_range)
                    ]
                permitted.extend(remaining)
            else:
                denied.append(entry.range)
        return permitted
