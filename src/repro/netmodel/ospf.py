"""OSPF process model.

OSPF matters to the translation use case because link costs and passive
interfaces are Table 2's two attribute-difference rows.  The model keeps
the per-interface attributes on :class:`~repro.netmodel.interfaces.
Interface` and the process-level structure here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ip import Ipv4Address, Prefix

__all__ = ["OspfNetworkStatement", "OspfProcess"]


@dataclass(frozen=True)
class OspfNetworkStatement:
    """A Cisco ``network <addr> <wildcard> area <n>`` statement."""

    prefix: Prefix
    area: int


@dataclass
class OspfProcess:
    """The ``router ospf <id>`` / ``protocols ospf`` block."""

    process_id: int = 1
    router_id: Optional[Ipv4Address] = None
    networks: List[OspfNetworkStatement] = field(default_factory=list)
    passive_interfaces: List[str] = field(default_factory=list)
    reference_bandwidth: Optional[int] = None
    # Junos attaches interfaces to areas explicitly.
    area_interfaces: Dict[int, List[str]] = field(default_factory=dict)

    def add_network(self, prefix: Prefix, area: int = 0) -> None:
        statement = OspfNetworkStatement(prefix, area)
        if statement not in self.networks:
            self.networks.append(statement)

    def add_area_interface(self, area: int, interface_name: str) -> None:
        members = self.area_interfaces.setdefault(area, [])
        if interface_name not in members:
            members.append(interface_name)

    def set_passive(self, interface_name: str) -> None:
        if interface_name not in self.passive_interfaces:
            self.passive_interfaces.append(interface_name)

    def is_passive(self, interface_name: str) -> bool:
        return interface_name in self.passive_interfaces

    def covers(self, prefix: Prefix) -> Optional[int]:
        """The area whose network statement covers ``prefix``, if any."""
        for statement in self.networks:
            if statement.prefix.contains(prefix):
                return statement.area
        return None

    def interface_areas(self) -> List[Tuple[str, int]]:
        """Flattened (interface, area) pairs from the Junos-style table."""
        pairs: List[Tuple[str, int]] = []
        for area, names in sorted(self.area_interfaces.items()):
            for name in names:
                pairs.append((name, area))
        return pairs
