"""Route announcements: the values that route policies transform.

A :class:`Route` models a BGP route advertisement as seen by a route map:
a prefix plus the attributes the paper's experiments manipulate (MED,
local preference, communities, AS path, origin protocol).  Routes are
immutable; policy evaluation returns transformed copies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional

from .aspath import AsPath
from .communities import Community
from .ip import Ipv4Address, Prefix

__all__ = ["Origin", "Protocol", "Route"]


class Origin(enum.Enum):
    """BGP origin attribute."""

    IGP = "igp"
    EGP = "egp"
    INCOMPLETE = "incomplete"


class Protocol(enum.Enum):
    """The protocol a route was learned from.

    ``match protocol``/``from bgp`` conditions in redistribution policies
    depend on this; the paper's redistribution bug (§3.2) is exactly a
    missing ``from bgp`` condition.
    """

    BGP = "bgp"
    OSPF = "ospf"
    CONNECTED = "connected"
    STATIC = "static"
    AGGREGATE = "aggregate"


DEFAULT_LOCAL_PREF = 100


@dataclass(frozen=True)
class Route:
    """An immutable route advertisement.

    >>> route = Route(prefix=Prefix.parse("1.2.3.0/24"))
    >>> route.with_med(50).med
    50
    """

    prefix: Prefix
    as_path: AsPath = field(default_factory=AsPath)
    communities: FrozenSet[Community] = frozenset()
    med: int = 0
    local_pref: int = DEFAULT_LOCAL_PREF
    origin: Origin = Origin.IGP
    protocol: Protocol = Protocol.BGP
    next_hop: Optional[Ipv4Address] = None

    def with_community_added(self, community: Community) -> "Route":
        """Additive community set (Cisco ``set community X additive``)."""
        return replace(self, communities=self.communities | {community})

    def with_communities_replaced(self, community: Community) -> "Route":
        """Non-additive set: replaces every existing community.

        This is the behaviour the paper's IIP exists to avoid (§4.2,
        "Adding Communities").
        """
        return replace(self, communities=frozenset({community}))

    def with_med(self, med: int) -> "Route":
        return replace(self, med=med)

    def with_local_pref(self, local_pref: int) -> "Route":
        return replace(self, local_pref=local_pref)

    def with_next_hop(self, next_hop: Ipv4Address) -> "Route":
        return replace(self, next_hop=next_hop)

    def with_as_prepended(self, asn: int, count: int = 1) -> "Route":
        return replace(self, as_path=self.as_path.prepend(asn, count))

    def with_protocol(self, protocol: Protocol) -> "Route":
        return replace(self, protocol=protocol)

    def describe(self) -> str:
        """One-line rendering used in humanized counterexamples."""
        communities = (
            "{" + ", ".join(sorted(str(c) for c in self.communities)) + "}"
            if self.communities
            else "{}"
        )
        return (
            f"prefix {self.prefix}, as-path [{self.as_path}], "
            f"communities {communities}, med {self.med}, "
            f"local-pref {self.local_pref}"
        )
