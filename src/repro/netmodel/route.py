"""Route announcements: the values that route policies transform.

A :class:`Route` models a BGP route advertisement as seen by a route map:
a prefix plus the attributes the paper's experiments manipulate (MED,
local preference, communities, AS path, origin protocol).  Routes are
immutable; policy evaluation returns transformed copies.

Route datapath v2
-----------------

The original ``Route`` was a frozen dataclass whose seven ``with_*``
methods each ran ``dataclasses.replace`` — on large-mesh converges that
attribute copying was ~45% of the wall clock.  The redesigned datapath
keeps the same value semantics but changes the machinery:

* ``Route`` is a ``__slots__`` value type whose :class:`~repro.netmodel.
  aspath.AsPath` and community set are *interned* (one canonical
  instance per distinct value, see ``AsPath.of`` and
  :func:`~repro.netmodel.communities.intern_communities`), so equality
  and hashing on the hot comparisons are pointer-cheap and memo keys
  stay canonical;
* transformation happens through a mutating
  :class:`~repro.netmodel.routebuilder.RouteBuilder` that policy
  evaluation drives *transactionally*: a clause chain (or a whole
  session export in ``bgpsim._advertise``) accumulates every change
  into one builder and ``freeze()``-es exactly once, allocating one
  ``Route`` where the v1 path allocated one per attribute;
* the historical ``with_*`` methods survive as thin deprecated shims
  over the builder, and :func:`set_route_model` keeps the piecemeal v1
  datapath alive for A/B benchmarking (results are identical either
  way — the differential route-model tests assert it).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Optional

from ..obs import counter
from .aspath import AsPath, EMPTY_AS_PATH
from .communities import Community, EMPTY_COMMUNITIES, intern_communities
from .ip import Ipv4Address, Prefix

__all__ = [
    "Origin",
    "Protocol",
    "ROUTES_BUILT",
    "ROUTES_REUSED",
    "Route",
    "reset_route_stats",
    "route_model",
    "route_totals",
    "set_route_model",
]


class Origin(enum.Enum):
    """BGP origin attribute."""

    IGP = "igp"
    EGP = "egp"
    INCOMPLETE = "incomplete"


class Protocol(enum.Enum):
    """The protocol a route was learned from.

    ``match protocol``/``from bgp`` conditions in redistribution policies
    depend on this; the paper's redistribution bug (§3.2) is exactly a
    missing ``from bgp`` condition.
    """

    BGP = "bgp"
    OSPF = "ospf"
    CONNECTED = "connected"
    STATIC = "static"
    AGGREGATE = "aggregate"


DEFAULT_LOCAL_PREF = 100


# -- the datapath A/B toggle ---------------------------------------------------

_ROUTE_MODEL = "v2"

#: Route allocations through RouteBuilder.freeze.
ROUTES_BUILT = counter("route.routes_built")
#: Routes reused instead of rebuilt: no-change freeze() calls plus
#: bgpsim's per-session candidate reuses across fixpoint rounds.
ROUTES_REUSED = counter("route.routes_reused")


def set_route_model(model: str) -> None:
    """Select the route-transformation datapath: ``"v1"`` or ``"v2"``.

    v2 (the default) drives policy evaluation and session export through
    one transactional :class:`~repro.netmodel.routebuilder.RouteBuilder`
    per clause chain; v1 restores the historical piecemeal ``with_*`` /
    per-``SetAction`` copies so benchmarks can compare the two paths
    (mirrors ``set_batched_evaluation`` / ``set_incremental_simulation``).
    RIBs, verdicts, and memo behavior are identical under either model.
    """
    if model not in ("v1", "v2"):
        raise ValueError(f"unknown route model {model!r} (expected v1 or v2)")
    global _ROUTE_MODEL
    _ROUTE_MODEL = model


def route_model() -> str:
    return _ROUTE_MODEL


def route_model_is_v2() -> bool:
    return _ROUTE_MODEL == "v2"


def reset_route_stats() -> None:
    ROUTES_BUILT.reset()
    ROUTES_REUSED.reset()


def route_totals() -> dict:
    """Process-wide route-datapath accounting (builder freezes vs
    no-change reuses) for campaign/bench reporting."""
    return {
        "routes_built": ROUTES_BUILT.value,
        "routes_reused": ROUTES_REUSED.value,
    }


# -- the value type ------------------------------------------------------------


class Route:
    """An immutable route advertisement (interned, ``__slots__``-based).

    >>> route = Route(prefix=Prefix.parse("1.2.3.0/24"))
    >>> route.with_med(50).med
    50
    """

    __slots__ = (
        "prefix",
        "as_path",
        "communities",
        "med",
        "local_pref",
        "origin",
        "protocol",
        "next_hop",
        "_hash",
        "_decision",
    )

    def __init__(
        self,
        prefix: Prefix,
        as_path: Optional[AsPath] = None,
        communities: Iterable[Community] = EMPTY_COMMUNITIES,
        med: int = 0,
        local_pref: int = DEFAULT_LOCAL_PREF,
        origin: Origin = Origin.IGP,
        protocol: Protocol = Protocol.BGP,
        next_hop: Optional[Ipv4Address] = None,
    ) -> None:
        new = object.__setattr__
        new(self, "prefix", prefix)
        new(
            self,
            "as_path",
            EMPTY_AS_PATH if as_path is None else AsPath.of(as_path.asns),
        )
        new(self, "communities", intern_communities(communities))
        new(self, "med", med)
        new(self, "local_pref", local_pref)
        new(self, "origin", origin)
        new(self, "protocol", protocol)
        new(self, "next_hop", next_hop)
        new(self, "_hash", None)
        new(self, "_decision", None)

    @classmethod
    def _from_canonical(
        cls,
        prefix: Prefix,
        as_path: AsPath,
        communities: FrozenSet[Community],
        med: int,
        local_pref: int,
        origin: Origin,
        protocol: Protocol,
        next_hop: Optional[Ipv4Address],
    ) -> "Route":
        """Construct trusting already-interned attributes (the builder's
        ``freeze`` fast path — skips the re-interning of ``__init__``)."""
        route = cls.__new__(cls)
        new = object.__setattr__
        new(route, "prefix", prefix)
        new(route, "as_path", as_path)
        new(route, "communities", communities)
        new(route, "med", med)
        new(route, "local_pref", local_pref)
        new(route, "origin", origin)
        new(route, "protocol", protocol)
        new(route, "next_hop", next_hop)
        new(route, "_hash", None)
        new(route, "_decision", None)
        return route

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Route is immutable; transform via RouteBuilder")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Route is immutable; transform via RouteBuilder")

    # With __slots__ and a raising __setattr__, the default pickle/copy
    # machinery cannot restore attributes; rebuilding through __init__
    # also re-interns, so an unpickled route lands back on the
    # canonical flyweights of its process.
    def __reduce__(self):
        return (
            Route,
            (
                self.prefix,
                self.as_path,
                self.communities,
                self.med,
                self.local_pref,
                self.origin,
                self.protocol,
                self.next_hop,
            ),
        )

    def __copy__(self) -> "Route":
        return self  # immutable value: a copy is the object itself

    def __deepcopy__(self, memo: dict) -> "Route":
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Route):
            return NotImplemented
        return (
            self.prefix == other.prefix
            and self.med == other.med
            and self.local_pref == other.local_pref
            and (self.as_path is other.as_path or self.as_path == other.as_path)
            and (
                self.communities is other.communities
                or self.communities == other.communities
            )
            and self.origin is other.origin
            and self.protocol is other.protocol
            and self.next_hop == other.next_hop
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def decision_slice(self) -> tuple:
        """The route's slice of the BGP decision tuple, C-ordered so a
        plain ``<`` prefers the better route: ``(-local_pref,
        as-path length, med)``.  Computed once and cached on the
        (immutable, widely shared) route — ``RibEntry`` composes it
        with provenance into its ``decision_key``.
        """
        cached = self._decision
        if cached is None:
            cached = (-self.local_pref, len(self.as_path.asns), self.med)
            object.__setattr__(self, "_decision", cached)
        return cached

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(
                (
                    self.prefix,
                    self.as_path,
                    self.communities,
                    self.med,
                    self.local_pref,
                    self.origin,
                    self.protocol,
                    self.next_hop,
                )
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return (
            f"Route(prefix={self.prefix!r}, as_path={self.as_path!r}, "
            f"communities={self.communities!r}, med={self.med!r}, "
            f"local_pref={self.local_pref!r}, origin={self.origin!r}, "
            f"protocol={self.protocol!r}, next_hop={self.next_hop!r})"
        )

    # -- deprecated v1 shims ---------------------------------------------------
    #
    # Each with_* call builds and freezes a single-change builder: one
    # Route allocation per attribute, exactly the historical cost model
    # the v1 datapath preserves for A/B comparison.  New code should
    # drive a RouteBuilder transactionally instead.

    def builder(self) -> "RouteBuilder":
        """A mutable builder seeded from this route (the v2 entry point)."""
        return _make_builder(self)

    def with_community_added(self, community: Community) -> "Route":
        """Deprecated: additive community set (``set community X additive``)."""
        builder = _make_builder(self)
        builder.add_community(community)
        return builder.freeze()

    def with_communities_replaced(self, community: Community) -> "Route":
        """Deprecated: non-additive set, replacing every existing community.

        This is the behaviour the paper's IIP exists to avoid (§4.2,
        "Adding Communities").
        """
        builder = _make_builder(self)
        builder.set_communities((community,))
        return builder.freeze()

    def with_med(self, med: int) -> "Route":
        """Deprecated: use a RouteBuilder."""
        builder = _make_builder(self)
        builder.set_med(med)
        return builder.freeze()

    def with_local_pref(self, local_pref: int) -> "Route":
        """Deprecated: use a RouteBuilder."""
        builder = _make_builder(self)
        builder.set_local_pref(local_pref)
        return builder.freeze()

    def with_next_hop(self, next_hop: Ipv4Address) -> "Route":
        """Deprecated: use a RouteBuilder."""
        builder = _make_builder(self)
        builder.set_next_hop(next_hop)
        return builder.freeze()

    def with_as_prepended(self, asn: int, count: int = 1) -> "Route":
        """Deprecated: use a RouteBuilder."""
        builder = _make_builder(self)
        builder.prepend_as(asn, count)
        return builder.freeze()

    def with_protocol(self, protocol: Protocol) -> "Route":
        """Deprecated: use a RouteBuilder."""
        builder = _make_builder(self)
        builder.set_protocol(protocol)
        return builder.freeze()

    def describe(self) -> str:
        """One-line rendering used in humanized counterexamples."""
        communities = (
            "{" + ", ".join(sorted(str(c) for c in self.communities)) + "}"
            if self.communities
            else "{}"
        )
        return (
            f"prefix {self.prefix}, as-path [{self.as_path}], "
            f"communities {communities}, med {self.med}, "
            f"local-pref {self.local_pref}"
        )


_RouteBuilder = None


def _make_builder(route: "Route"):
    # Imported lazily to break the route <-> routebuilder cycle without
    # paying a sys.modules lookup on every with_* shim call.
    global _RouteBuilder
    if _RouteBuilder is None:
        from .routebuilder import RouteBuilder

        _RouteBuilder = RouteBuilder
    return _RouteBuilder(route)
