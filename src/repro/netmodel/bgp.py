"""BGP process and neighbor model.

Covers the feature surface the paper exercises: neighbor declarations
with remote AS, per-neighbor import/export route maps, advertised
networks, and redistribution (whose Cisco/Juniper asymmetry drives the
"Different redistribution into BGP" row of Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ip import Ipv4Address, Prefix
from .route import Protocol

__all__ = ["BgpNeighbor", "BgpProcess", "Redistribution"]


@dataclass
class BgpNeighbor:
    """A BGP neighbor (peer) declaration.

    ``import_policy``/``export_policy`` name route maps applied to
    routes received from / advertised to the peer.  ``local_as`` being
    unset on Juniper is Table 2's "Missing BGP local-as attribute" row —
    it parses as a warning because the session cannot establish.
    """

    ip: Ipv4Address
    remote_as: int
    description: str = ""
    import_policy: Optional[str] = None
    export_policy: Optional[str] = None
    local_as: Optional[int] = None
    next_hop_self: bool = False
    send_community: bool = False
    peer_group: Optional[str] = None

    def key(self) -> str:
        """Stable identity used by differs and the topology verifier."""
        return str(self.ip)


@dataclass
class Redistribution:
    """A redistribution directive into BGP.

    On Cisco this is ``redistribute <protocol> [route-map NAME]`` under
    ``router bgp``; on Juniper redistribution happens implicitly through
    export policies matching ``from protocol``.
    """

    protocol: Protocol
    route_map: Optional[str] = None


@dataclass
class BgpProcess:
    """The ``router bgp <asn>`` block of a configuration."""

    asn: int
    router_id: Optional[Ipv4Address] = None
    networks: List[Prefix] = field(default_factory=list)
    neighbors: Dict[str, BgpNeighbor] = field(default_factory=dict)
    redistributions: List[Redistribution] = field(default_factory=list)

    def add_neighbor(self, neighbor: BgpNeighbor) -> BgpNeighbor:
        self.neighbors[neighbor.key()] = neighbor
        return neighbor

    def get_neighbor(self, ip: "Ipv4Address | str") -> Optional[BgpNeighbor]:
        return self.neighbors.get(str(ip))

    def remove_neighbor(self, ip: "Ipv4Address | str") -> None:
        self.neighbors.pop(str(ip), None)

    def announce(self, prefix: Prefix) -> None:
        """Add a ``network`` statement if not already present."""
        if prefix not in self.networks:
            self.networks.append(prefix)

    def announces(self, prefix: Prefix) -> bool:
        return prefix in self.networks

    def sorted_neighbors(self) -> List[BgpNeighbor]:
        """Neighbors in address order, for deterministic rendering."""
        return sorted(self.neighbors.values(), key=lambda item: item.ip)
