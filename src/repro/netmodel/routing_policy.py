"""Route maps / routing policies: the vendor-neutral policy IR.

Both Cisco route-maps and Junos policy-statements lower to a
:class:`RouteMap` of ordered :class:`RouteMapClause` objects, each with a
set of match conditions (conjunctive — *all* must hold, which is the AND
semantics whose misunderstanding by GPT-4 the paper documents in §4.2)
and a list of attribute transformations applied on permit.

Evaluation requires a :class:`PolicyContext` that resolves named prefix
lists, community lists, and AS-path lists; :class:`~repro.netmodel.device.
RouterConfig` implements it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Protocol as TypingProtocol, Tuple

from .acl import AccessList
from .aspath import AsPathAccessList
from .communities import Community, CommunityList
from .ip import Ipv4Address, PrefixRange
from .prefixlist import PrefixList
from .route import Protocol, Route, route_model_is_v2
from .routebuilder import RouteBuilder

__all__ = [
    "Action",
    "MatchAcl",
    "MatchCondition",
    "MatchPrefixList",
    "MatchPrefixRanges",
    "MatchCommunityList",
    "MatchCommunityInline",
    "MatchAsPathList",
    "MatchProtocol",
    "SetAction",
    "SetCommunity",
    "SetMed",
    "SetLocalPref",
    "SetNextHop",
    "SetAsPathPrepend",
    "RouteMapClause",
    "RouteMap",
    "PolicyContext",
    "PolicyResult",
    "PolicyEvaluationError",
    "PreparedRouteMap",
]


class Action(enum.Enum):
    """Terminal disposition of a clause."""

    PERMIT = "permit"
    DENY = "deny"

    def __str__(self) -> str:
        return self.value


class PolicyEvaluationError(Exception):
    """Raised when a policy references an undefined named structure.

    Carries the site: ``kind``/``name`` identify the undefined
    structure, and ``router``/``route_map``/``clause_seq`` are filled
    in by the evaluation layers that know them — so a runtime failure
    names the same (router, map, clause) coordinates a ``repro lint``
    ``undefined-ref`` finding does.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        router: Optional[str] = None,
        route_map: Optional[str] = None,
        clause_seq: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self._base_message = message
        self.kind = kind
        self.name = name
        self.router = router
        self.route_map = route_map
        self.clause_seq = clause_seq
        self._rerender()

    def annotate(
        self,
        *,
        router: Optional[str] = None,
        route_map: Optional[str] = None,
        clause_seq: Optional[int] = None,
    ) -> "PolicyEvaluationError":
        """Fill in missing site context (first annotation wins)."""
        if self.router is None:
            self.router = router
        if self.route_map is None:
            self.route_map = route_map
        if self.clause_seq is None:
            self.clause_seq = clause_seq
        self._rerender()
        return self

    def _rerender(self) -> None:
        parts = []
        if self.router is not None:
            parts.append(f"router {self.router}")
        if self.route_map is not None:
            parts.append(f"route-map {self.route_map}")
        if self.clause_seq is not None:
            parts.append(f"clause {self.clause_seq}")
        if parts:
            self.args = (f"{self._base_message} ({', '.join(parts)})",)
        else:
            self.args = (self._base_message,)


class PolicyContext(TypingProtocol):
    """Resolves names referenced by match conditions."""

    def get_prefix_list(self, name: str) -> Optional[PrefixList]:
        """Look up a prefix list by name, or None."""

    def get_community_list(self, name: str) -> Optional[CommunityList]:
        """Look up a community list by name, or None."""

    def get_as_path_list(self, name: str) -> Optional[AsPathAccessList]:
        """Look up an AS-path access list by name, or None."""

    def get_access_list(self, name: str) -> Optional[AccessList]:
        """Look up an IPv4 access list by name or number, or None."""


@dataclass(frozen=True)
class MatchCondition:
    """Base class for match conditions; subclasses are frozen dataclasses."""

    def matches(self, route: Route, context: PolicyContext) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class MatchPrefixList(MatchCondition):
    """``match ip address prefix-list NAME`` / ``from prefix-list NAME``."""

    name: str

    def matches(self, route: Route, context: PolicyContext) -> bool:
        prefix_list = context.get_prefix_list(self.name)
        if prefix_list is None:
            raise PolicyEvaluationError(
                f"undefined prefix-list {self.name!r}",
                kind="prefix-list",
                name=self.name,
                router=getattr(context, "hostname", None),
            )
        return prefix_list.permits(route.prefix)

    def describe(self) -> str:
        return f"prefix-list {self.name}"


@dataclass(frozen=True)
class MatchAcl(MatchCondition):
    """``match ip address <acl-name-or-number>`` — a standard ACL used
    as a route filter (§3.1's other policy-difference source)."""

    name: str

    def matches(self, route: Route, context: PolicyContext) -> bool:
        access_list = context.get_access_list(self.name)
        if access_list is None:
            raise PolicyEvaluationError(
                f"undefined access-list {self.name!r}",
                kind="access-list",
                name=self.name,
                router=getattr(context, "hostname", None),
            )
        return access_list.permits_prefix(route.prefix)

    def describe(self) -> str:
        return f"access-list {self.name}"


@dataclass(frozen=True)
class MatchPrefixRanges(MatchCondition):
    """Junos inline ``route-filter`` terms (disjunction over ranges)."""

    ranges: Tuple[PrefixRange, ...]

    def matches(self, route: Route, context: PolicyContext) -> bool:
        return any(item.matches(route.prefix) for item in self.ranges)

    def describe(self) -> str:
        rendered = ", ".join(str(item) for item in self.ranges)
        return f"route-filter [{rendered}]"


@dataclass(frozen=True)
class MatchCommunityList(MatchCondition):
    """``match community LIST`` (Cisco) / ``from community NAME`` (Junos)."""

    name: str

    def matches(self, route: Route, context: PolicyContext) -> bool:
        community_list = context.get_community_list(self.name)
        if community_list is None:
            raise PolicyEvaluationError(
                f"undefined community-list {self.name!r}",
                kind="community-list",
                name=self.name,
                router=getattr(context, "hostname", None),
            )
        return community_list.permits(route.communities)

    def describe(self) -> str:
        return f"community-list {self.name}"


@dataclass(frozen=True)
class MatchCommunityInline(MatchCondition):
    """A literal community in a match position.

    ``match community 100:1`` is *invalid* IOS — the paper's §4.2 "Match
    Community" IIP exists precisely because GPT-4 keeps generating it.
    The IR keeps the form so the syntax verifier can diagnose it; if it is
    ever evaluated we fall back to the intuitive meaning.
    """

    community: Community

    def matches(self, route: Route, context: PolicyContext) -> bool:
        return self.community in route.communities

    def describe(self) -> str:
        return f"community {self.community} (inline; invalid IOS syntax)"


@dataclass(frozen=True)
class MatchAsPathList(MatchCondition):
    """``match as-path NAME`` against an AS-path access list."""

    name: str

    def matches(self, route: Route, context: PolicyContext) -> bool:
        as_path_list = context.get_as_path_list(self.name)
        if as_path_list is None:
            raise PolicyEvaluationError(
                f"undefined as-path list {self.name!r}",
                kind="as-path list",
                name=self.name,
                router=getattr(context, "hostname", None),
            )
        return as_path_list.permits(route.as_path)

    def describe(self) -> str:
        return f"as-path list {self.name}"


@dataclass(frozen=True)
class MatchProtocol(MatchCondition):
    """Junos ``from protocol bgp`` — the redistribution guard of §3.2."""

    protocol: Protocol

    def matches(self, route: Route, context: PolicyContext) -> bool:
        return route.protocol == self.protocol

    def describe(self) -> str:
        return f"protocol {self.protocol.value}"


@dataclass(frozen=True)
class SetAction:
    """Base class for attribute transformations.

    The primary API is transactional: :meth:`apply_to` records the
    change on a shared :class:`~repro.netmodel.routebuilder.
    RouteBuilder`, so a clause's whole set chain freezes one route.
    :meth:`apply` is the deprecated piecemeal form (one builder and one
    ``Route`` per action) kept as the v1 datapath for A/B benchmarks.
    """

    def apply_to(self, builder: RouteBuilder) -> None:
        raise NotImplementedError

    def apply(self, route: Route) -> Route:
        """Deprecated: one-action-one-copy (the v1 datapath)."""
        builder = RouteBuilder(route)
        self.apply_to(builder)
        return builder.freeze()

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SetCommunity(SetAction):
    """``set community X [additive]`` / ``then community add NAME``.

    ``additive=False`` replaces all communities — the paper's "Adding
    Communities" IIP (§4.2) exists because GPT-4 omits ``additive``.
    """

    communities: Tuple[Community, ...]
    additive: bool = False

    def apply_to(self, builder: RouteBuilder) -> None:
        if self.additive:
            for community in self.communities:
                builder.add_community(community)
            return
        if not self.communities:
            return
        builder.set_communities(self.communities)

    def describe(self) -> str:
        rendered = " ".join(str(item) for item in self.communities)
        suffix = " additive" if self.additive else ""
        return f"set community {rendered}{suffix}"


@dataclass(frozen=True)
class SetMed(SetAction):
    """``set metric N`` — MED, the attribute of Table 2's policy error."""

    med: int

    def apply_to(self, builder: RouteBuilder) -> None:
        builder.set_med(self.med)

    def describe(self) -> str:
        return f"set metric {self.med}"


@dataclass(frozen=True)
class SetLocalPref(SetAction):
    """``set local-preference N``."""

    local_pref: int

    def apply_to(self, builder: RouteBuilder) -> None:
        builder.set_local_pref(self.local_pref)

    def describe(self) -> str:
        return f"set local-preference {self.local_pref}"


@dataclass(frozen=True)
class SetNextHop(SetAction):
    """``set ip next-hop A.B.C.D``."""

    next_hop: Ipv4Address

    def apply_to(self, builder: RouteBuilder) -> None:
        builder.set_next_hop(self.next_hop)

    def describe(self) -> str:
        return f"set ip next-hop {self.next_hop}"


@dataclass(frozen=True)
class SetAsPathPrepend(SetAction):
    """``set as-path prepend ASN [ASN ...]``."""

    asn: int
    count: int = 1

    def apply_to(self, builder: RouteBuilder) -> None:
        builder.prepend_as(self.asn, self.count)

    def describe(self) -> str:
        return f"set as-path prepend {' '.join([str(self.asn)] * self.count)}"


@dataclass
class RouteMapClause:
    """One sequenced stanza/term of a route map.

    All match conditions must hold for the clause to fire (AND).  On a
    permit, every set action is applied in order.
    """

    seq: int
    action: Action
    matches: List[MatchCondition] = field(default_factory=list)
    sets: List[SetAction] = field(default_factory=list)
    term_name: Optional[str] = None

    def fires(self, route: Route, context: PolicyContext) -> bool:
        """True when every match condition accepts the route.

        ``route`` may be a :class:`~repro.netmodel.routebuilder.
        RouteBuilder` — builders duck-type the readable route surface,
        so conditions see the transaction's current state.
        """
        try:
            return all(
                condition.matches(route, context)
                for condition in self.matches
            )
        except PolicyEvaluationError as exc:
            exc.annotate(clause_seq=self.seq)
            raise

    def apply_sets(self, builder: RouteBuilder) -> None:
        """Record every set action on the shared builder (v2 datapath)."""
        for set_action in self.sets:
            set_action.apply_to(builder)

    def describe(self) -> str:
        label = self.term_name or str(self.seq)
        matches = "; ".join(c.describe() for c in self.matches) or "any"
        sets = "; ".join(s.describe() for s in self.sets) or "none"
        return f"clause {label} {self.action}: match [{matches}] set [{sets}]"


@dataclass(frozen=True)
class PolicyResult:
    """Outcome of evaluating a route map on a route."""

    action: Action
    route: Route
    clause_seq: Optional[int] = None

    @property
    def permitted(self) -> bool:
        return self.action is Action.PERMIT


@dataclass
class RouteMap:
    """A named, ordered route map (first matching clause is terminal).

    A route matching no clause is denied, mirroring the implicit deny of
    a Cisco route-map used as a BGP neighbor policy.
    """

    name: str
    clauses: List[RouteMapClause] = field(default_factory=list)

    def add_clause(self, clause: RouteMapClause) -> RouteMapClause:
        self.clauses.append(clause)
        self.clauses.sort(key=lambda item: item.seq)
        return clause

    def get_clause(self, seq: int) -> Optional[RouteMapClause]:
        for clause in self.clauses:
            if clause.seq == seq:
                return clause
        return None

    def evaluate(self, route: Route, context: PolicyContext) -> PolicyResult:
        """Run the route through the map, returning disposition + route."""
        try:
            return self._evaluate(route, context)
        except PolicyEvaluationError as exc:
            exc.annotate(
                router=getattr(context, "hostname", None),
                route_map=self.name,
            )
            raise

    def _evaluate(self, route: Route, context: PolicyContext) -> PolicyResult:
        for clause in self.clauses:
            if clause.fires(route, context):
                if clause.action is Action.DENY:
                    return PolicyResult(Action.DENY, route, clause.seq)
                if not clause.sets:
                    return PolicyResult(Action.PERMIT, route, clause.seq)
                if route_model_is_v2():
                    # Transactional: the whole set chain accumulates
                    # into one builder, frozen exactly once.
                    builder = RouteBuilder(route)
                    clause.apply_sets(builder)
                    return PolicyResult(
                        Action.PERMIT, builder.freeze(), clause.seq
                    )
                transformed = route
                for set_action in clause.sets:
                    transformed = set_action.apply(transformed)
                return PolicyResult(Action.PERMIT, transformed, clause.seq)
        return PolicyResult(Action.DENY, route, None)

    def find_clause(
        self, route: Route, context: PolicyContext
    ) -> Optional[RouteMapClause]:
        """The first clause whose matches accept the route, or ``None``
        (the implicit deny).  ``route`` may be a builder; matching
        never mutates, so callers can decide *whether* a transaction is
        needed before allocating one (v2's advertise fast path)."""
        try:
            for clause in self.clauses:
                if clause.fires(route, context):
                    return clause
            return None
        except PolicyEvaluationError as exc:
            exc.annotate(
                router=getattr(context, "hostname", None),
                route_map=self.name,
            )
            raise

    def apply(self, builder: RouteBuilder, context: PolicyContext) -> Action:
        """Evaluate against a shared builder's current state (v2 API).

        Match conditions read the builder's live attributes; on a
        permit, the firing clause's set chain is recorded on the same
        builder and *no route is allocated* — the caller freezes once
        at the end of its transaction.  Deny (explicit or implicit)
        leaves the builder untouched.
        """
        clause = self.find_clause(builder, context)
        if clause is None or clause.action is Action.DENY:
            return Action.DENY
        clause.apply_sets(builder)
        return Action.PERMIT

    def prepare(self, context: PolicyContext) -> "PreparedRouteMap":
        """Bind the map to a context once for batch evaluation.

        Resolves every named structure (prefix/community/AS-path/access
        lists) through the context up front, so evaluating a batch of
        routes — e.g. a whole RIB exported across one BGP session —
        pays the name resolution once instead of once per route.
        """
        return PreparedRouteMap(self, context)

    def referenced_prefix_lists(self) -> List[str]:
        """Names of prefix lists this map depends on."""
        names = []
        for clause in self.clauses:
            for condition in clause.matches:
                if isinstance(condition, MatchPrefixList):
                    names.append(condition.name)
        return names

    def referenced_community_lists(self) -> List[str]:
        """Names of community lists this map depends on."""
        names = []
        for clause in self.clauses:
            for condition in clause.matches:
                if isinstance(condition, MatchCommunityList):
                    names.append(condition.name)
        return names


class PreparedRouteMap:
    """A route map bound to one policy context for batch evaluation.

    Name resolution (the per-route dictionary walks in
    ``MatchPrefixList``/``MatchCommunityList``/... ) happens once at
    construction; evaluating a route then touches only the resolved
    structures.  Undefined names are *not* an eager error: evaluation
    raises :class:`PolicyEvaluationError` only when the offending
    condition is actually consulted, because an earlier condition in
    the same clause may short-circuit it — exactly as
    :meth:`RouteMap.evaluate` behaves route by route.
    """

    def __init__(self, route_map: "RouteMap", context: PolicyContext) -> None:
        self._route_map = route_map
        self._router = getattr(context, "hostname", None)
        self._clauses = [
            (
                clause,
                [
                    self._bind(condition, context, clause.seq)
                    for condition in clause.matches
                ],
            )
            for clause in route_map.clauses
        ]

    @property
    def name(self) -> str:
        return self._route_map.name

    def _bind(
        self, condition: MatchCondition, context: PolicyContext, seq: int
    ):
        def undefined(kind: str, name: str):
            # Bake the full site into the raiser: the prepared path
            # resolves names once up front, so the error it defers
            # already knows which clause of which map on which router.
            return _undefined_raiser(
                kind,
                name,
                router=self._router,
                route_map=self._route_map.name,
                clause_seq=seq,
            )

        if isinstance(condition, MatchPrefixList):
            resolved = context.get_prefix_list(condition.name)
            if resolved is not None:
                exact = _exact_permit_set(resolved)
                if exact is not None:
                    # The common reference shape — a few exact permit
                    # lines — collapses to one hash-set membership test.
                    return lambda route: route.prefix in exact
                return lambda route: resolved.permits(route.prefix)
            return undefined("prefix-list", condition.name)
        if isinstance(condition, MatchCommunityList):
            resolved = context.get_community_list(condition.name)
            if resolved is not None:
                return lambda route: resolved.permits(route.communities)
            return undefined("community-list", condition.name)
        if isinstance(condition, MatchAsPathList):
            resolved = context.get_as_path_list(condition.name)
            if resolved is not None:
                return lambda route: resolved.permits(route.as_path)
            return undefined("as-path list", condition.name)
        if isinstance(condition, MatchAcl):
            resolved = context.get_access_list(condition.name)
            if resolved is not None:
                return lambda route: resolved.permits_prefix(route.prefix)
            return undefined("access-list", condition.name)
        # Context-free conditions (inline communities, prefix ranges,
        # protocol, future kinds): nothing to pre-resolve.
        return lambda route: condition.matches(route, context)

    def evaluate(self, route: Route) -> PolicyResult:
        """Identical outcome to ``RouteMap.evaluate`` on the bound context."""
        try:
            return self._evaluate(route)
        except PolicyEvaluationError as exc:
            exc.annotate(router=self._router, route_map=self.name)
            raise

    def _evaluate(self, route: Route) -> PolicyResult:
        for clause, matchers in self._clauses:
            fired = True
            for matcher in matchers:  # plain loop: no genexpr frames
                if not matcher(route):
                    fired = False
                    break
            if not fired:
                continue
            if clause.action is Action.DENY:
                return PolicyResult(Action.DENY, route, clause.seq)
            if not clause.sets:
                return PolicyResult(Action.PERMIT, route, clause.seq)
            if route_model_is_v2():
                builder = RouteBuilder(route)
                clause.apply_sets(builder)
                return PolicyResult(Action.PERMIT, builder.freeze(), clause.seq)
            transformed = route
            for set_action in clause.sets:
                transformed = set_action.apply(transformed)
            return PolicyResult(Action.PERMIT, transformed, clause.seq)
        return PolicyResult(Action.DENY, route, None)

    def find_clause(self, route: Route) -> Optional[RouteMapClause]:
        """The first clause whose bound matchers accept the route (or a
        builder), or ``None`` for the implicit deny.  Matching never
        mutates — see :meth:`RouteMap.find_clause`."""
        try:
            for clause, matchers in self._clauses:
                fired = True
                for matcher in matchers:
                    if not matcher(route):
                        fired = False
                        break
                if fired:
                    return clause
            return None
        except PolicyEvaluationError as exc:
            exc.annotate(router=self._router, route_map=self.name)
            raise

    def apply(self, builder: RouteBuilder) -> Action:
        """Transactional form of :meth:`evaluate` (v2 API).

        Bound matchers read the builder's live attributes; a permit
        records the firing clause's sets on the same builder.  Mirrors
        :meth:`RouteMap.apply` on the bound context.
        """
        clause = self.find_clause(builder)
        if clause is None or clause.action is Action.DENY:
            return Action.DENY
        clause.apply_sets(builder)
        return Action.PERMIT


def _undefined_raiser(
    kind: str,
    name: str,
    *,
    router: Optional[str] = None,
    route_map: Optional[str] = None,
    clause_seq: Optional[int] = None,
):
    def raiser(route: Route) -> bool:
        raise PolicyEvaluationError(
            f"undefined {kind} {name!r}",
            kind=kind,
            name=name,
            router=router,
            route_map=route_map,
            clause_seq=clause_seq,
        )

    return raiser


def _exact_permit_set(prefix_list: PrefixList):
    """The list's prefixes as a frozenset, when that is faithful: every
    entry an exact-length permit (first-match-wins degenerates to set
    membership because no entry can shadow another's verdict)."""
    members = []
    for entry in prefix_list.entries:
        if entry.action != "permit" or not entry.range.is_exact():
            return None
        members.append(entry.range.prefix)
    return frozenset(members)


def permit_all(name: str) -> RouteMap:
    """A route map with a single unconditional permit clause."""
    route_map = RouteMap(name)
    route_map.add_clause(RouteMapClause(seq=10, action=Action.PERMIT))
    return route_map
