"""Vendor-neutral network configuration IR.

This package is the shared intermediate representation for the whole
reproduction: the Cisco and Juniper parsers produce a
:class:`RouterConfig`; the generators render one back to text; Campion
diffs two of them; the topology and Lightyear verifiers inspect them;
and the Batfish-substitute simulates a network of them.
"""

from .acl import AccessList, AclEntry
from .aspath import AsPath, AsPathAccessList, AsPathEntry, EMPTY_AS_PATH, path_through
from .bgp import BgpNeighbor, BgpProcess, Redistribution
from .communities import (
    Community,
    CommunityError,
    CommunityList,
    CommunityListEntry,
    EMPTY_COMMUNITIES,
    intern_communities,
)
from .device import RouterConfig, Vendor
from .interfaces import Interface
from .ip import AddressError, Ipv4Address, Prefix, PrefixRange
from .ospf import OspfNetworkStatement, OspfProcess
from .prefixlist import PrefixList, PrefixListEntry
from .route import (
    Origin,
    Protocol,
    Route,
    reset_route_stats,
    route_model,
    route_totals,
    set_route_model,
)
from .routebuilder import RouteBuilder
from .routing_policy import (
    Action,
    MatchAcl,
    MatchAsPathList,
    MatchCommunityInline,
    MatchCommunityList,
    MatchCondition,
    MatchPrefixList,
    MatchPrefixRanges,
    MatchProtocol,
    PolicyContext,
    PolicyEvaluationError,
    PolicyResult,
    RouteMap,
    RouteMapClause,
    SetAction,
    SetAsPathPrepend,
    SetCommunity,
    SetLocalPref,
    SetMed,
    SetNextHop,
    permit_all,
)

__all__ = [
    "AccessList",
    "AclEntry",
    "Action",
    "AddressError",
    "AsPath",
    "AsPathAccessList",
    "AsPathEntry",
    "BgpNeighbor",
    "BgpProcess",
    "Community",
    "CommunityError",
    "CommunityList",
    "CommunityListEntry",
    "EMPTY_AS_PATH",
    "EMPTY_COMMUNITIES",
    "Interface",
    "Ipv4Address",
    "MatchAcl",
    "MatchAsPathList",
    "MatchCommunityInline",
    "MatchCommunityList",
    "MatchCondition",
    "MatchPrefixList",
    "MatchPrefixRanges",
    "MatchProtocol",
    "Origin",
    "OspfNetworkStatement",
    "OspfProcess",
    "PolicyContext",
    "PolicyEvaluationError",
    "PolicyResult",
    "Prefix",
    "PrefixList",
    "PrefixListEntry",
    "PrefixRange",
    "Protocol",
    "Redistribution",
    "Route",
    "RouteBuilder",
    "RouteMap",
    "RouteMapClause",
    "RouterConfig",
    "SetAction",
    "SetAsPathPrepend",
    "SetCommunity",
    "SetLocalPref",
    "SetMed",
    "SetNextHop",
    "Vendor",
    "intern_communities",
    "path_through",
    "permit_all",
    "reset_route_stats",
    "route_model",
    "route_totals",
    "set_route_model",
]
