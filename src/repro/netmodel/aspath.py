"""AS paths and AS-path access lists.

AS-path regular expressions appear in the paper when GPT-4, given the
*global* no-transit specification, invents a filtering strategy based on
them (§4.1).  The local-synthesis experiment therefore needs them in the
IR even though the final verified configs use communities instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["AsPath", "AsPathAccessList", "AsPathEntry", "EMPTY_AS_PATH"]


@dataclass(frozen=True)
class AsPath:
    """A sequence of AS numbers, most recent hop first.

    Canonical instances are *interned*: :meth:`of` (and every transform
    that goes through it, e.g. :meth:`prepend` or construction of a
    :class:`~repro.netmodel.route.Route`) returns one shared flyweight
    per distinct AS sequence, so the hot best-path comparisons in the
    BGP simulator degenerate to pointer checks and repeated paths share
    one tuple.  Direct construction still works and keeps plain value
    semantics — interning never changes equality, only identity.

    >>> AsPath((65001, 65002)).render()
    '65001 65002'
    """

    asns: Tuple[int, ...] = ()

    @classmethod
    def of(cls, asns: Tuple[int, ...]) -> "AsPath":
        """The canonical (interned) path for an AS tuple."""
        path = _INTERNED_PATHS.get(asns)
        if path is None:
            path = cls(asns)
            _INTERNED_PATHS[asns] = path
        return path

    @classmethod
    def parse(cls, text: str) -> "AsPath":
        parts = text.split()
        return cls.of(tuple(int(part) for part in parts))

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """Return the canonical path with ``asn`` prepended ``count`` times."""
        return AsPath.of((asn,) * count + self.asns)

    def contains(self, asn: int) -> bool:
        return asn in self.asns

    def __len__(self) -> int:
        return len(self.asns)

    def render(self) -> str:
        """Space-separated string form used by regex matching."""
        return " ".join(str(asn) for asn in self.asns)

    def __str__(self) -> str:
        return self.render()


# tuple of ASNs -> the canonical AsPath carrying it (the flyweight table
# behind AsPath.of; unbounded, but paths are tiny and the distinct-path
# population of a simulation is small).
_INTERNED_PATHS: Dict[Tuple[int, ...], AsPath] = {}

EMPTY_AS_PATH = AsPath.of(())


def _translate_cisco_regex(pattern: str) -> str:
    """Convert a Cisco AS-path regex to a Python regex over the rendering.

    Cisco uses ``_`` to mean "boundary" (start, end, or whitespace).  The
    rendering joins AS numbers with single spaces, so ``_`` becomes the
    standard ``(^|$| )`` alternation (``^``/``$`` act as positional
    assertions wherever they appear in a Python regex).
    """
    return pattern.replace("_", r"(?:^|$| )")


@dataclass(frozen=True)
class AsPathEntry:
    """One permit/deny regex line of an AS-path access list."""

    action: str
    regex: str

    def matches(self, path: AsPath) -> bool:
        rendered = path.render()
        return re.search(_translate_cisco_regex(self.regex), rendered) is not None


@dataclass
class AsPathAccessList:
    """A named ordered list of AS-path regex entries (first match wins)."""

    name: str
    entries: List[AsPathEntry] = field(default_factory=list)

    def add(self, action: str, regex: str) -> None:
        self.entries.append(AsPathEntry(action, regex))

    def permits(self, path: AsPath) -> bool:
        for entry in self.entries:
            if entry.matches(path):
                return entry.action == "permit"
        return False


def path_through(asns: Sequence[int]) -> AsPath:
    """Convenience constructor used heavily in tests."""
    return AsPath.of(tuple(asns))
