"""Parse diagnostics shared by both vendor parsers.

The syntax-verifier leg of COSYNTH is built on these: parsers never
raise on unrecognized input (real configs are full of statements outside
the modelled feature surface); they record :class:`ParseWarning` objects
that the Batfish-substitute surfaces exactly the way ``pybatfish``'s
``parseWarning`` question would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

__all__ = ["ParseStatus", "ParseWarning", "Diagnostics"]


class ParseStatus(enum.Enum):
    """Overall status of a parsed file, mirroring Batfish's notion."""

    PASSED = "passed"
    PARTIALLY_UNRECOGNIZED = "partially_unrecognized"
    FAILED = "failed"


@dataclass(frozen=True)
class ParseWarning:
    """One warning tied to a source line.

    ``comment`` is the machine explanation ("This syntax is unrecognized")
    and ``text`` the offending line — the two fields the humanizer splices
    into Table 1's syntax-error prompt formula.
    """

    filename: str
    line: int
    text: str
    comment: str
    parser_context: str = ""

    def render(self) -> str:
        location = f"{self.filename}:{self.line}" if self.filename else f"line {self.line}"
        return f"[{location}] {self.comment}: '{self.text}'"


@dataclass
class Diagnostics:
    """Accumulator passed through a parse run."""

    filename: str = "<config>"
    warnings: List[ParseWarning] = field(default_factory=list)

    def warn(
        self,
        line_number: int,
        text: str,
        comment: str,
        parser_context: str = "",
    ) -> ParseWarning:
        warning = ParseWarning(
            filename=self.filename,
            line=line_number,
            text=text.strip(),
            comment=comment,
            parser_context=parser_context,
        )
        self.warnings.append(warning)
        return warning

    @property
    def status(self) -> ParseStatus:
        if not self.warnings:
            return ParseStatus.PASSED
        return ParseStatus.PARTIALLY_UNRECOGNIZED

    def clear(self) -> None:
        self.warnings.clear()
