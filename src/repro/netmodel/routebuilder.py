"""The transactional, mutating side of the route datapath (v2).

A :class:`RouteBuilder` is a scratch route: it is seeded from an
immutable :class:`~repro.netmodel.route.Route`, accumulates any number
of attribute changes in place, and :meth:`~RouteBuilder.freeze`-s back
into a canonical (interned) ``Route`` exactly once.  Policy evaluation
drives it transactionally — ``RouteMapClause`` set chains,
``PreparedRouteMap.apply``, and the whole export pipeline of
``bgpsim._advertise`` (export map → AS prepend → next-hop rewrite →
import map) thread a single builder, so one session export allocates
one ``Route`` where the v1 ``with_*`` path allocated one per attribute.

Builders duck-type the readable surface of a ``Route`` (``prefix``,
``med``, ``local_pref``, ``origin``, ``protocol``, ``next_hop``,
``as_path``, ``communities``), so match conditions evaluate against the
builder's *current* state without materializing an intermediate route;
``as_path`` and ``communities`` materialize lazily and are cached until
the next mutation.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set

from .aspath import AsPath
from .communities import Community, intern_communities
from .ip import Ipv4Address
from .route import ROUTES_BUILT, ROUTES_REUSED, Origin, Protocol, Route

__all__ = ["RouteBuilder", "export_route"]


def export_route(route: Route, asn: int, next_hop: Ipv4Address) -> Route:
    """``route`` with ``asn`` prepended and ``next_hop`` rewritten, in
    one canonical allocation.

    The advertise fast path: when no set chain fires on a session
    export, the whole pipeline reduces to these two attribute changes,
    so the simulator skips the builder entirely and constructs the
    interned result directly.
    """
    ROUTES_BUILT.inc()
    return Route._from_canonical(
        route.prefix,
        AsPath.of((asn,) + route.as_path.asns),
        route.communities,
        route.med,
        route.local_pref,
        route.origin,
        route.protocol,
        next_hop,
    )


class RouteBuilder:
    """A mutable route under construction; ``freeze()`` interns it."""

    __slots__ = (
        "_base",
        "med",
        "local_pref",
        "origin",
        "protocol",
        "next_hop",
        "_pending_prepends",
        "_as_path",
        "_community_set",
        "_communities",
        "_dirty",
    )

    def __init__(self, base: Route) -> None:
        self._base = base
        self.med = base.med
        self.local_pref = base.local_pref
        self.origin = base.origin
        self.protocol = base.protocol
        self.next_hop = base.next_hop
        self._pending_prepends: Optional[List[int]] = None
        self._as_path: Optional[AsPath] = None
        self._community_set: Optional[Set[Community]] = None
        self._communities: Optional[FrozenSet[Community]] = None
        self._dirty = False

    # -- the readable Route surface (duck-typed for match conditions) --------

    @property
    def prefix(self):
        return self._base.prefix

    @property
    def as_path(self) -> AsPath:
        pending = self._pending_prepends
        if pending is None:
            return self._base.as_path
        cached = self._as_path
        if cached is None:
            cached = AsPath.of(tuple(pending) + self._base.as_path.asns)
            self._as_path = cached
        return cached

    @property
    def communities(self) -> FrozenSet[Community]:
        working = self._community_set
        if working is None:
            return self._base.communities
        cached = self._communities
        if cached is None:
            cached = intern_communities(frozenset(working))
            self._communities = cached
        return cached

    def path_contains(self, asn: int) -> bool:
        """AS-loop check without materializing the pending path."""
        pending = self._pending_prepends
        if pending is not None and asn in pending:
            return True
        return self._base.as_path.contains(asn)

    # -- mutators --------------------------------------------------------------

    def set_med(self, med: int) -> "RouteBuilder":
        self.med = med
        self._dirty = True
        return self

    def set_local_pref(self, local_pref: int) -> "RouteBuilder":
        self.local_pref = local_pref
        self._dirty = True
        return self

    def set_next_hop(self, next_hop: Optional[Ipv4Address]) -> "RouteBuilder":
        self.next_hop = next_hop
        self._dirty = True
        return self

    def set_origin(self, origin: Origin) -> "RouteBuilder":
        self.origin = origin
        self._dirty = True
        return self

    def set_protocol(self, protocol: Protocol) -> "RouteBuilder":
        self.protocol = protocol
        self._dirty = True
        return self

    def prepend_as(self, asn: int, count: int = 1) -> "RouteBuilder":
        pending = self._pending_prepends
        if pending is None:
            pending = []
            self._pending_prepends = pending
        pending[:0] = [asn] * count
        self._as_path = None
        self._dirty = True
        return self

    def add_community(self, community: Community) -> "RouteBuilder":
        working = self._community_set
        if working is None:
            working = set(self._base.communities)
            self._community_set = working
        working.add(community)
        self._communities = None
        self._dirty = True
        return self

    def set_communities(
        self, communities: Iterable[Community]
    ) -> "RouteBuilder":
        """Replace the carried communities wholesale (non-additive set)."""
        self._community_set = set(communities)
        self._communities = None
        self._dirty = True
        return self

    # -- the single exit -------------------------------------------------------

    @property
    def dirty(self) -> bool:
        """Whether any mutation was recorded since seeding."""
        return self._dirty

    def freeze(self) -> Route:
        """The accumulated route as one canonical immutable ``Route``.

        A builder that recorded no mutation returns its base route
        unchanged — zero allocations.
        """
        if not self._dirty:
            ROUTES_REUSED.inc()
            return self._base
        ROUTES_BUILT.inc()
        return Route._from_canonical(
            self._base.prefix,
            self.as_path,
            self.communities,
            self.med,
            self.local_pref,
            self.origin,
            self.protocol,
            self.next_hop,
        )
