"""BGP community values and community lists.

Communities are the central mechanism in the paper's second use case: the
no-transit policy tags routes with a community on ingress at the hub
router and filters on those communities at egress (§4).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = [
    "Community",
    "CommunityList",
    "CommunityListEntry",
    "CommunityError",
    "EMPTY_COMMUNITIES",
    "intern_communities",
]

_COMMUNITY_RE = re.compile(r"^(\d+):(\d+)$")


class CommunityError(ValueError):
    """Raised for malformed community values or lists."""


@dataclass(frozen=True, order=True)
class Community:
    """A standard BGP community ``asn:value``.

    >>> Community.parse("100:1")
    Community(asn=100, value=1)
    """

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF or not 0 <= self.value <= 0xFFFF:
            raise CommunityError(f"community out of range: {self.asn}:{self.value}")

    @classmethod
    def parse(cls, text: str) -> "Community":
        match = _COMMUNITY_RE.match(text.strip())
        if match is None:
            raise CommunityError(f"invalid community: {text!r}")
        return cls(int(match.group(1)), int(match.group(2)))

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


EMPTY_COMMUNITIES: FrozenSet[Community] = frozenset()

# value-keyed identity map: one canonical frozenset per distinct
# community set (frozensets cache their hash, so repeated lookups with
# the same canonical instance cost a pointer compare).
_INTERNED_SETS: Dict[FrozenSet[Community], FrozenSet[Community]] = {}


def intern_communities(
    communities: Iterable[Community],
) -> FrozenSet[Community]:
    """The canonical (interned) frozenset for a community collection.

    Same-valued route community sets become ``is``-identical, making the
    hot equality/hash checks of best-path selection and attribute
    diffing pointer-cheap.  Value semantics are untouched: the canonical
    instance is ``==`` to any equal frozenset.
    """
    members = (
        communities
        if type(communities) is frozenset
        else frozenset(communities)
    )
    if not members:
        return EMPTY_COMMUNITIES
    return _INTERNED_SETS.setdefault(members, members)


@dataclass(frozen=True)
class CommunityListEntry:
    """One ``permit``/``deny`` line of a community list.

    ``communities`` may contain several values; Cisco semantics require a
    route to carry *all* of them for the entry to match (AND within an
    entry, OR across entries).  ``regex`` entries (expanded community
    lists) match against the string form of any carried community.
    """

    action: str
    communities: Tuple[Community, ...] = ()
    regex: "str | None" = None

    def __post_init__(self) -> None:
        if self.action not in ("permit", "deny"):
            raise CommunityError(f"invalid action: {self.action!r}")
        if not self.communities and self.regex is None:
            raise CommunityError("entry needs communities or a regex")

    def matches(self, carried: FrozenSet[Community]) -> bool:
        """True if a route carrying ``carried`` satisfies this entry."""
        if self.regex is not None:
            pattern = re.compile(self.regex)
            return any(pattern.search(str(item)) for item in carried)
        return all(item in carried for item in self.communities)


@dataclass
class CommunityList:
    """A named, ordered community list (standard or expanded).

    First matching entry decides; no match means the list denies.
    """

    name: str
    entries: List[CommunityListEntry] = field(default_factory=list)

    def add(self, entry: CommunityListEntry) -> None:
        self.entries.append(entry)

    def permits(self, carried: Iterable[Community]) -> bool:
        """Whether a route with the given communities passes the list."""
        carried_set = frozenset(carried)
        for entry in self.entries:
            if entry.matches(carried_set):
                return entry.action == "permit"
        return False

    def permitted_communities(self) -> FrozenSet[Community]:
        """All explicit community values on permit entries.

        Used by the symbolic engine to reason about which tag a list is
        checking for, which is well-defined for the standard lists the
        experiments generate (one community per entry).
        """
        values = []
        for entry in self.entries:
            if entry.action == "permit":
                values.extend(entry.communities)
        return frozenset(values)
