"""IPv4 access lists (standard ACLs).

§3.1 names "route maps or access control lists" as the sources of policy
behaviour differences.  Standard ACLs match a route's network address
under a wildcard mask (1-bits = don't care); used inside a route-map via
``match ip address <acl>`` they filter route advertisements exactly like
prefix lists, but length-insensitively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .ip import AddressError, Ipv4Address, Prefix, PrefixRange

__all__ = ["AccessList", "AclEntry"]


@dataclass(frozen=True)
class AclEntry:
    """One permit/deny line of a standard ACL."""

    action: str
    address: int
    wildcard: int  # bits set = don't care

    def __post_init__(self) -> None:
        if self.action not in ("permit", "deny"):
            raise AddressError(f"invalid ACL action {self.action!r}")

    @classmethod
    def from_strings(cls, action: str, address: str, wildcard: str = "0.0.0.0") -> "AclEntry":
        return cls(
            action=action,
            address=Ipv4Address.parse(address).value,
            wildcard=Ipv4Address.parse(wildcard).value,
        )

    @classmethod
    def any(cls, action: str = "permit") -> "AclEntry":
        """The ``permit any`` form."""
        return cls(action=action, address=0, wildcard=0xFFFFFFFF)

    def matches_address(self, value: int) -> bool:
        care = ~self.wildcard & 0xFFFFFFFF
        return (value & care) == (self.address & care)

    def matches_prefix(self, prefix: Prefix) -> bool:
        """A standard ACL in a route-map matches the network address."""
        return self.matches_address(prefix.network)

    def is_contiguous(self) -> bool:
        """True when the wildcard is a contiguous low-bit mask, i.e. the
        entry is expressible as a prefix."""
        inverted = ~self.wildcard & 0xFFFFFFFF
        return (self.wildcard & (self.wildcard + 1)) == 0 or inverted == 0xFFFFFFFF

    def as_prefix_range(self) -> Optional[PrefixRange]:
        """The dominant prefix-range equivalent for contiguous wildcards.

        ``permit 1.2.3.0 0.0.0.255`` matches every prefix whose network
        address lies in 1.2.3.0/24 — the ``orlonger`` cone of 1.2.3.0/24
        plus a handful of *shorter* aligned prefixes covered by
        :meth:`as_prefix_ranges`.  Non-contiguous wildcards have no
        prefix form.
        """
        ranges = self.as_prefix_ranges()
        return ranges[0] if ranges else None

    def as_prefix_ranges(self) -> List[PrefixRange]:
        """The exact prefix-range decomposition for contiguous wildcards.

        The ACL matches a prefix iff the prefix's *network address* falls
        in the masked space.  That is the orlonger cone of the base
        prefix, plus every shorter prefix whose canonical network equals
        the base address (e.g. ``permit 20.0.0.0 0.255.255.255`` also
        matches 20.0.0.0/6 and 20.0.0.0/7, whose network is 20.0.0.0).
        """
        if not self.is_contiguous():
            return []
        length = 32 - self.wildcard.bit_length() if self.wildcard else 32
        base = Prefix(self.address, length)
        ranges = [PrefixRange.orlonger(base)]
        for shorter in range(length - 1, 0, -1):
            aligned = Prefix(base.network, shorter)
            if aligned.network != base.network:
                break  # alignment fails for this and all shorter lengths
            ranges.append(PrefixRange.exact(aligned))
        return ranges

    def render_cisco(self) -> str:
        if self.wildcard == 0xFFFFFFFF:
            return f"{self.action} any"
        address = str(Ipv4Address(self.address))
        if self.wildcard == 0:
            return f"{self.action} host {address}"
        return f"{self.action} {address} {Ipv4Address(self.wildcard)}"


@dataclass
class AccessList:
    """A named or numbered standard ACL (first match wins, default deny)."""

    name: str
    entries: List[AclEntry] = field(default_factory=list)

    def add(self, entry: AclEntry) -> AclEntry:
        self.entries.append(entry)
        return entry

    def permits_prefix(self, prefix: Prefix) -> bool:
        for entry in self.entries:
            if entry.matches_prefix(prefix):
                return entry.action == "permit"
        return False

    def permitted_ranges(self) -> List[PrefixRange]:
        """Prefix ranges of the permit entries (contiguous ones only) —
        the symbolic engine's view of the matchable space."""
        ranges: List[PrefixRange] = []
        for entry in self.entries:
            if entry.action != "permit":
                continue
            ranges.extend(entry.as_prefix_ranges())
        return ranges
