"""The vendor-neutral router configuration: the IR both parsers target.

A :class:`RouterConfig` is what the verifiers reason about.  The Cisco
and Juniper parsers produce one; the generators consume one; Campion
diffs two; the topology verifier compares one against the JSON topology;
and the BGP simulator runs a set of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .acl import AccessList
from .aspath import AsPathAccessList
from .bgp import BgpProcess
from .communities import CommunityList
from .interfaces import Interface
from .ip import Ipv4Address
from .ospf import OspfProcess
from .prefixlist import PrefixList
from .routing_policy import RouteMap

__all__ = ["Vendor", "RouterConfig"]


class Vendor(enum.Enum):
    """Configuration dialect."""

    CISCO = "cisco"
    JUNIPER = "juniper"

    def __str__(self) -> str:
        return self.value


@dataclass
class RouterConfig:
    """A complete single-router configuration in vendor-neutral form.

    Implements the :class:`~repro.netmodel.routing_policy.PolicyContext`
    protocol so route maps can be evaluated directly against it.
    """

    hostname: str
    vendor: Vendor = Vendor.CISCO
    interfaces: Dict[str, Interface] = field(default_factory=dict)
    bgp: Optional[BgpProcess] = None
    ospf: Optional[OspfProcess] = None
    route_maps: Dict[str, RouteMap] = field(default_factory=dict)
    prefix_lists: Dict[str, PrefixList] = field(default_factory=dict)
    community_lists: Dict[str, CommunityList] = field(default_factory=dict)
    as_path_lists: Dict[str, AsPathAccessList] = field(default_factory=dict)
    access_lists: Dict[str, AccessList] = field(default_factory=dict)

    # -- PolicyContext protocol -------------------------------------------

    def get_prefix_list(self, name: str) -> Optional[PrefixList]:
        return self.prefix_lists.get(name)

    def get_community_list(self, name: str) -> Optional[CommunityList]:
        return self.community_lists.get(name)

    def get_as_path_list(self, name: str) -> Optional[AsPathAccessList]:
        return self.as_path_lists.get(name)

    def get_access_list(self, name: str) -> Optional[AccessList]:
        return self.access_lists.get(name)

    # -- construction helpers ---------------------------------------------

    def add_interface(self, interface: Interface) -> Interface:
        self.interfaces[interface.name] = interface
        return interface

    def get_interface(self, name: str) -> Optional[Interface]:
        return self.interfaces.get(name)

    def add_route_map(self, route_map: RouteMap) -> RouteMap:
        self.route_maps[route_map.name] = route_map
        return route_map

    def get_route_map(self, name: str) -> Optional[RouteMap]:
        return self.route_maps.get(name)

    def add_prefix_list(self, prefix_list: PrefixList) -> PrefixList:
        self.prefix_lists[prefix_list.name] = prefix_list
        return prefix_list

    def add_community_list(self, community_list: CommunityList) -> CommunityList:
        self.community_lists[community_list.name] = community_list
        return community_list

    def add_as_path_list(self, as_path_list: AsPathAccessList) -> AsPathAccessList:
        self.as_path_lists[as_path_list.name] = as_path_list
        return as_path_list

    def add_access_list(self, access_list: AccessList) -> AccessList:
        self.access_lists[access_list.name] = access_list
        return access_list

    def ensure_bgp(self, asn: int) -> BgpProcess:
        """Get the BGP process, creating it with ``asn`` if absent."""
        if self.bgp is None:
            self.bgp = BgpProcess(asn=asn)
        return self.bgp

    def ensure_ospf(self, process_id: int = 1) -> OspfProcess:
        if self.ospf is None:
            self.ospf = OspfProcess(process_id=process_id)
        return self.ospf

    # -- queries used by verifiers ------------------------------------------

    def interface_with_address(self, address: Ipv4Address) -> Optional[Interface]:
        for interface in self.interfaces.values():
            if interface.address == address:
                return interface
        return None

    def sorted_interfaces(self) -> List[Interface]:
        return [self.interfaces[name] for name in sorted(self.interfaces)]

    def undefined_references(self) -> List[str]:
        """Names referenced by policy attachments but never defined.

        Campion reports these as structural problems; the syntax checker
        also surfaces them as warnings.
        """
        missing: List[str] = []
        if self.bgp is not None:
            for neighbor in self.bgp.sorted_neighbors():
                for policy in (neighbor.import_policy, neighbor.export_policy):
                    if policy is not None and policy not in self.route_maps:
                        missing.append(f"route-map {policy}")
            for redistribution in self.bgp.redistributions:
                name = redistribution.route_map
                if name is not None and name not in self.route_maps:
                    missing.append(f"route-map {name}")
        for route_map in self.route_maps.values():
            for name in route_map.referenced_prefix_lists():
                if name not in self.prefix_lists:
                    missing.append(f"prefix-list {name}")
            for name in route_map.referenced_community_lists():
                if name not in self.community_lists:
                    missing.append(f"community-list {name}")
        return missing
