"""The human side of the slow loop.

When COSYNTH abandons automatic correction (Figure 2: "V may abandon
automatic correction after some number of trials, and the human must
still correct manually"), the orchestrator asks a :class:`HumanAgent`
for a prompt.  Experiments use :class:`ScriptedHuman`, which plays the
role of the paper's authors: an expert who inspects the stuck finding
and issues the documented targeted prompt (e.g. "add 'from bgp'
conditions", "declare each match statement in a separate stanza").
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from ..errors import Finding
from ..llm.faults import Fault
from ..llm.simulated import SimulatedGPT4

__all__ = ["HumanAgent", "ScriptedHuman"]


class HumanAgent(Protocol):
    """Anything that can produce a manual correction prompt."""

    def respond(self, finding: Finding, prompt_text: str) -> str:
        """Given the stuck finding (and the generated prompt that failed),
        return the manual prompt to send."""
        ...


class ScriptedHuman:
    """An expert driven by the fault catalog.

    The scripted human matches the failed generated prompt against the
    catalog's signatures — the same diagnosis a real expert performs by
    reading the verifier output — and answers with that fault's
    documented targeted prompt.  Unknown problems get a generic but
    manual restatement (which still counts as human effort).
    """

    def __init__(self, catalog: Dict[str, Fault]) -> None:
        self._catalog = catalog
        self.responses: list = []

    def respond(self, finding: Finding, prompt_text: str) -> str:
        response = self._lookup(prompt_text) or (
            f"This problem persists: {finding.message}. Please fix it "
            f"explicitly and print the entire corrected configuration."
        )
        self.responses.append((finding, response))
        return response

    def _lookup(self, prompt_text: str) -> Optional[str]:
        for fault in self._catalog.values():
            if fault.human_prompt and fault.matches_generated(prompt_text):
                return fault.human_prompt
        return None

    @classmethod
    def for_model(cls, model: SimulatedGPT4) -> "ScriptedHuman":
        """Build a human whose expertise matches the model's task."""
        return cls(model._catalog)  # noqa: SLF001 - white-box by design
