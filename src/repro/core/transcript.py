"""Session transcripts: the observable trace of a COSYNTH run.

Records every pipeline step — drafts, verifier verdicts, prompts, stage
transitions, punts to the human — so experiments can reconstruct the
Figure 3 flow (including the semantic-fix-introduces-syntax-error
back-edge) from data rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["SessionTranscript", "TranscriptEvent"]


@dataclass(frozen=True)
class TranscriptEvent:
    """One step of a run."""

    kind: str  # "draft" | "verify" | "prompt" | "punt" | "verified" | "abandoned"
    stage: str  # "syntax" | "structural" | "attribute" | "policy" | "topology" | "semantic" | "task" | "global"
    description: str
    router: str = ""


@dataclass
class SessionTranscript:
    """Append-only event log for one orchestrated run."""

    events: List[TranscriptEvent] = field(default_factory=list)

    def record(
        self, kind: str, stage: str, description: str, router: str = ""
    ) -> TranscriptEvent:
        event = TranscriptEvent(
            kind=kind, stage=stage, description=description, router=router
        )
        self.events.append(event)
        return event

    def stage_sequence(self) -> List[str]:
        """The verifier stages in visit order (Figure 3's trace)."""
        return [event.stage for event in self.events if event.kind == "verify"]

    def back_edges(self) -> int:
        """How often verification fell back to an *earlier* stage —
        e.g. a semantic fix re-introducing a syntax error (§3.2)."""
        order = {
            "syntax": 0,
            "topology": 1,
            "structural": 1,
            "attribute": 2,
            "policy": 3,
            "semantic": 3,
            "global": 4,
        }
        sequence = [
            stage for stage in self.stage_sequence() if stage in order
        ]
        count = 0
        for previous, current in zip(sequence, sequence[1:]):
            if order[current] < order[previous]:
                count += 1
        return count

    def punts(self) -> int:
        return sum(1 for event in self.events if event.kind == "punt")

    def counts(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for event in self.events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result
