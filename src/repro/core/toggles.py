"""One registry for every process-global A/B toggle.

The repo's optimization toggles (``set_route_model``,
``set_decision_cache``, ``set_batched_evaluation``,
``set_incremental_simulation``, ``set_memoization``,
``set_worker_shipping``) are module globals scattered over four
modules.  Each one is cheap and fork-friendly, but together they form
shared mutable state that leaks: a test or fuzz iteration that flips a
toggle and raises leaves every later test running under a
configuration nobody asked for.

This module gives that state one name.  Every toggle is registered
here with its getter, setter, and default, so callers can snapshot the
whole configuration, apply a saved snapshot, or run a block under an
override and be *guaranteed* the previous configuration comes back —
the fuzz harness wraps every toggle-combination run in
:func:`scoped`, campaign workers are initialized from a parent
:func:`snapshot`, and the test suite's autouse hygiene fixture asserts
:func:`deviations` is empty after every test.

Imports of the toggle-owning modules are deferred until first use so
this module can live in :mod:`repro.core` without creating an import
cycle (``repro.experiments.campaign`` imports ``repro.core``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "DEFAULTS",
    "apply",
    "deviations",
    "preserved",
    "restore_defaults",
    "scoped",
    "snapshot",
    "toggle_names",
]


@dataclass(frozen=True)
class _ToggleSpec:
    get: Callable[[], Any]
    set: Callable[[Any], None]
    default: Any


# Every toggle's documented resting value.  Kept as a plain literal
# mapping (not derived from the getters) so the defaults are an
# explicit contract: if a module ever ships with a different initial
# value, the hygiene fixture fails loudly instead of blessing it.
DEFAULTS: Dict[str, Any] = {
    "route_model": "v2",
    "decision_cache": True,
    "batched_evaluation": True,
    "incremental_simulation": True,
    "memoization": True,
    "worker_shipping": "coords",
}

_SPECS: Optional[Dict[str, _ToggleSpec]] = None


def _specs() -> Dict[str, _ToggleSpec]:
    global _SPECS
    if _SPECS is None:
        from ..batfish import bgpsim
        from ..experiments import campaign
        from ..netmodel import route
        from ..symbolic import memo

        _SPECS = {
            "route_model": _ToggleSpec(
                route.route_model, route.set_route_model, "v2"
            ),
            "decision_cache": _ToggleSpec(
                bgpsim.decision_cache_enabled, bgpsim.set_decision_cache, True
            ),
            "batched_evaluation": _ToggleSpec(
                bgpsim.batched_evaluation_enabled,
                bgpsim.set_batched_evaluation,
                True,
            ),
            "incremental_simulation": _ToggleSpec(
                bgpsim.incremental_simulation_enabled,
                bgpsim.set_incremental_simulation,
                True,
            ),
            "memoization": _ToggleSpec(
                memo.memoization_enabled, memo.set_memoization, True
            ),
            "worker_shipping": _ToggleSpec(
                campaign.worker_shipping, campaign.set_worker_shipping, "coords"
            ),
        }
        assert set(_SPECS) == set(DEFAULTS)
        for name, spec in _SPECS.items():
            assert spec.default == DEFAULTS[name], name
    return _SPECS


def toggle_names() -> List[str]:
    """Every registered toggle name, in registry order."""
    return list(DEFAULTS)


def snapshot() -> Dict[str, Any]:
    """The current value of every registered toggle."""
    return {name: spec.get() for name, spec in _specs().items()}


def apply(values: Dict[str, Any]) -> None:
    """Set the named toggles (a partial mapping is fine).

    Unknown names raise ``ValueError`` before anything is changed, so a
    typo cannot half-apply a configuration.
    """
    specs = _specs()
    unknown = sorted(set(values) - set(specs))
    if unknown:
        known = ", ".join(specs)
        raise ValueError(f"unknown toggle(s) {unknown} (known: {known})")
    for name, value in values.items():
        specs[name].set(value)


def restore_defaults() -> None:
    """Put every toggle back to its documented default."""
    apply(dict(DEFAULTS))


def deviations() -> List[Tuple[str, Any, Any]]:
    """``(name, current, default)`` for every toggle not at its default.

    Empty means the process is in the documented resting
    configuration; the test suite asserts this after every test.
    """
    return [
        (name, spec.get(), spec.default)
        for name, spec in _specs().items()
        if spec.get() != spec.default
    ]


@contextmanager
def preserved() -> Iterator[Dict[str, Any]]:
    """Snapshot every toggle on entry and restore it on exit.

    Restoration happens even when the body raises — the guarantee that
    makes flipping toggles safe inside loops and tests.
    """
    saved = snapshot()
    try:
        yield saved
    finally:
        apply(saved)


@contextmanager
def scoped(**overrides: Any) -> Iterator[Dict[str, Any]]:
    """Run a block under the given toggle overrides, then restore.

    ``with toggles.scoped(route_model="v1", memoization=False): ...``
    """
    with preserved() as saved:
        apply(overrides)
        yield saved
