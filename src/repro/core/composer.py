"""The Composer (§2, Figure 3).

"The Composer puts back the pieces (in our case in a folder for
Batfish)."  It collects the per-router config texts produced by the
per-router chats into a :class:`~repro.batfish.snapshot.Snapshot` and
can materialize that snapshot as an on-disk folder.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

from ..batfish.snapshot import Snapshot

__all__ = ["Composer"]


class Composer:
    """Accumulates per-router configs into a Batfish-ready snapshot."""

    def __init__(self, name: str = "composed") -> None:
        self._name = name
        self._texts: Dict[str, str] = {}

    def put(self, router_name: str, config_text: str) -> None:
        """Add or replace one router's configuration."""
        self._texts[f"{router_name}.cfg"] = config_text

    def routers(self) -> list:
        return sorted(name[: -len(".cfg")] for name in self._texts)

    def compose(self) -> Snapshot:
        """Parse the accumulated configs as one snapshot."""
        return Snapshot.from_texts(dict(self._texts), name=self._name)

    def write_to(self, path: "Path | str") -> Path:
        """Materialize the snapshot folder (what the paper hands to
        Batfish)."""
        return self.compose().write_to(path)
