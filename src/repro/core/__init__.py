"""COSYNTH core: the Verified Prompt Programming machinery.

Humanizer, IIP database, Modularizer, Composer, leverage accounting,
session transcripts, the scripted human, and the two orchestrators.
"""

from .composer import Composer
from .human import HumanAgent, ScriptedHuman
from .humanizer import Humanizer, finding_from_warning
from .iip import DEFAULT_IIP_IDS, IIPDatabase, InitialInstructionPrompt
from .leverage import PromptKind, PromptLog, PromptRecord
from .modularizer import Modularizer
from .orchestrator import (
    LoopLimits,
    SynthesisOrchestrator,
    SynthesisRunResult,
    TranslationOrchestrator,
    TranslationRunResult,
)
from .transcript import SessionTranscript, TranscriptEvent

__all__ = [
    "Composer",
    "DEFAULT_IIP_IDS",
    "HumanAgent",
    "Humanizer",
    "IIPDatabase",
    "InitialInstructionPrompt",
    "LoopLimits",
    "Modularizer",
    "PromptKind",
    "PromptLog",
    "PromptRecord",
    "ScriptedHuman",
    "SessionTranscript",
    "SynthesisOrchestrator",
    "SynthesisRunResult",
    "TranscriptEvent",
    "TranslationOrchestrator",
    "TranslationRunResult",
    "finding_from_warning",
]
