"""The humanizer: verifier findings → natural-language prompts.

§1: "Since verifier feedback is often cryptic, we use simple code that
we call a humanizer that converts the feedback to natural language
prompts that are given to GPT-4."  Each error category has a formulaic
template (the non-italicized text of Tables 1 and 3) into which the
finding's fields (the italicized text) are spliced.
"""

from __future__ import annotations

from ..errors import ErrorCategory, Finding
from ..netmodel.diagnostics import ParseWarning

__all__ = ["Humanizer", "finding_from_warning"]

_REPRINT = "Print the entire corrected configuration."


class Humanizer:
    """Stateless formatter from findings to correction prompts."""

    def humanize(self, finding: Finding) -> str:
        """Render one finding as a correction prompt."""
        handler = {
            ErrorCategory.SYNTAX: self._syntax,
            ErrorCategory.STRUCTURAL: self._pass_through,
            ErrorCategory.ATTRIBUTE: self._pass_through,
            ErrorCategory.POLICY: self._pass_through,
            ErrorCategory.TOPOLOGY: self._topology,
            ErrorCategory.SEMANTIC: self._semantic,
        }[finding.category]
        return handler(finding)

    def _syntax(self, finding: Finding) -> str:
        detail = finding.detail
        if isinstance(detail, ParseWarning):
            # Table 1: "There is a syntax error: '<line>'" — Batfish's
            # comment is appended because it is sometimes (not always)
            # actionable.
            return (
                f"There is a syntax error: '{detail.text}'. "
                f"{detail.comment}. Fix this line. {_REPRINT}"
            )
        return f"There is a syntax error: {finding.message}. {_REPRINT}"

    def _pass_through(self, finding: Finding) -> str:
        # Campion findings are already phrased in Table 1's formula by
        # their describe() methods.
        return f"{finding.message}. Please fix the translation. {_REPRINT}"

    def _topology(self, finding: Finding) -> str:
        return (
            f"{finding.message}. Fix the configuration so it matches the "
            f"given topology. {_REPRINT}"
        )

    def _semantic(self, finding: Finding) -> str:
        return (
            f"{finding.message} Fix the routing policy so the local policy "
            f"holds. {_REPRINT}"
        )


def finding_from_warning(warning: ParseWarning, router: str = "") -> Finding:
    """Wrap a parse warning as a syntax finding."""
    return Finding(
        category=ErrorCategory.SYNTAX,
        message=f"{warning.comment}: '{warning.text}'",
        router=router,
        detail=warning,
    )
