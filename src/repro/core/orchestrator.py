"""The COSYNTH orchestrator: the Verified Prompt Programming loops.

Implements Figure 3's flow for both use cases:

* **fast inner loop** — verifier output, humanized, goes straight back
  to the LLM;
* **ordering** — syntax errors are handled before structural before
  attribute before policy/semantic errors (they "mask" later classes);
  a semantic fix can re-introduce a syntax error, in which case control
  falls back to the syntax verifier (the Figure 3 back-edge);
* **slow manual loop** — after ``attempts_per_finding`` fruitless
  automated tries on the same finding, COSYNTH punts to the human, whose
  prompt re-enters the same loop.

The orchestrator sees the LLM only through the
:class:`~repro.llm.client.LLMClient` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..batfish.snapshot import Snapshot
from ..campion import (
    AttributeDifference,
    PolicyBehaviorFinding,
    StructuralMismatch,
    compare_configs,
)
from ..cisco import parse_cisco
from ..errors import ErrorCategory, Finding
from ..juniper import parse_juniper
from ..lightyear.compose import (
    GlobalCheckResult,
    IncrementalGlobalChecker,
    check_global_no_transit,
    last_global_sim_stats,
)
from ..lightyear.verifier import verify_invariants
from ..llm.client import LLMClient
from ..netmodel.device import RouterConfig
from ..netmodel.routing_policy import SetCommunity
from ..topology.model import Topology
from ..topology.verifier import verify_topology
from .composer import Composer
from .human import HumanAgent
from .humanizer import Humanizer, finding_from_warning
from .iip import IIPDatabase
from .leverage import PromptKind, PromptLog
from .modularizer import Modularizer
from .transcript import SessionTranscript

__all__ = [
    "LoopLimits",
    "SynthesisOrchestrator",
    "SynthesisRunResult",
    "TranslationOrchestrator",
    "TranslationRunResult",
]

DEFAULT_TRANSLATION_PROMPT = (
    "Translate the configuration into an equivalent Juniper configuration."
)


@dataclass(frozen=True)
class LoopLimits:
    """Loop-control knobs (Figure 2's "after some number of trials")."""

    attempts_per_finding: int = 2
    max_correction_prompts: int = 80


@dataclass
class TranslationRunResult:
    """Everything a translation run produced."""

    verified: bool
    prompt_log: PromptLog
    transcript: SessionTranscript
    final_text: str
    findings_seen: List[Finding] = field(default_factory=list)

    @property
    def leverage(self) -> float:
        return self.prompt_log.leverage()


@dataclass
class SynthesisRunResult:
    """Everything a synthesis run produced."""

    verified: bool
    prompt_log: PromptLog
    transcript: SessionTranscript
    router_texts: Dict[str, str] = field(default_factory=dict)
    global_check: Optional[GlobalCheckResult] = None
    findings_seen: List[Finding] = field(default_factory=list)

    @property
    def leverage(self) -> float:
        return self.prompt_log.leverage()


class _CorrectionLoop:
    """Shared punt-or-prompt engine for both orchestrators."""

    def __init__(
        self,
        llm: LLMClient,
        human: Optional[HumanAgent],
        humanizer: Humanizer,
        limits: LoopLimits,
        log: PromptLog,
        transcript: SessionTranscript,
        findings_seen: List[Finding],
        pair_programming: bool = False,
    ) -> None:
        self._llm = llm
        self._human = human
        self._humanizer = humanizer
        self._limits = limits
        self._log = log
        self._transcript = transcript
        self._findings_seen = findings_seen
        self._attempts: Dict[tuple, int] = {}
        self._pair_programming = pair_programming

    def correction_count(self) -> int:
        return self._log.automated + self._log.human

    def budget_exhausted(self) -> bool:
        return self.correction_count() >= self._limits.max_correction_prompts

    def handle(self, finding: Finding, router: str = "") -> str:
        """Prompt about one finding; returns the LLM's new draft."""
        self._findings_seen.append(finding)
        stage = finding.category.value
        self._transcript.record("verify", stage, finding.message, router)
        signature = (router, finding.category, finding.message)
        attempts = self._attempts.get(signature, 0)
        generated_prompt = self._humanizer.humanize(finding)
        if self._pair_programming:
            # Figure 1 ablation: no verifier-to-LLM automation; the human
            # does every check and correction personally.  After the same
            # number of fruitless formulaic tries, the human figures out
            # the targeted prompt themselves (still manual effort).
            if (
                attempts >= self._limits.attempts_per_finding
                and self._human is not None
            ):
                manual_prompt = self._human.respond(finding, generated_prompt)
                self._attempts[signature] = 0
                self._log.add(PromptKind.HUMAN, stage, manual_prompt, router)
                return self._llm.send(manual_prompt)
            self._attempts[signature] = attempts + 1
            self._log.add(PromptKind.HUMAN, stage, generated_prompt, router)
            return self._llm.send(generated_prompt)
        if attempts >= self._limits.attempts_per_finding and self._human is not None:
            manual_prompt = self._human.respond(finding, generated_prompt)
            self._transcript.record("punt", stage, finding.message, router)
            self._log.add(PromptKind.HUMAN, stage, manual_prompt, router)
            self._attempts[signature] = 0
            return self._llm.send(manual_prompt)
        self._log.add(PromptKind.AUTOMATED, stage, generated_prompt, router)
        self._attempts[signature] = attempts + 1
        return self._llm.send(generated_prompt)


class TranslationOrchestrator:
    """Use case 1 (§3): translate one Cisco config to Juniper."""

    def __init__(
        self,
        source: RouterConfig,
        llm: LLMClient,
        human: Optional[HumanAgent] = None,
        limits: Optional[LoopLimits] = None,
        pair_programming: bool = False,
    ) -> None:
        self._source = source
        self._llm = llm
        self._human = human
        self._limits = limits or LoopLimits()
        self._humanizer = Humanizer()
        self._pair_programming = pair_programming

    def run(self, task_prompt: Optional[str] = None) -> TranslationRunResult:
        log = PromptLog()
        transcript = SessionTranscript()
        findings_seen: List[Finding] = []
        loop = _CorrectionLoop(
            self._llm,
            self._human,
            self._humanizer,
            self._limits,
            log,
            transcript,
            findings_seen,
            pair_programming=self._pair_programming,
        )
        prompt = task_prompt or DEFAULT_TRANSLATION_PROMPT
        log.add(PromptKind.INITIAL, "task", prompt)
        draft_text = self._llm.send(prompt)
        transcript.record("draft", "task", "initial translation draft")
        while not loop.budget_exhausted():
            finding = self._next_finding(draft_text)
            if finding is None:
                transcript.record(
                    "verified", "global", "Batfish and Campion report no errors"
                )
                return TranslationRunResult(
                    verified=True,
                    prompt_log=log,
                    transcript=transcript,
                    final_text=draft_text,
                    findings_seen=findings_seen,
                )
            draft_text = loop.handle(finding)
        transcript.record("abandoned", "global", "correction budget exhausted")
        return TranslationRunResult(
            verified=False,
            prompt_log=log,
            transcript=transcript,
            final_text=draft_text,
            findings_seen=findings_seen,
        )

    def _next_finding(self, draft_text: str) -> Optional[Finding]:
        """Syntax first, then Campion's masked-ordering classes."""
        parsed = parse_juniper(draft_text, filename="translation.conf")
        if parsed.warnings:
            return finding_from_warning(parsed.warnings[0])
        report = compare_configs(self._source, parsed.config)
        raw = report.first_finding()
        if raw is None:
            return None
        return _wrap_campion_finding(raw)


class SynthesisOrchestrator:
    """Use case 2 (§4): synthesize no-transit configs per router."""

    def __init__(
        self,
        topology: Topology,
        models: Dict[str, LLMClient],
        human: Optional[HumanAgent] = None,
        limits: Optional[LoopLimits] = None,
        iip_database: Optional[IIPDatabase] = None,
        iip_ids: Sequence[str] = (),
        pair_programming: bool = False,
        global_checker: "Optional[IncrementalGlobalChecker]" = None,
    ) -> None:
        self._topology = topology
        self._models = models
        self._human = human
        self._limits = limits or LoopLimits()
        self._humanizer = Humanizer()
        self._iip_database = iip_database or IIPDatabase()
        self._iip_ids = list(iip_ids)
        self._modularizer = Modularizer(topology)
        self._pair_programming = pair_programming
        # An owned checker turns repeated runs over the same topology
        # into incremental re-simulations driven by *explicit* deltas:
        # the loop already knows which routers' texts changed since its
        # previous global check, so no config fingerprinting is needed.
        self._global_checker = global_checker
        self._last_router_texts: Optional[Dict[str, str]] = None

    def run(self) -> SynthesisRunResult:
        log = PromptLog()
        transcript = SessionTranscript()
        findings_seen: List[Finding] = []
        composer = Composer(name=self._topology.name)
        verified = True
        for router_name in self._topology.router_names():
            llm = self._models[router_name]
            loop = _CorrectionLoop(
                llm,
                self._human,
                self._humanizer,
                self._limits,
                log,
                transcript,
                findings_seen,
                pair_programming=self._pair_programming,
            )
            text = self._start_router_chat(router_name, llm, log, transcript)
            while not loop.budget_exhausted():
                finding = self._next_finding(router_name, text)
                if finding is None:
                    transcript.record(
                        "verified", "semantic", "router verifies", router_name
                    )
                    break
                text = loop.handle(finding, router=router_name)
            else:
                transcript.record(
                    "abandoned", "global", "budget exhausted", router_name
                )
                verified = False
            composer.put(router_name, text)
        snapshot = composer.compose()
        global_check = self._final_global_check(snapshot, transcript)
        verified = verified and global_check.holds
        return SynthesisRunResult(
            verified=verified,
            prompt_log=log,
            transcript=transcript,
            router_texts={
                name: snapshot.texts[f"{name}.cfg"]
                for name in self._topology.router_names()
            },
            global_check=global_check,
            findings_seen=findings_seen,
        )

    # -- internals ----------------------------------------------------------------

    def _start_router_chat(
        self,
        router_name: str,
        llm: LLMClient,
        log: PromptLog,
        transcript: SessionTranscript,
    ) -> str:
        preamble = self._iip_database.compose_preamble(self._iip_ids)
        task = self._modularizer.router_task_prompt(router_name)
        prompt = f"{preamble}\n\n{task}" if preamble else task
        log.add(PromptKind.INITIAL, "task", prompt, router_name)
        text = llm.send(prompt)
        transcript.record("draft", "task", "initial config draft", router_name)
        return text

    def _next_finding(self, router_name: str, text: str) -> Optional[Finding]:
        """Syntax, then topology, then semantic — §4.1's three classes."""
        parsed = parse_cisco(text, filename=f"{router_name}.cfg")
        if parsed.warnings:
            return finding_from_warning(parsed.warnings[0], router=router_name)
        config = parsed.config
        if not config.hostname:
            config.hostname = router_name
        spec = self._topology.router(router_name)
        issues = verify_topology(config, spec)
        if issues:
            issue = issues[0]
            return Finding(
                category=ErrorCategory.TOPOLOGY,
                message=issue.message,
                router=router_name,
                detail=issue,
            )
        invariants = self._modularizer.local_invariants(router_name)
        violations = verify_invariants({router_name: config}, invariants)
        if violations:
            violation = violations[0]
            return Finding(
                category=ErrorCategory.SEMANTIC,
                message=violation.message,
                router=router_name,
                detail=violation,
            )
        non_additive = _non_additive_finding(config, router_name)
        if non_additive is not None:
            return non_additive
        return None

    def _final_global_check(
        self, snapshot: Snapshot, transcript: SessionTranscript
    ) -> GlobalCheckResult:
        configs = {
            config.hostname: config for config in snapshot.configs.values()
        }
        texts = {
            name: snapshot.texts[f"{name}.cfg"]
            for name in self._topology.router_names()
        }
        changed_routers = None
        if self._global_checker is not None and self._last_router_texts is not None:
            # The loop's own delta: routers whose final text differs
            # from the previous run's — compared directly on the texts
            # in hand, no re-rendering or hashing.
            changed_routers = {
                name
                for name in set(texts) | set(self._last_router_texts)
                if texts.get(name) != self._last_router_texts.get(name)
            }
        result = check_global_no_transit(
            configs,
            self._topology,
            checker=self._global_checker,
            changed_routers=changed_routers,
        )
        if self._global_checker is not None:
            self._last_router_texts = texts
        sim_stats = last_global_sim_stats()
        message = result.describe()
        if sim_stats is not None and sim_stats.incremental:
            message += (
                f" (incremental re-simulation: {sim_stats.dirty_routers} "
                f"changed router(s), {sim_stats.reused_entries} RIB "
                f"entries reused)"
            )
        transcript.record(
            "verify",
            "global",
            message,
        )
        return result


def _wrap_campion_finding(raw: object) -> Finding:
    if isinstance(raw, StructuralMismatch):
        category = ErrorCategory.STRUCTURAL
    elif isinstance(raw, AttributeDifference):
        category = ErrorCategory.ATTRIBUTE
    elif isinstance(raw, PolicyBehaviorFinding):
        category = ErrorCategory.POLICY
    else:
        raise TypeError(f"unexpected Campion finding: {type(raw).__name__}")
    return Finding(category=category, message=raw.describe(), detail=raw)


def _non_additive_finding(
    config: RouterConfig, router_name: str
) -> Optional[Finding]:
    """Detect community replacement in import-attached maps (§4.2's
    "Adding Communities" pitfall — it silently strips earlier tags)."""
    if config.bgp is None:
        return None
    import_maps = {
        neighbor.import_policy
        for neighbor in config.bgp.neighbors.values()
        if neighbor.import_policy is not None
    }
    for name in sorted(filter(None, import_maps)):
        route_map = config.get_route_map(name)
        if route_map is None:
            continue
        for clause in route_map.clauses:
            for action in clause.sets:
                if isinstance(action, SetCommunity) and not action.additive:
                    return Finding(
                        category=ErrorCategory.SEMANTIC,
                        message=(
                            f"The route-map {name} sets a community "
                            f"non-additively, replacing all communities "
                            f"already present on the route. Use the "
                            f"'additive' keyword when adding a community."
                        ),
                        router=router_name,
                        detail=route_map,
                    )
    return None
