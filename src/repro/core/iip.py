"""Initial Instruction Prompts (IIPs).

§2: "We start each chat with a set of initial instruction prompts (IIP)
loaded from a database for avoiding common mistakes.  The IIP database
can be built and added by experts over time."  §4.2 documents the four
IIPs the synthesis experiment needed; they ship here as the default
database content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = ["DEFAULT_IIP_IDS", "IIPDatabase", "InitialInstructionPrompt"]


@dataclass(frozen=True)
class InitialInstructionPrompt:
    """One reusable instruction added to the start of a chat."""

    iip_id: str
    title: str
    text: str


_BUILTIN_IIPS = (
    InitialInstructionPrompt(
        iip_id="generate-cfg-files",
        title="Generate .cfg files, not CLI sessions",
        text=(
            "Generate the contents of the router's .cfg configuration "
            "file directly. Do not produce commands to be entered on the "
            "Cisco command line interface."
        ),
    ),
    InitialInstructionPrompt(
        iip_id="no-cli-keywords",
        title="Avoid interactive keywords",
        text=(
            "Do not use the keywords 'exit', 'end', 'configure terminal', "
            "'ip routing', 'write', 'hostname' or 'conf t' anywhere in the "
            "configuration."
        ),
    ),
    InitialInstructionPrompt(
        iip_id="match-via-community-list",
        title="Match communities through a community list",
        text=(
            "To match against a community in a route-map, first declare a "
            "community list that contains the community (ip community-list "
            "1 permit 100:1) and then match using only that list (match "
            "community 1). Never match a literal community value directly."
        ),
    ),
    InitialInstructionPrompt(
        iip_id="additive-keyword",
        title="Add communities additively",
        text=(
            "When adding a community to a route, always use the 'additive' "
            "keyword (set community 100:1 additive); otherwise all "
            "communities already on the route are replaced."
        ),
    ),
)

DEFAULT_IIP_IDS = tuple(item.iip_id for item in _BUILTIN_IIPS)


class IIPDatabase:
    """The expert-curated store of initial instruction prompts."""

    def __init__(self, include_builtin: bool = True) -> None:
        self._prompts: Dict[str, InitialInstructionPrompt] = {}
        if include_builtin:
            for prompt in _BUILTIN_IIPS:
                self._prompts[prompt.iip_id] = prompt

    def register(self, prompt: InitialInstructionPrompt) -> None:
        """Add (or replace) an IIP — the database grows over time."""
        self._prompts[prompt.iip_id] = prompt

    def get(self, iip_id: str) -> Optional[InitialInstructionPrompt]:
        return self._prompts.get(iip_id)

    def ids(self) -> List[str]:
        return sorted(self._prompts)

    def compose_preamble(self, iip_ids: Optional[Iterable[str]] = None) -> str:
        """The instruction block prepended to a chat's first prompt."""
        selected = list(iip_ids) if iip_ids is not None else self.ids()
        lines = []
        for iip_id in selected:
            prompt = self._prompts.get(iip_id)
            if prompt is None:
                raise KeyError(f"unknown IIP {iip_id!r}")
            lines.append(f"- {prompt.text}")
        if not lines:
            return ""
        return "Follow these instructions:\n" + "\n".join(lines)
