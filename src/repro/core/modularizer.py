"""The Modularizer (§2, Figure 3).

"The Modularizer outputs a sequence of Natural Language Prompts that
describes the topology to GPT-4 ... The Modularizer can also take a
general specification of local policies (e.g. edge routers add a
specific community on ingress) and output a specific local specification
for each router for the semantic verifier."

Concretely: per-router task prompts for the synthesis use case, plus the
per-router slice of the no-transit local invariants.
"""

from __future__ import annotations

from typing import List, Optional

from ..lightyear.invariants import no_transit_invariants
from ..topology.generator import ingress_community
from ..topology.model import Topology

__all__ = ["Modularizer"]

_GLOBAL_POLICY = (
    "The goal is a no-transit policy: no two ISPs should be able to reach "
    "each other through this network, but all ISPs must be able to reach "
    "the CUSTOMER and vice versa."
)


class Modularizer:
    """Decomposes the network-wide task into per-router prompts/specs."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    # -- prompts ------------------------------------------------------------

    def global_task_prompt(self) -> str:
        """The (inferior, §4.1) single global prompt — used only by the
        local-vs-global comparison experiment."""
        return (
            f"{_GLOBAL_POLICY}\n\nGenerate Cisco configuration files for "
            f"all routers of the following network.\n"
            f"{self._describe_topology()}"
        )

    def router_task_prompt(self, router_name: str) -> str:
        """The per-router prompt: role sentence + local topology + local
        policy (for the hub)."""
        router = self._topology.router(router_name)
        parts: List[str] = [
            _GLOBAL_POLICY,
            f"Generate the Cisco configuration file for router "
            f"{router_name} only.",
            self._router_context(router_name),
        ]
        policy = self._local_policy_text(router_name)
        if policy:
            parts.append(policy)
        networks = ", ".join(str(prefix) for prefix in router.networks)
        parts.append(
            f"{router_name} uses AS number {router.asn}, router-id "
            f"{router.router_id}, and must announce the networks {networks}."
        )
        return "\n".join(parts)

    def _router_context(self, router_name: str) -> str:
        router = self._topology.router(router_name)
        sentences = []
        for spec in router.interfaces:
            sentences.append(
                f"Interface {spec.name} has address {spec.address} on "
                f"subnet {spec.prefix}."
            )
        for neighbor in router.neighbors:
            label = f" ({neighbor.peer_name})" if neighbor.peer_name else ""
            sentences.append(
                f"Declare a BGP neighbor {neighbor.ip}{label} in AS "
                f"{neighbor.asn}."
            )
        return " ".join(sentences)

    def _local_policy_text(self, router_name: str) -> str:
        from ..topology.families import is_hub_star
        from ..topology.roles import RoleAssignment

        if is_hub_star(self._topology):
            if router_name != "R1":
                return ""
            clauses = []
            for name in self._topology.router_names():
                if name == "R1":
                    continue
                index = int(name[1:])
                tag = ingress_community(index)
                clauses.append(
                    f"add community {tag} (additively) to every route received "
                    f"from {name}"
                )
            filters = (
                "at the egress to each ISP router, deny any route that carries "
                "the community added for a different ISP router, and permit "
                "everything else"
            )
            return (
                "Local policy for R1: " + "; ".join(clauses) + "; and "
                + filters + "."
            )
        roles = RoleAssignment.from_topology(self._topology)
        mine = roles.attachments_of(router_name)
        if not mine:
            return ""
        clauses = []
        for attachment in mine:
            tag = ingress_community(attachment.index)
            interface = self._topology.router(router_name).interface(
                attachment.peer.interface
            )
            subnet = (
                interface.prefix if interface is not None else "its subnet"
            )
            others = ", ".join(
                str(ingress_community(index))
                for index in roles.indices()
                if index != attachment.index
            )
            clauses.append(
                f"add community {tag} (additively) to every route received "
                f"from {attachment.role_name}; when exporting to the "
                f"internal neighbors, add community {tag} (additively) to "
                f"routes of {attachment.role_name}'s subnet {subnet}, "
                f"matched via a prefix-list; at the egress to "
                f"{attachment.role_name}, deny any route that carries one "
                f"of the other ISP communities ({others}) and permit "
                f"everything else"
            )
        return f"Local policy for {router_name}: " + "; ".join(clauses) + "."

    def _describe_topology(self) -> str:
        from ..topology.generator import _describe

        return _describe(self._topology)

    # -- local specifications ---------------------------------------------------

    def local_invariants(self, router_name: Optional[str] = None) -> List[object]:
        """The per-router slice of the global spec for the semantic
        verifier (on the hub R1 for the star; on each ISP-attached
        border router for the other families)."""
        invariants = no_transit_invariants(self._topology)
        if router_name is None:
            return invariants
        return [item for item in invariants if item.router == router_name]
