"""Verification of local invariants against parsed configs.

Violations carry a concrete counterexample route, phrased the way
Table 3's semantic-error prompt is ("The route-map DROP_COMMUNITY
permits routes that have the community 100:1. However, they should be
denied.").

Each checker binds its route map to the config once
(:meth:`~repro.netmodel.routing_policy.RouteMap.prepare`) and walks the
memoized candidate grid through the prepared evaluator, so the per-route
cost is pure evaluation — no repeated name resolution.

Checks are memoized per (invariant, canonicalized route-map structure):
the synthesis loop re-verifies every router after each correction
round, and campaign grids repeat the same reference shapes across
seeds and profiles, so most checks are repeats of a question already
answered.  The canonical key resolves named lists through the config
(see :func:`repro.symbolic.canonical_route_map_key`), so a cache hit is
guaranteed to denote a semantically identical check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netmodel.device import RouterConfig
from ..netmodel.route import Route
from ..netmodel.routing_policy import Action, PolicyEvaluationError, RouteMap
from ..symbolic import CandidateUniverse, RouteConstraint, canonical_route_map_key
from ..symbolic.memo import MemoCache
from .invariants import (
    EgressFilterInvariant,
    EgressPrependInvariant,
    IngressTagInvariant,
)

__all__ = ["InvariantViolation", "verify_invariant", "verify_invariants"]

# (invariant, canonical policy key) -> Optional[InvariantViolation]
_VERDICT_CACHE = MemoCache("invariant-verdict")


@dataclass(frozen=True)
class InvariantViolation:
    """One local-invariant failure with its witness route."""

    invariant: object
    router: str
    policy_name: str
    witness: Route
    message: str

    def describe(self) -> str:
        return self.message


def verify_invariants(
    configs: "dict[str, RouterConfig]", invariants: List[object]
) -> List[InvariantViolation]:
    """Check every invariant, returning all violations found."""
    violations: List[InvariantViolation] = []
    for invariant in invariants:
        config = configs.get(invariant.router)
        if config is None:
            violations.append(
                InvariantViolation(
                    invariant=invariant,
                    router=invariant.router,
                    policy_name="",
                    witness=Route(prefix=_placeholder_prefix()),
                    message=f"router {invariant.router} has no configuration",
                )
            )
            continue
        violation = verify_invariant(config, invariant)
        if violation is not None:
            violations.append(violation)
    return violations


def verify_invariant(
    config: RouterConfig, invariant: object
) -> Optional[InvariantViolation]:
    """Check one invariant; ``None`` means it holds."""
    checker = _CHECKERS.get(type(invariant))
    if checker is None:
        raise TypeError(f"unknown invariant type: {type(invariant).__name__}")
    route_map, name = _attached_policy(
        config, invariant.neighbor_ip, invariant.direction
    )
    if route_map is None:
        return _missing_policy_violation(invariant, name)
    policy_key = canonical_route_map_key(config, route_map)
    if policy_key is None:
        return checker(config, route_map, invariant)
    key = (invariant, policy_key)
    hit, verdict = _VERDICT_CACHE.lookup(key)
    if hit:
        return verdict
    verdict = checker(config, route_map, invariant)
    _VERDICT_CACHE.store(key, verdict)
    return verdict


def _attached_policy(
    config: RouterConfig, neighbor_ip, direction: str
) -> "tuple[Optional[RouteMap], str]":
    if config.bgp is None:
        return None, ""
    neighbor = config.bgp.get_neighbor(neighbor_ip)
    if neighbor is None:
        return None, ""
    name = (
        neighbor.import_policy if direction == "import" else neighbor.export_policy
    )
    if name is None:
        return None, ""
    return config.get_route_map(name), name


def _missing_policy_violation(
    invariant: object, policy_name: str
) -> InvariantViolation:
    """The "no route-map attached" violation, phrased per invariant."""
    if isinstance(invariant, IngressTagInvariant):
        message = (
            f"No import route-map is attached for neighbor "
            f"{invariant.neighbor_ip} on {invariant.router}, so routes "
            f"are not tagged with the community {invariant.community}"
        )
    elif isinstance(invariant, EgressFilterInvariant):
        message = (
            f"No export route-map is attached for neighbor "
            f"{invariant.neighbor_ip} on {invariant.router}, so tagged "
            f"routes are not filtered"
        )
    else:
        message = (
            f"No export route-map is attached for neighbor "
            f"{invariant.neighbor_ip} on {invariant.router}, so routes "
            f"are exported without the AS-path prepend"
        )
    return InvariantViolation(
        invariant=invariant,
        router=invariant.router,
        policy_name=policy_name,
        witness=Route(prefix=_placeholder_prefix()),
        message=message,
    )


def _verify_ingress_tag(
    config: RouterConfig,
    route_map: RouteMap,
    invariant: IngressTagInvariant,
) -> Optional[InvariantViolation]:
    universe = CandidateUniverse.for_policy(config, route_map)
    evaluate = route_map.prepare(config).evaluate
    for route in universe.cached_routes():
        try:
            outcome = evaluate(route)
        except PolicyEvaluationError:
            continue
        if outcome.action is Action.PERMIT and (
            invariant.community not in outcome.route.communities
        ):
            return InvariantViolation(
                invariant=invariant,
                router=invariant.router,
                policy_name=route_map.name,
                witness=route,
                message=(
                    f"The route-map {route_map.name} permits the route "
                    f"[{route.describe()}] without adding the community "
                    f"{invariant.community}. However, every route accepted "
                    f"from neighbor {invariant.neighbor_ip} should carry it."
                ),
            )
    return None


def _verify_egress_filter(
    config: RouterConfig,
    route_map: RouteMap,
    invariant: EgressFilterInvariant,
) -> Optional[InvariantViolation]:
    evaluate = route_map.prepare(config).evaluate
    for community in sorted(invariant.forbidden):
        constraint = RouteConstraint.with_community(community)
        universe = CandidateUniverse.for_policy(config, route_map)
        universe.add_constraint(constraint)
        for route in universe.cached_routes(constraint):
            try:
                outcome = evaluate(route)
            except PolicyEvaluationError:
                continue
            if outcome.action is Action.PERMIT:
                return InvariantViolation(
                    invariant=invariant,
                    router=invariant.router,
                    policy_name=route_map.name,
                    witness=route,
                    message=(
                        f"The route-map {route_map.name} permits routes that "
                        f"have the community {community}. However, they "
                        f"should be denied."
                    ),
                )
    return None


def _verify_egress_prepend(
    config: RouterConfig,
    route_map: RouteMap,
    invariant: EgressPrependInvariant,
) -> Optional[InvariantViolation]:
    expected = (invariant.asn,) * invariant.count
    universe = CandidateUniverse.for_policy(config, route_map)
    evaluate = route_map.prepare(config).evaluate
    for route in universe.cached_routes():
        try:
            outcome = evaluate(route)
        except PolicyEvaluationError:
            continue
        if outcome.action is not Action.PERMIT:
            continue
        added = outcome.route.as_path.asns[
            : len(outcome.route.as_path.asns) - len(route.as_path.asns)
        ]
        if added != expected:
            found = len([asn for asn in added if asn == invariant.asn])
            return InvariantViolation(
                invariant=invariant,
                router=invariant.router,
                policy_name=route_map.name,
                witness=route,
                message=(
                    f"The route-map {route_map.name} exports the route "
                    f"[{route.describe()}] with AS {invariant.asn} prepended "
                    f"{found} time(s). However, it must be prepended "
                    f"{invariant.count} time(s)."
                ),
            )
    return None


_CHECKERS = {
    IngressTagInvariant: _verify_ingress_tag,
    EgressFilterInvariant: _verify_egress_filter,
    EgressPrependInvariant: _verify_egress_prepend,
}


def _placeholder_prefix():
    from ..netmodel.ip import Prefix

    return Prefix.parse("0.0.0.0/0")
