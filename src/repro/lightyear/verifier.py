"""Verification of local invariants against parsed configs.

Violations carry a concrete counterexample route, phrased the way
Table 3's semantic-error prompt is ("The route-map DROP_COMMUNITY
permits routes that have the community 100:1. However, they should be
denied.").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netmodel.device import RouterConfig
from ..netmodel.route import Route
from ..netmodel.routing_policy import Action, PolicyEvaluationError, RouteMap
from ..symbolic import CandidateUniverse, RouteConstraint
from .invariants import (
    EgressFilterInvariant,
    EgressPrependInvariant,
    IngressTagInvariant,
)

__all__ = ["InvariantViolation", "verify_invariant", "verify_invariants"]


@dataclass(frozen=True)
class InvariantViolation:
    """One local-invariant failure with its witness route."""

    invariant: object
    router: str
    policy_name: str
    witness: Route
    message: str

    def describe(self) -> str:
        return self.message


def verify_invariants(
    configs: "dict[str, RouterConfig]", invariants: List[object]
) -> List[InvariantViolation]:
    """Check every invariant, returning all violations found."""
    violations: List[InvariantViolation] = []
    for invariant in invariants:
        config = configs.get(invariant.router)
        if config is None:
            violations.append(
                InvariantViolation(
                    invariant=invariant,
                    router=invariant.router,
                    policy_name="",
                    witness=Route(prefix=_placeholder_prefix()),
                    message=f"router {invariant.router} has no configuration",
                )
            )
            continue
        violation = verify_invariant(config, invariant)
        if violation is not None:
            violations.append(violation)
    return violations


def verify_invariant(
    config: RouterConfig, invariant: object
) -> Optional[InvariantViolation]:
    """Check one invariant; ``None`` means it holds."""
    if isinstance(invariant, IngressTagInvariant):
        return _verify_ingress_tag(config, invariant)
    if isinstance(invariant, EgressFilterInvariant):
        return _verify_egress_filter(config, invariant)
    if isinstance(invariant, EgressPrependInvariant):
        return _verify_egress_prepend(config, invariant)
    raise TypeError(f"unknown invariant type: {type(invariant).__name__}")


def _attached_policy(
    config: RouterConfig, neighbor_ip, direction: str
) -> "tuple[Optional[RouteMap], str]":
    if config.bgp is None:
        return None, ""
    neighbor = config.bgp.get_neighbor(neighbor_ip)
    if neighbor is None:
        return None, ""
    name = (
        neighbor.import_policy if direction == "import" else neighbor.export_policy
    )
    if name is None:
        return None, ""
    return config.get_route_map(name), name


def _verify_ingress_tag(
    config: RouterConfig, invariant: IngressTagInvariant
) -> Optional[InvariantViolation]:
    route_map, name = _attached_policy(config, invariant.neighbor_ip, "import")
    if route_map is None:
        return InvariantViolation(
            invariant=invariant,
            router=invariant.router,
            policy_name=name,
            witness=Route(prefix=_placeholder_prefix()),
            message=(
                f"No import route-map is attached for neighbor "
                f"{invariant.neighbor_ip} on {invariant.router}, so routes "
                f"are not tagged with the community {invariant.community}"
            ),
        )
    universe = CandidateUniverse()
    universe.add_policy(config, route_map)
    for route in universe.routes():
        try:
            outcome = route_map.evaluate(route, config)
        except PolicyEvaluationError:
            continue
        if outcome.action is Action.PERMIT and (
            invariant.community not in outcome.route.communities
        ):
            return InvariantViolation(
                invariant=invariant,
                router=invariant.router,
                policy_name=route_map.name,
                witness=route,
                message=(
                    f"The route-map {route_map.name} permits the route "
                    f"[{route.describe()}] without adding the community "
                    f"{invariant.community}. However, every route accepted "
                    f"from neighbor {invariant.neighbor_ip} should carry it."
                ),
            )
    return None


def _verify_egress_filter(
    config: RouterConfig, invariant: EgressFilterInvariant
) -> Optional[InvariantViolation]:
    route_map, name = _attached_policy(config, invariant.neighbor_ip, "export")
    if route_map is None:
        return InvariantViolation(
            invariant=invariant,
            router=invariant.router,
            policy_name=name,
            witness=Route(prefix=_placeholder_prefix()),
            message=(
                f"No export route-map is attached for neighbor "
                f"{invariant.neighbor_ip} on {invariant.router}, so tagged "
                f"routes are not filtered"
            ),
        )
    for community in sorted(invariant.forbidden):
        constraint = RouteConstraint.with_community(community)
        universe = CandidateUniverse()
        universe.add_policy(config, route_map)
        universe.add_constraint(constraint)
        for route in universe.routes(constraint):
            try:
                outcome = route_map.evaluate(route, config)
            except PolicyEvaluationError:
                continue
            if outcome.action is Action.PERMIT:
                return InvariantViolation(
                    invariant=invariant,
                    router=invariant.router,
                    policy_name=route_map.name,
                    witness=route,
                    message=(
                        f"The route-map {route_map.name} permits routes that "
                        f"have the community {community}. However, they "
                        f"should be denied."
                    ),
                )
    return None


def _verify_egress_prepend(
    config: RouterConfig, invariant: EgressPrependInvariant
) -> Optional[InvariantViolation]:
    route_map, name = _attached_policy(config, invariant.neighbor_ip, "export")
    if route_map is None:
        return InvariantViolation(
            invariant=invariant,
            router=invariant.router,
            policy_name=name,
            witness=Route(prefix=_placeholder_prefix()),
            message=(
                f"No export route-map is attached for neighbor "
                f"{invariant.neighbor_ip} on {invariant.router}, so routes "
                f"are exported without the AS-path prepend"
            ),
        )
    expected = (invariant.asn,) * invariant.count
    universe = CandidateUniverse()
    universe.add_policy(config, route_map)
    for route in universe.routes():
        try:
            outcome = route_map.evaluate(route, config)
        except PolicyEvaluationError:
            continue
        if outcome.action is not Action.PERMIT:
            continue
        added = outcome.route.as_path.asns[
            : len(outcome.route.as_path.asns) - len(route.as_path.asns)
        ]
        if added != expected:
            found = len([asn for asn in added if asn == invariant.asn])
            return InvariantViolation(
                invariant=invariant,
                router=invariant.router,
                policy_name=route_map.name,
                witness=route,
                message=(
                    f"The route-map {route_map.name} exports the route "
                    f"[{route.describe()}] with AS {invariant.asn} prepended "
                    f"{found} time(s). However, it must be prepended "
                    f"{invariant.count} time(s)."
                ),
            )
    return None


def _placeholder_prefix():
    from ..netmodel.ip import Prefix

    return Prefix.parse("0.0.0.0/0")
