"""Local policy invariants in the style of Lightyear.

§4.1: "the policy is that R1 should add a specific community at the
ingress to each ISP and then drop routes based on those communities at
the egress to each ISP."  Each obligation is a *local* invariant on one
route map of one router — which is what makes verification feedback
actionable ("it allowed us to localize verification errors to specific
routers and specific route maps within those routers").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from ..netmodel.communities import Community
from ..netmodel.ip import Ipv4Address
from ..topology.generator import ingress_community
from ..topology.model import Topology

__all__ = [
    "EgressFilterInvariant",
    "EgressPrependInvariant",
    "IngressTagInvariant",
    "LocalInvariant",
    "no_transit_invariants",
]


@dataclass(frozen=True)
class IngressTagInvariant:
    """Every route the import policy admits must carry ``community``."""

    router: str
    neighbor_ip: Ipv4Address
    community: Community

    @property
    def direction(self) -> str:
        return "import"

    def describe(self) -> str:
        return (
            f"on {self.router}, every route accepted from neighbor "
            f"{self.neighbor_ip} must carry the community {self.community}"
        )


@dataclass(frozen=True)
class EgressFilterInvariant:
    """No route carrying any forbidden community may be exported."""

    router: str
    neighbor_ip: Ipv4Address
    forbidden: FrozenSet[Community]

    @property
    def direction(self) -> str:
        return "export"

    def describe(self) -> str:
        rendered = ", ".join(sorted(str(item) for item in self.forbidden))
        return (
            f"on {self.router}, routes carrying any of the communities "
            f"{{{rendered}}} must be denied at the egress to neighbor "
            f"{self.neighbor_ip}"
        )


@dataclass(frozen=True)
class EgressPrependInvariant:
    """Every exported route must have ``asn`` prepended ``count`` times.

    Used by the incremental-policy extension (the paper's §6 question:
    "Can GPT-4 add a new policy incrementally without interfering with
    existing verified policy?") — a traffic-engineering depref expressed
    as a new local invariant alongside the existing no-transit ones.
    """

    router: str
    neighbor_ip: Ipv4Address
    asn: int
    count: int

    @property
    def direction(self) -> str:
        return "export"

    def describe(self) -> str:
        return (
            f"on {self.router}, every route exported to neighbor "
            f"{self.neighbor_ip} must have AS {self.asn} prepended "
            f"{self.count} time(s)"
        )


LocalInvariant = (
    "IngressTagInvariant | EgressFilterInvariant | EgressPrependInvariant"
)


def no_transit_invariants(topology: Topology) -> List[object]:
    """Derive the no-transit local invariants for any topology family.

    **Hub-shaped (star) topologies** concentrate the policy on R1: for
    each spoke ``Ri`` (i ≥ 2) with hub-side address ``a_i`` and ingress
    tag ``t_i``:

    * R1 must tag routes learned from ``a_i`` with ``t_i``;
    * R1 must drop routes carrying ``t_j`` (for every j ≠ i) at the
      egress toward ``a_i``.

    **Every other family** places the same obligations on the border:
    each ISP-attached router must tag routes arriving from its ISP with
    that ISP's community and drop routes carrying any other ISP's
    community at the egress back to its ISP.

    Either way the set implies the global policy: an ISP route is tagged
    on entry, tags are never removed, and tagged routes never exit
    toward a different ISP — while untagged customer routes flow
    everywhere.
    """
    from ..topology.families import is_hub_star
    from ..topology.roles import RoleAssignment

    if not is_hub_star(topology):
        return _border_invariants(RoleAssignment.from_topology(topology))
    hub = topology.router("R1")
    spokes: List[Tuple[int, Ipv4Address]] = []
    for index, name in enumerate(topology.router_names(), start=1):
        if name == "R1":
            continue
        hub_neighbor = next(
            (spec for spec in hub.neighbors if spec.peer_name == name), None
        )
        if hub_neighbor is None:
            continue
        spokes.append((index, hub_neighbor.ip))
    invariants: List[object] = []
    tags = {address: ingress_community(index) for index, address in spokes}
    for index, address in spokes:
        invariants.append(
            IngressTagInvariant(
                router="R1", neighbor_ip=address, community=tags[address]
            )
        )
        forbidden = frozenset(
            tag for other, tag in tags.items() if other != address
        )
        if forbidden:
            invariants.append(
                EgressFilterInvariant(
                    router="R1", neighbor_ip=address, forbidden=forbidden
                )
            )
    return invariants


def _border_invariants(roles) -> List[object]:
    """Border placement: obligations live on each transit-forbidden
    attachment's own external session.

    Tags are per *ISP*, not per attachment: every home of a multi-homed
    ISP tags with (and is identified by) the same community, and its
    egress filters forbid every *other* ISP's tag — an ISP's own routes
    may legitimately come back out of its other home.
    """
    invariants: List[object] = []
    tags = {
        index: ingress_community(index) for index in roles.indices()
    }
    for attachment in roles.transit_forbidden():
        invariants.append(
            IngressTagInvariant(
                router=attachment.router,
                neighbor_ip=attachment.peer.peer_ip,
                community=tags[attachment.index],
            )
        )
        forbidden = frozenset(
            tag
            for index, tag in tags.items()
            if index != attachment.index
        )
        if forbidden:
            invariants.append(
                EgressFilterInvariant(
                    router=attachment.router,
                    neighbor_ip=attachment.peer.peer_ip,
                    forbidden=forbidden,
                )
            )
    return invariants
