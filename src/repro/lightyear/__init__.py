"""Lightyear substitute: local policy invariants, their verification,
and the compositional argument that they imply the global policy."""

from .compose import (
    CompositionResult,
    GlobalCheckResult,
    IncrementalGlobalChecker,
    check_composition,
    check_global_no_transit,
    last_global_sim_stats,
    reset_simulation_states,
)
from .invariants import (
    EgressFilterInvariant,
    EgressPrependInvariant,
    IngressTagInvariant,
    no_transit_invariants,
)
from .verifier import InvariantViolation, verify_invariant, verify_invariants

__all__ = [
    "CompositionResult",
    "EgressFilterInvariant",
    "EgressPrependInvariant",
    "GlobalCheckResult",
    "IncrementalGlobalChecker",
    "IngressTagInvariant",
    "InvariantViolation",
    "check_composition",
    "check_global_no_transit",
    "last_global_sim_stats",
    "no_transit_invariants",
    "reset_simulation_states",
    "verify_invariant",
    "verify_invariants",
]
