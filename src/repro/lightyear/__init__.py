"""Lightyear substitute: local policy invariants, their verification,
and the compositional argument that they imply the global policy."""

from .compose import (
    CompositionResult,
    GlobalCheckResult,
    check_composition,
    check_global_no_transit,
)
from .invariants import (
    EgressFilterInvariant,
    EgressPrependInvariant,
    IngressTagInvariant,
    no_transit_invariants,
)
from .verifier import InvariantViolation, verify_invariant, verify_invariants

__all__ = [
    "CompositionResult",
    "EgressFilterInvariant",
    "EgressPrependInvariant",
    "GlobalCheckResult",
    "IngressTagInvariant",
    "InvariantViolation",
    "check_composition",
    "check_global_no_transit",
    "no_transit_invariants",
    "verify_invariant",
    "verify_invariants",
]
