"""Compositional argument: local invariants imply the global policy.

§4.1 closes the loop: "we simulate the entire BGP communication using
Batfish as a final step, in order to ensure that the global policy is
satisfied, though the proof technique of Lightyear could instead be used
to ensure that the local policies imply the global one."  This module
provides both: the structural composition check (every ISP pair is
covered by a tag/filter pair and no policy strips tags) and the
simulation-based global check.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..batfish.bgpsim import (
    BgpSimulation,
    ResimStats,
    SimulationState,
    incremental_simulation_enabled,
)
from ..netmodel.device import RouterConfig
from ..netmodel.ip import Prefix
from ..netmodel.routing_policy import (
    Action,
    PolicyEvaluationError,
    SetCommunity,
)
from ..topology.model import Topology
from .invariants import EgressFilterInvariant, IngressTagInvariant

__all__ = [
    "CompositionResult",
    "GlobalCheckResult",
    "IncrementalGlobalChecker",
    "check_composition",
    "check_global_no_transit",
    "last_global_sim_stats",
    "reset_simulation_states",
]


@dataclass
class CompositionResult:
    """Outcome of the structural Lightyear-style composition check."""

    covered_pairs: List[Tuple[str, str]] = field(default_factory=list)
    uncovered_pairs: List[Tuple[str, str]] = field(default_factory=list)
    tag_stripping_policies: List[str] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return not self.uncovered_pairs and not self.tag_stripping_policies

    def describe(self) -> str:
        if self.holds:
            return (
                f"local invariants cover all {len(self.covered_pairs)} "
                f"ISP pairs and no policy strips ingress tags: the global "
                f"no-transit policy follows"
            )
        problems = []
        if self.uncovered_pairs:
            rendered = ", ".join(f"{a}->{b}" for a, b in self.uncovered_pairs)
            problems.append(f"uncovered ISP pairs: {rendered}")
        if self.tag_stripping_policies:
            problems.append(
                "policies replace communities non-additively: "
                + ", ".join(self.tag_stripping_policies)
            )
        return "; ".join(problems)


def check_composition(
    invariants: List[object],
    configs: Dict[str, RouterConfig],
    topology: Topology,
) -> CompositionResult:
    """Verify the invariant *set* suffices for global no-transit.

    The argument needs (1) every ordered pair of attachments belonging
    to *different* ISPs to have an ingress tag at the source and an
    egress filter at the destination forbidding the source's tag, and
    (2) no route-map between the tagging point and the filtering point
    to replace communities non-additively (which would strip the tag
    and void the argument).  Two homes of a multi-homed ISP are the
    same party, so their mutual pairs need no coverage — the role
    assignment supplies that grouping (single-homed attachments and the
    star's spoke addresses each form their own group, preserving the
    classic every-pair reading).
    """
    from ..topology.roles import RoleAssignment

    result = CompositionResult()
    groups = {
        str(attachment.peer.peer_ip): f"isp-{attachment.index}"
        for attachment in RoleAssignment.from_topology(
            topology
        ).transit_forbidden()
    }
    tags = {
        str(invariant.neighbor_ip): invariant.community
        for invariant in invariants
        if isinstance(invariant, IngressTagInvariant)
    }
    filters = {
        str(invariant.neighbor_ip): invariant.forbidden
        for invariant in invariants
        if isinstance(invariant, EgressFilterInvariant)
    }
    addresses = sorted(set(tags) | set(filters))
    for source in addresses:
        for destination in addresses:
            if source == destination:
                continue
            if groups.get(source, source) == groups.get(
                destination, destination
            ):
                continue  # same ISP's homes: transit between them is fine
            tag = tags.get(source)
            forbidden = filters.get(destination, frozenset())
            if tag is not None and tag in forbidden:
                result.covered_pairs.append((source, destination))
            else:
                result.uncovered_pairs.append((source, destination))
    for hostname, config in sorted(configs.items()):
        for route_map in config.route_maps.values():
            for clause in route_map.clauses:
                for set_action in clause.sets:
                    if isinstance(set_action, SetCommunity) and not set_action.additive:
                        result.tag_stripping_policies.append(
                            f"{hostname}:{route_map.name}"
                        )
    return result


@dataclass
class GlobalCheckResult:
    """Outcome of the simulation-based global no-transit check.

    ``role_verdicts`` maps each role label (``CUSTOMER``, ``ISP_3``,
    ``PEER_7``, ...) to whether *that role's* obligations held — the
    per-role reading of the same violations, populated by the
    role-assigned (border) checker.
    """

    transit_violations: List[str] = field(default_factory=list)
    customer_unreachable: List[str] = field(default_factory=list)
    isp_prefixes_missing_at_hub: List[str] = field(default_factory=list)
    role_verdicts: Dict[str, bool] = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        return not (
            self.transit_violations
            or self.customer_unreachable
            or self.isp_prefixes_missing_at_hub
        )

    def describe(self) -> str:
        if self.holds:
            return "BGP simulation confirms the global no-transit policy"
        return "; ".join(
            self.transit_violations
            + self.customer_unreachable
            + self.isp_prefixes_missing_at_hub
        )

    def describe_roles(self) -> str:
        """One line per role: ``CUSTOMER ok, ISP_2 ok, ISP_3 VIOLATED``."""
        if not self.role_verdicts:
            return "no role verdicts (hub-policy topology)"
        return ", ".join(
            f"{role} {'ok' if verdict else 'VIOLATED'}"
            for role, verdict in sorted(self.role_verdicts.items())
        )


# -- incremental global simulation ---------------------------------------------


def _config_fingerprints(configs: Dict[str, RouterConfig]) -> Dict[str, str]:
    """Canonical per-router fingerprints (rendered-config digests).

    Rendering round-trips losslessly (the fixed-point tests), so two
    configs with equal fingerprints are simulation-equivalent.
    """
    from ..cisco import generate_cisco

    return {
        name: hashlib.sha256(generate_cisco(config).encode("utf-8")).hexdigest()
        for name, config in configs.items()
    }


class IncrementalGlobalChecker:
    """A warm :class:`SimulationState` plus the config fingerprints it
    converged, so repeated global checks of the same network simulate
    only the routers that actually changed since the previous check."""

    def __init__(self) -> None:
        self._state = SimulationState()
        self._fingerprints: Optional[Dict[str, str]] = {}

    @property
    def last_stats(self) -> Optional[ResimStats]:
        return self._state.last_stats

    def simulate(
        self,
        configs: Dict[str, RouterConfig],
        changed_routers: "Optional[Set[str]]" = None,
    ) -> BgpSimulation:
        """Converge ``configs``, reusing warm state where valid.

        With an explicit ``changed_routers`` delta (every router whose
        config differs from the previous ``simulate`` call) the checker
        skips config fingerprinting entirely — the caller already knows
        what it changed.  Without one, the delta is derived by
        fingerprinting every config against the previous call's
        fingerprints.  Explicit and derived calls may be mixed: an
        explicit delta invalidates the stored fingerprints, so the next
        derived call conservatively falls back to a full convergence
        instead of trusting a stale baseline.
        """
        if changed_routers is not None and self._state.warm:
            self._fingerprints = None  # stale until re-derived
            self._state.resimulate(configs, changed_routers)
            return self._state.simulation
        fingerprints = _config_fingerprints(configs)
        if changed_routers is None and self._fingerprints:
            changed_routers = {
                name
                for name in set(fingerprints) | set(self._fingerprints)
                if fingerprints.get(name) != self._fingerprints.get(name)
            }
        self._state.resimulate(configs, changed_routers)
        self._fingerprints = fingerprints
        return self._state.simulation


_CHECKER_LIMIT = 8

# topology key -> warm checker; process-local, like the symbolic memo
# caches, so campaign workers stay fork-safe with zero coordination.
_CHECKERS: "OrderedDict[Tuple, IncrementalGlobalChecker]" = OrderedDict()

_LAST_SIM_STATS: Optional[ResimStats] = None


def reset_simulation_states() -> None:
    """Drop every warm simulation state (tests and benchmarks)."""
    global _LAST_SIM_STATS
    _CHECKERS.clear()
    _LAST_SIM_STATS = None


def last_global_sim_stats() -> Optional[ResimStats]:
    """How the most recent :func:`check_global_no_transit` converged."""
    return _LAST_SIM_STATS


def _topology_key(topology: Topology) -> Tuple:
    return (
        topology.name,
        tuple(topology.router_names()),
        tuple(
            (link.router_a, link.interface_a, link.router_b, link.interface_b,
             str(link.subnet))
            for link in topology.links
        ),
        tuple(
            (peer.router, peer.interface, peer.peer_name, str(peer.peer_ip),
             peer.peer_asn)
            for peer in topology.externals
        ),
    )


def _global_simulation(
    configs: Dict[str, RouterConfig],
    topology: Topology,
    checker: Optional[IncrementalGlobalChecker],
    changed_routers: "Optional[Set[str]]" = None,
) -> BgpSimulation:
    """The converged simulation behind one global check."""
    global _LAST_SIM_STATS
    if checker is None:
        if not incremental_simulation_enabled():
            state = SimulationState(configs)
            _LAST_SIM_STATS = state.last_stats
            return state.simulation
        key = _topology_key(topology)
        checker = _CHECKERS.get(key)
        if checker is None:
            checker = IncrementalGlobalChecker()
            _CHECKERS[key] = checker
            while len(_CHECKERS) > _CHECKER_LIMIT:
                _CHECKERS.popitem(last=False)
        else:
            _CHECKERS.move_to_end(key)
        # Registry checkers are shared across callers, so an explicit
        # delta (which is relative to *this caller's* previous check)
        # cannot be trusted against whatever state the registry holds.
        changed_routers = None
    simulation = checker.simulate(configs, changed_routers)
    _LAST_SIM_STATS = checker.last_stats
    return simulation


def check_global_no_transit(
    configs: Dict[str, RouterConfig],
    topology: Topology,
    checker: Optional[IncrementalGlobalChecker] = None,
    changed_routers: "Optional[Set[str]]" = None,
) -> GlobalCheckResult:
    """Simulate BGP and check the global property directly (§4.1's final
    step), on any topology family.

    Hub-shaped (star) topologies use the paper's RIB-based reading: no
    spoke holds another ISP's route, every spoke holds the customer
    route, and the hub holds every ISP route.  Role-assigned (border)
    topologies use the export-based reading over the role assignment:
    no attachment would advertise another ISP's prefix to its own
    external peer, every provider would receive every customer prefix,
    and every customer would receive every provider prefix — with the
    per-role verdicts recorded on the result.

    The simulation re-converges incrementally where possible: pass a
    ``checker`` owned by a repeated-simulation loop — and, when the
    loop knows exactly which routers it edited since its previous
    check, the explicit ``changed_routers`` delta, which skips the
    config-fingerprint diffing entirely — or let the process-local
    registry keep a warm state per topology (fingerprint-diffed, since
    registry state is shared between callers).
    """
    from ..topology.families import is_hub_star

    simulation = _global_simulation(configs, topology, checker, changed_routers)
    if not is_hub_star(topology):
        return _check_global_border(configs, topology, simulation)
    result = GlobalCheckResult()
    hub = topology.router("R1")
    customer_prefixes = list(hub.networks)
    spoke_names = [name for name in topology.router_names() if name != "R1"]
    spoke_prefixes: Dict[str, List[Prefix]] = {
        name: list(topology.router(name).networks) for name in spoke_names
    }
    for receiver in spoke_names:
        for sender in spoke_names:
            if sender == receiver:
                continue
            for prefix in spoke_prefixes[sender]:
                if simulation.has_route(receiver, prefix):
                    result.transit_violations.append(
                        f"{receiver} has a route to {sender}'s prefix {prefix}: "
                        f"transit through the customer network"
                    )
        for prefix in customer_prefixes:
            if not simulation.has_route(receiver, prefix):
                result.customer_unreachable.append(
                    f"{receiver} has no route to the customer prefix {prefix}"
                )
    for sender in spoke_names:
        for prefix in spoke_prefixes[sender]:
            if not simulation.has_route("R1", prefix):
                result.isp_prefixes_missing_at_hub.append(
                    f"R1 has no route to {sender}'s prefix {prefix}"
                )
    return result


def _exported_prefixes(
    simulation: BgpSimulation,
    router: str,
    config: RouterConfig,
    peer_ip,
) -> "set[Prefix]":
    """The prefixes a router would advertise to one external peer,
    applying the export route-map attached to that neighbor (if any).

    An undeclared neighbor exports nothing — the session would never
    establish, which the reachability checks then surface.
    """
    if config.bgp is None:
        return set()
    neighbor = config.bgp.get_neighbor(peer_ip)
    if neighbor is None:
        return set()
    export_map = (
        config.get_route_map(neighbor.export_policy)
        if neighbor.export_policy is not None
        else None
    )
    exported = set()
    for entry in simulation.rib(router).values():
        route = entry.route
        if export_map is not None:
            try:
                outcome = export_map.evaluate(route, config)
            except PolicyEvaluationError:
                continue
            if outcome.action is Action.DENY:
                continue
        exported.add(route.prefix)
    return exported


def _check_global_border(
    configs: Dict[str, RouterConfig],
    topology: Topology,
    simulation: BgpSimulation,
) -> GlobalCheckResult:
    """Export-based global check for role-assigned (border) topologies.

    Obligations follow the role assignment rather than a fixed single
    ISP pair:

    * no attachment may export another ISP's prefix to its own external
      peer (a multi-homed ISP's *own* prefixes may legitimately exit
      through its other homes);
    * every provider attachment must export every customer prefix
      (peers carry no reachability obligation);
    * every customer attachment must receive every provider prefix.

    Each violation also flips the verdicts of the roles it implicates,
    producing the per-role reading in ``role_verdicts``.
    """
    from ..topology.roles import RoleAssignment, RoleKind

    roles = RoleAssignment.from_topology(topology)
    result = GlobalCheckResult(
        role_verdicts={name: True for name in roles.role_names()}
    )

    def blame(*role_names: str) -> None:
        for name in role_names:
            result.role_verdicts[name] = False

    forbidden = roles.transit_forbidden()
    prefixes_of: Dict[int, List[Tuple[str, Prefix]]] = {}
    for attachment in forbidden:
        interface = topology.router(attachment.router).interface(
            attachment.peer.interface
        )
        if interface is not None:
            prefixes_of.setdefault(attachment.index, []).append(
                (attachment.role_name, interface.prefix)
            )
    customer_prefixes: List[Tuple[str, Prefix]] = []
    for customer in roles.customers:
        interface = topology.router(customer.router).interface(
            customer.peer.interface
        )
        if interface is not None:
            customer_prefixes.append((customer.role_name, interface.prefix))
    for attachment in forbidden:
        config = configs.get(attachment.router)
        if config is None:
            result.customer_unreachable.append(
                f"{attachment.router} has no configuration, so "
                f"{attachment.role_name} is cut off"
            )
            blame(attachment.role_name)
            continue
        exported = _exported_prefixes(
            simulation, attachment.router, config, attachment.peer.peer_ip
        )
        for other_index, named_prefixes in sorted(prefixes_of.items()):
            if other_index == attachment.index:
                continue
            for other_name, prefix in named_prefixes:
                if prefix in exported:
                    result.transit_violations.append(
                        f"{attachment.router} would advertise "
                        f"{other_name}'s prefix {prefix} to "
                        f"{attachment.role_name}: transit through the "
                        f"customer network"
                    )
                    blame(attachment.role_name, other_name)
        if attachment.kind is not RoleKind.PROVIDER:
            continue
        for customer_name, prefix in customer_prefixes:
            if prefix not in exported:
                result.customer_unreachable.append(
                    f"{attachment.role_name} would not receive "
                    f"{customer_name}'s prefix {prefix} from "
                    f"{attachment.router}"
                )
                blame(attachment.role_name, customer_name)
    for customer in roles.customers:
        config = configs.get(customer.router)
        exported = (
            _exported_prefixes(
                simulation, customer.router, config, customer.peer.peer_ip
            )
            if config is not None
            else set()
        )
        for index in roles.indices():
            if roles.groups[index][0].kind is not RoleKind.PROVIDER:
                continue  # peers owe the customers nothing
            for owner_name, prefix in prefixes_of.get(index, []):
                if prefix not in exported:
                    result.isp_prefixes_missing_at_hub.append(
                        f"{customer.router} would not advertise "
                        f"{owner_name}'s prefix {prefix} to "
                        f"{customer.role_name}"
                    )
                    blame(customer.role_name, owner_name)
    return result
