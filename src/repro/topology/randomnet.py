"""Seeded random topology families: Erdős–Rényi and Waxman.

The hand-shaped families (chain/ring/mesh/dumbbell) exercise the
no-transit machinery on regular graphs only.  These generators produce
irregular inter-domain graphs — the "much further testing in more
complex use cases" the paper calls for — while staying *deterministic*:
the same ``(family, size, seed, params, roles)`` always yields a
byte-identical topology JSON, so campaign scenarios remain reproducible
at any worker count.

* ``random`` — G(n, p): every router pair is linked with probability
  ``p`` (knob ``p``, default ``0.35``);
* ``waxman`` — routers get coordinates in the unit square and pair
  (u, v) is linked with probability ``beta * exp(-d(u,v) / (alpha*L))``
  where ``L`` is the largest pairwise distance (knobs ``alpha`` —
  how sharply probability decays with distance — and ``beta`` — the
  overall density; defaults ``0.4`` / ``0.6``).

Sampled graphs are made connected by *component stitching*: components
are sorted by their smallest router and adjacent components are joined
through those representatives, so connectivity never depends on luck.

Role placement is part of generation: a
:class:`~repro.topology.roles.RoleSpec` (default: one customer, up to
three single-homed ISPs) is placed on distinct routers — multi-homed
ISPs get one attachment per home, transit-forbidden peers ride the same
community-slot space as the ISPs.  Two placement strategies exist:

* ``seeded`` (default) — every role lands on a seed-shuffled router;
* ``degree`` — customers are pinned to the *lowest-degree* routers
  (ties broken by router index), modelling customers on the network
  edge; ISPs/peers still seed-shuffle over the remaining routers.

The strategy never alters the sampled graph: the same (family, size,
seed, knobs, roles) draws the same edges under either placement, so a
placement ablation compares placements on identical graphs, and each
(…, place) cell is byte-deterministic.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, List, Sequence, Set, Tuple

from .roles import RoleSpec

__all__ = [
    "DEFAULT_EDGE_PROBABILITY",
    "DEFAULT_WAXMAN_ALPHA",
    "DEFAULT_WAXMAN_BETA",
    "PLACEMENTS",
    "coerce_placement",
    "generate_random_network",
    "generate_waxman_network",
    "parse_topo_params",
]

PLACEMENTS = ("seeded", "degree")


def coerce_placement(place: "str | None") -> str:
    """``None``/``""``/``"default"`` -> ``seeded``; otherwise validate."""
    if place is None:
        return "seeded"
    text = str(place).strip()
    if not text or text == "default":
        return "seeded"
    if text not in PLACEMENTS:
        raise ValueError(
            f"unknown placement {place!r} (known: {', '.join(PLACEMENTS)})"
        )
    return text

DEFAULT_EDGE_PROBABILITY = 0.35
DEFAULT_WAXMAN_ALPHA = 0.4
DEFAULT_WAXMAN_BETA = 0.6

_KNOWN_KNOBS = {
    "random": ("p",),
    "waxman": ("alpha", "beta"),
}


def parse_topo_params(text: "str | Dict[str, float] | None") -> Dict[str, float]:
    """Parse a knob string (``p=0.35`` / ``alpha=0.5,beta=0.7``).

    ``None``, ``""`` and ``"default"`` mean "family defaults".  Dicts
    pass through (values coerced to float).
    """
    if text is None:
        return {}
    if isinstance(text, dict):
        return {str(key): float(value) for key, value in text.items()}
    stripped = text.strip()
    if not stripped or stripped == "default":
        return {}
    params: Dict[str, float] = {}
    for item in stripped.split(","):
        if "=" not in item:
            raise ValueError(
                f"invalid topology knob {item!r} (expected name=value)"
            )
        name, _, value = item.partition("=")
        try:
            params[name.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"invalid topology knob value in {item!r}"
            ) from None
    return params


def _check_knobs(family: str, params: Dict[str, float]) -> None:
    known = _KNOWN_KNOBS[family]
    unknown = sorted(set(params) - set(known))
    if unknown:
        raise ValueError(
            f"unknown {family} knob(s) {', '.join(unknown)} "
            f"(known: {', '.join(known)})"
        )


def _topology_rng(family: str, size: int, seed: int, fingerprint: str) -> random.Random:
    """One RNG per generation request, derived with CRC32 (stable across
    processes and platforms, like the campaign's scenario seeding)."""
    material = f"{family}:{size}:{seed}:{fingerprint}"
    return random.Random(zlib.crc32(material.encode("utf-8")))


def _stitch_components(size: int, edges: Set[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Extra edges joining the sampled graph's components into one.

    Components are sorted by their smallest router; each is linked to
    the next through those smallest members — deterministic, and the
    extra degree spreads over the representatives instead of piling on
    one router.
    """
    parent = list(range(size + 1))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for a, b in edges:
        parent[find(a)] = find(b)
    components: Dict[int, List[int]] = {}
    for node in range(1, size + 1):
        components.setdefault(find(node), []).append(node)
    representatives = sorted(min(members) for members in components.values())
    return [
        (representatives[i], representatives[i + 1])
        for i in range(len(representatives) - 1)
    ]


def _place_roles(
    builder,
    spec: RoleSpec,
    size: int,
    rng: random.Random,
    degrees: "Dict[int, int] | None" = None,
    place: str = "seeded",
) -> None:
    """Attach the spec's roles to distinct routers.

    ``seeded`` shuffles every router; ``degree`` pins the customers to
    the lowest-degree routers (ties by index — deterministic without
    touching the RNG) and shuffles only the remaining hosts for the
    ISPs/peers, so both strategies consume the RNG *after* the same
    graph was sampled and the graph itself is placement-independent.
    """
    if spec.attachments > size:
        raise ValueError(
            f"role spec {spec.key()} needs {spec.attachments} border "
            f"routers but the network has only {size}"
        )
    if place == "degree":
        by_degree = sorted(
            range(1, size + 1),
            key=lambda node: ((degrees or {}).get(node, 0), node),
        )
        customer_hosts = by_degree[: spec.customers]
        taken = set(customer_hosts)
        rest = [node for node in range(1, size + 1) if node not in taken]
        rng.shuffle(rest)
        hosts = customer_hosts + rest
    else:
        hosts = list(range(1, size + 1))
        rng.shuffle(hosts)
    cursor = 0
    for ordinal in range(1, spec.customers + 1):
        builder.attach_customer(hosts[cursor], ordinal=ordinal)
        cursor += 1
    index = 2  # community slots start at 2 (the spoke convention)
    for _isp in range(spec.isps):
        for home in range(1, spec.homes + 1):
            builder.attach_isp(hosts[cursor], isp_index=index, home=home)
            cursor += 1
        index += 1
    for _peer in range(spec.peers):
        builder.attach_isp(hosts[cursor], isp_index=index, peer=True)
        cursor += 1
        index += 1


def _build(
    family: str,
    size: int,
    seed: int,
    edges: Sequence[Tuple[int, int]],
    stitched: Sequence[Tuple[int, int]],
    spec: RoleSpec,
    rng: random.Random,
    place: str = "seeded",
):
    from .families import _Builder

    builder = _Builder(f"{family}-{size}", size)
    degrees: Dict[int, int] = {}
    for a, b in list(edges) + list(stitched):
        builder.link(a, b)
        degrees[a] = degrees.get(a, 0) + 1
        degrees[b] = degrees.get(b, 0) + 1
    _place_roles(builder, spec, size, rng, degrees=degrees, place=place)
    network = builder.finish(family)
    network.seed = seed
    network.roles = spec.key()
    network.place = place
    return network


def generate_random_network(
    size: int,
    seed: int = 0,
    roles: "RoleSpec | str | None" = None,
    params: "Dict[str, float] | str | None" = None,
    place: "str | None" = None,
):
    """A connected seeded Erdős–Rényi network with placed roles."""
    from .families import _check_size

    _check_size(size, "random")
    knobs = parse_topo_params(params)
    _check_knobs("random", knobs)
    p = knobs.get("p", DEFAULT_EDGE_PROBABILITY)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    spec = RoleSpec.coerce(roles) or RoleSpec.default_for(size)
    placement = coerce_placement(place)
    rng = _topology_rng("random", size, seed, f"p={p!r}:{spec.key()}")
    edges = set()
    for a in range(1, size + 1):
        for b in range(a + 1, size + 1):
            if rng.random() < p:
                edges.add((a, b))
    stitched = _stitch_components(size, edges)
    return _build(
        "random", size, seed, sorted(edges), stitched, spec, rng, placement
    )


def generate_waxman_network(
    size: int,
    seed: int = 0,
    roles: "RoleSpec | str | None" = None,
    params: "Dict[str, float] | str | None" = None,
    place: "str | None" = None,
):
    """A connected seeded Waxman network with placed roles."""
    from .families import _check_size

    _check_size(size, "waxman")
    knobs = parse_topo_params(params)
    _check_knobs("waxman", knobs)
    alpha = knobs.get("alpha", DEFAULT_WAXMAN_ALPHA)
    beta = knobs.get("beta", DEFAULT_WAXMAN_BETA)
    if alpha <= 0:
        raise ValueError(f"waxman alpha must be positive, got {alpha}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"waxman beta must be in [0, 1], got {beta}")
    spec = RoleSpec.coerce(roles) or RoleSpec.default_for(size)
    placement = coerce_placement(place)
    rng = _topology_rng(
        "waxman", size, seed, f"alpha={alpha!r}:beta={beta!r}:{spec.key()}"
    )
    positions = {
        node: (rng.random(), rng.random()) for node in range(1, size + 1)
    }
    scale = max(
        (
            math.dist(positions[a], positions[b])
            for a in range(1, size + 1)
            for b in range(a + 1, size + 1)
        ),
        default=1.0,
    ) or 1.0
    edges = set()
    for a in range(1, size + 1):
        for b in range(a + 1, size + 1):
            distance = math.dist(positions[a], positions[b])
            if rng.random() < beta * math.exp(-distance / (alpha * scale)):
                edges.add((a, b))
    stitched = _stitch_components(size, edges)
    return _build(
        "waxman", size, seed, sorted(edges), stitched, spec, rng, placement
    )
