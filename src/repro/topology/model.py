"""Topology model: the machine-readable network description.

§2's Modularizer "start[s] with a precise machine readable (we use JSON)
description of the 'modules' which in our case is the topology and the
connections".  This module defines that JSON schema and its in-memory
form: routers with interfaces, AS numbers, announced networks, internal
links, and external peers (ISPs / the CUSTOMER).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netmodel.ip import Ipv4Address, Prefix

__all__ = [
    "ExternalPeer",
    "InterfaceSpec",
    "Link",
    "NeighborSpec",
    "RouterSpec",
    "Topology",
]


@dataclass(frozen=True)
class InterfaceSpec:
    """An interface a router must configure: name plus address/len."""

    name: str
    address: Ipv4Address
    prefix: Prefix

    def cidr(self) -> str:
        return f"{self.address}/{self.prefix.length}"


@dataclass(frozen=True)
class NeighborSpec:
    """A BGP neighbor a router must declare: peer address plus AS."""

    ip: Ipv4Address
    asn: int
    peer_name: str = ""  # "R2", "ISP_3", "CUSTOMER" — for prose only


@dataclass
class RouterSpec:
    """Everything the topology dictates about one router."""

    name: str
    asn: int
    router_id: Ipv4Address
    interfaces: List[InterfaceSpec] = field(default_factory=list)
    neighbors: List[NeighborSpec] = field(default_factory=list)
    networks: List[Prefix] = field(default_factory=list)

    def interface(self, name: str) -> Optional[InterfaceSpec]:
        for spec in self.interfaces:
            if spec.name == name:
                return spec
        return None

    def connected_prefixes(self) -> List[Prefix]:
        return [spec.prefix for spec in self.interfaces]

    def neighbor_with_ip(self, ip: Ipv4Address) -> Optional[NeighborSpec]:
        for spec in self.neighbors:
            if spec.ip == ip:
                return spec
        return None


@dataclass(frozen=True)
class Link:
    """An internal point-to-point link between two routers."""

    router_a: str
    interface_a: str
    router_b: str
    interface_b: str
    subnet: Prefix


@dataclass(frozen=True)
class ExternalPeer:
    """An external attachment (an ISP or the CUSTOMER)."""

    router: str
    interface: str
    peer_name: str
    peer_ip: Ipv4Address
    peer_asn: int


@dataclass
class Topology:
    """The full network: routers, internal links, external peers."""

    name: str = "network"
    routers: Dict[str, RouterSpec] = field(default_factory=dict)
    links: List[Link] = field(default_factory=list)
    externals: List[ExternalPeer] = field(default_factory=list)

    def add_router(self, router: RouterSpec) -> RouterSpec:
        self.routers[router.name] = router
        return router

    def router(self, name: str) -> RouterSpec:
        return self.routers[name]

    def router_names(self) -> List[str]:
        return sorted(self.routers, key=_router_sort_key)

    def externals_of(self, router_name: str) -> List[ExternalPeer]:
        return [item for item in self.externals if item.router == router_name]

    # -- JSON round-trip -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "routers": {
                name: {
                    "asn": router.asn,
                    "router_id": str(router.router_id),
                    "interfaces": {
                        spec.name: spec.cidr() for spec in router.interfaces
                    },
                    "neighbors": [
                        {
                            "ip": str(spec.ip),
                            "asn": spec.asn,
                            "peer": spec.peer_name,
                        }
                        for spec in router.neighbors
                    ],
                    "networks": [str(prefix) for prefix in router.networks],
                }
                for name, router in self.routers.items()
            },
            "links": [
                {
                    "a": [link.router_a, link.interface_a],
                    "b": [link.router_b, link.interface_b],
                    "subnet": str(link.subnet),
                }
                for link in self.links
            ],
            "external_peers": [
                {
                    "router": item.router,
                    "interface": item.interface,
                    "peer": item.peer_name,
                    "peer_ip": str(item.peer_ip),
                    "peer_asn": item.peer_asn,
                }
                for item in self.externals
            ],
        }

    @classmethod
    def from_json(cls, text: str) -> "Topology":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_dict(cls, data: dict) -> "Topology":
        topology = cls(name=data.get("name", "network"))
        for name, router_data in data.get("routers", {}).items():
            interfaces = [
                InterfaceSpec(
                    name=interface_name,
                    address=Ipv4Address.parse(cidr.split("/")[0]),
                    prefix=Prefix.parse(cidr),
                )
                for interface_name, cidr in router_data.get("interfaces", {}).items()
            ]
            neighbors = [
                NeighborSpec(
                    ip=Ipv4Address.parse(item["ip"]),
                    asn=int(item["asn"]),
                    peer_name=item.get("peer", ""),
                )
                for item in router_data.get("neighbors", [])
            ]
            networks = [
                Prefix.parse(item) for item in router_data.get("networks", [])
            ]
            topology.add_router(
                RouterSpec(
                    name=name,
                    asn=int(router_data["asn"]),
                    router_id=Ipv4Address.parse(router_data["router_id"]),
                    interfaces=interfaces,
                    neighbors=neighbors,
                    networks=networks,
                )
            )
        for link_data in data.get("links", []):
            topology.links.append(
                Link(
                    router_a=link_data["a"][0],
                    interface_a=link_data["a"][1],
                    router_b=link_data["b"][0],
                    interface_b=link_data["b"][1],
                    subnet=Prefix.parse(link_data["subnet"]),
                )
            )
        for peer_data in data.get("external_peers", []):
            topology.externals.append(
                ExternalPeer(
                    router=peer_data["router"],
                    interface=peer_data["interface"],
                    peer_name=peer_data["peer"],
                    peer_ip=Ipv4Address.parse(peer_data["peer_ip"]),
                    peer_asn=int(peer_data["peer_asn"]),
                )
            )
        return topology


def _router_sort_key(name: str) -> Tuple[int, str]:
    """Sort R2 before R10 (numeric suffix aware)."""
    digits = "".join(char for char in name if char.isdigit())
    return (int(digits) if digits else 0, name)
