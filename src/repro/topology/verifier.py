"""The paper's custom topology verifier (§4, Table 3).

"We use an automated 'topology verifier' that compares the config
against the previously specified JSON dictionary and outputs
inconsistencies."  The verifier checks that a router's parsed config
sets up all interfaces, declares all BGP neighbors, and announces all
networks exactly as the topology dictates; its messages reproduce the
seven Table 3 phrasings verbatim (modulo the spliced fields).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..netmodel.device import RouterConfig
from .model import RouterSpec, Topology

__all__ = ["TopologyIssue", "TopologyIssueKind", "verify_topology"]


class TopologyIssueKind(enum.Enum):
    """The inconsistency classes enumerated in Table 3."""

    INTERFACE_ADDRESS_MISMATCH = "interface_address_mismatch"
    MISSING_INTERFACE = "missing_interface"
    LOCAL_AS_MISMATCH = "local_as_mismatch"
    ROUTER_ID_MISMATCH = "router_id_mismatch"
    MISSING_NEIGHBOR = "missing_neighbor"
    MISSING_NETWORK = "missing_network"
    INCORRECT_NETWORK = "incorrect_network"
    INCORRECT_NEIGHBOR = "incorrect_neighbor"
    MISSING_BGP = "missing_bgp"


@dataclass(frozen=True)
class TopologyIssue:
    """One inconsistency between a config and the topology JSON."""

    kind: TopologyIssueKind
    router: str
    message: str

    def describe(self) -> str:
        return self.message


def verify_topology(config: RouterConfig, spec: RouterSpec) -> List[TopologyIssue]:
    """Check one router's config against its topology specification."""
    issues: List[TopologyIssue] = []
    issues.extend(_check_interfaces(config, spec))
    issues.extend(_check_bgp(config, spec))
    return issues


def verify_network(
    configs: "dict[str, RouterConfig]", topology: Topology
) -> List[TopologyIssue]:
    """Check every router in a snapshot against the topology."""
    issues: List[TopologyIssue] = []
    for name in topology.router_names():
        if name not in configs:
            issues.append(
                TopologyIssue(
                    kind=TopologyIssueKind.MISSING_BGP,
                    router=name,
                    message=f"No configuration found for router {name}",
                )
            )
            continue
        issues.extend(verify_topology(configs[name], topology.router(name)))
    return issues


def _check_interfaces(config: RouterConfig, spec: RouterSpec) -> List[TopologyIssue]:
    issues = []
    for interface_spec in spec.interfaces:
        interface = config.get_interface(interface_spec.name)
        if interface is None or interface.address is None:
            issues.append(
                TopologyIssue(
                    kind=TopologyIssueKind.MISSING_INTERFACE,
                    router=spec.name,
                    message=(
                        f"Interface {interface_spec.name} with ip address "
                        f"{interface_spec.cidr()} is not configured"
                    ),
                )
            )
            continue
        if interface.address != interface_spec.address:
            issues.append(
                TopologyIssue(
                    kind=TopologyIssueKind.INTERFACE_ADDRESS_MISMATCH,
                    router=spec.name,
                    message=(
                        f"Interface {interface_spec.name} ip address does not "
                        f"match with given config. Expected "
                        f"{interface_spec.address}, found {interface.address}"
                    ),
                )
            )
    return issues


def _check_bgp(config: RouterConfig, spec: RouterSpec) -> List[TopologyIssue]:
    issues: List[TopologyIssue] = []
    bgp = config.bgp
    if bgp is None:
        issues.append(
            TopologyIssue(
                kind=TopologyIssueKind.MISSING_BGP,
                router=spec.name,
                message=f"Router {spec.name} has no BGP configuration",
            )
        )
        return issues
    if bgp.asn != spec.asn:
        issues.append(
            TopologyIssue(
                kind=TopologyIssueKind.LOCAL_AS_MISMATCH,
                router=spec.name,
                message=(
                    f"Local AS number does not match. Expected {spec.asn}, "
                    f"found {bgp.asn}"
                ),
            )
        )
    if bgp.router_id is not None and bgp.router_id != spec.router_id:
        issues.append(
            TopologyIssue(
                kind=TopologyIssueKind.ROUTER_ID_MISMATCH,
                router=spec.name,
                message=(
                    f"Router ID does not match with given config. Expected "
                    f"{spec.router_id}, found {bgp.router_id}"
                ),
            )
        )
    declared_neighbors = {
        str(neighbor.ip): neighbor for neighbor in bgp.neighbors.values()
    }
    for neighbor_spec in spec.neighbors:
        declared = declared_neighbors.get(str(neighbor_spec.ip))
        if declared is None or declared.remote_as != neighbor_spec.asn:
            issues.append(
                TopologyIssue(
                    kind=TopologyIssueKind.MISSING_NEIGHBOR,
                    router=spec.name,
                    message=(
                        f"Neighbor with IP address {neighbor_spec.ip} and AS "
                        f"{neighbor_spec.asn} not declared"
                    ),
                )
            )
    expected_pairs = {(str(item.ip), item.asn) for item in spec.neighbors}
    for ip, declared in sorted(declared_neighbors.items()):
        if (ip, declared.remote_as) not in expected_pairs:
            issues.append(
                TopologyIssue(
                    kind=TopologyIssueKind.INCORRECT_NEIGHBOR,
                    router=spec.name,
                    message=(
                        f"Incorrect neighbor declaration. No neighbor with IP "
                        f"address {ip} AS {declared.remote_as} found"
                    ),
                )
            )
    declared_networks = set(bgp.networks)
    for network in spec.networks:
        if network not in declared_networks:
            issues.append(
                TopologyIssue(
                    kind=TopologyIssueKind.MISSING_NETWORK,
                    router=spec.name,
                    message=f"Network {network} not declared",
                )
            )
    connected = spec.connected_prefixes()
    for network in sorted(declared_networks):
        if not any(prefix.overlaps(network) for prefix in connected):
            issues.append(
                TopologyIssue(
                    kind=TopologyIssueKind.INCORRECT_NETWORK,
                    router=spec.name,
                    message=(
                        f"Incorrect network declaration. {network} is not "
                        f"directly connected to {spec.name}"
                    ),
                )
            )
    return issues
