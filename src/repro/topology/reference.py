"""Reference no-transit configurations for a star topology.

This is the ground truth for the local-synthesis use case (§4): for each
router of the star, the config a competent operator would write.  The
hub (R1) carries all the policy — per the paper, "R1 should add a
specific community at the ingress to each ISP and then drop routes based
on those communities at the egress to each ISP" — while the spokes just
set up interfaces, neighbors, and networks.

Community-list numbering follows §4.2's example: list ``1`` permits
``100:1`` (R2's tag), list ``2`` permits ``101:1`` (R3's), and so on —
list ``j-1`` holds ``R<j>``'s ingress tag.  The egress filter to ``Ri``
uses one ``deny`` stanza per *other* ISP's list (separate stanzas, i.e.
OR semantics — the correct form GPT-4 needed a human prompt to reach).
"""

from __future__ import annotations

from typing import Dict, List

from ..netmodel.bgp import BgpNeighbor
from ..netmodel.communities import CommunityList, CommunityListEntry
from ..netmodel.device import RouterConfig, Vendor
from ..netmodel.interfaces import Interface
from ..netmodel.routing_policy import (
    Action,
    MatchCommunityList,
    RouteMap,
    RouteMapClause,
    SetCommunity,
)
from .generator import ingress_community
from .model import RouterSpec, Topology

__all__ = [
    "build_reference_configs",
    "build_spoke_config",
    "build_hub_config",
    "community_list_number",
    "egress_map_name",
    "ingress_map_name",
]


def community_list_number(router_index: int) -> int:
    """The community-list number holding R<router_index>'s ingress tag."""
    if router_index < 2:
        raise ValueError("only spoke routers have ingress tags")
    return router_index - 1


def ingress_map_name(router_index: int) -> str:
    return f"ADD_COMM_R{router_index}"


def egress_map_name(router_index: int) -> str:
    return f"FILTER_COMM_OUT_R{router_index}"


def build_reference_configs(topology: Topology) -> Dict[str, RouterConfig]:
    """Reference configs for every router of the star."""
    configs: Dict[str, RouterConfig] = {}
    spoke_indices = _spoke_indices(topology)
    for name in topology.router_names():
        spec = topology.router(name)
        if name == "R1":
            configs[name] = build_hub_config(spec, spoke_indices)
        else:
            configs[name] = build_spoke_config(spec)
    return configs


def build_spoke_config(spec: RouterSpec) -> RouterConfig:
    """A plain spoke: interfaces, BGP neighbors, announced networks."""
    config = RouterConfig(hostname=spec.name, vendor=Vendor.CISCO)
    _apply_interfaces(config, spec)
    bgp = config.ensure_bgp(spec.asn)
    bgp.router_id = spec.router_id
    for network in spec.networks:
        bgp.announce(network)
    for neighbor_spec in spec.neighbors:
        bgp.add_neighbor(
            BgpNeighbor(
                ip=neighbor_spec.ip,
                remote_as=neighbor_spec.asn,
                send_community=True,
            )
        )
    return config


def build_hub_config(spec: RouterSpec, spoke_indices: List[int]) -> RouterConfig:
    """The hub with the full ingress-tag / egress-filter policy."""
    config = RouterConfig(hostname=spec.name, vendor=Vendor.CISCO)
    _apply_interfaces(config, spec)
    bgp = config.ensure_bgp(spec.asn)
    bgp.router_id = spec.router_id
    for network in spec.networks:
        bgp.announce(network)
    for index in spoke_indices:
        tag = ingress_community(index)
        community_list = CommunityList(str(community_list_number(index)))
        community_list.add(
            CommunityListEntry(action="permit", communities=(tag,))
        )
        config.add_community_list(community_list)
    for index in spoke_indices:
        config.add_route_map(_ingress_map(index))
        config.add_route_map(_egress_map(index, spoke_indices))
    for neighbor_spec in spec.neighbors:
        neighbor = BgpNeighbor(
            ip=neighbor_spec.ip,
            remote_as=neighbor_spec.asn,
            send_community=True,
        )
        if neighbor_spec.peer_name.startswith("R"):
            index = int(neighbor_spec.peer_name[1:])
            neighbor.import_policy = ingress_map_name(index)
            neighbor.export_policy = egress_map_name(index)
        bgp.add_neighbor(neighbor)
    return config


def _ingress_map(index: int) -> RouteMap:
    """``ADD_COMM_Ri``: tag everything arriving from Ri, additively."""
    route_map = RouteMap(ingress_map_name(index))
    clause = RouteMapClause(seq=10, action=Action.PERMIT)
    clause.sets.append(SetCommunity((ingress_community(index),), additive=True))
    route_map.add_clause(clause)
    return route_map


def _egress_map(index: int, spoke_indices: List[int]) -> RouteMap:
    """``FILTER_COMM_OUT_Ri``: drop other ISPs' tags, then permit.

    One deny stanza per community list — separate stanzas give the OR
    semantics the no-transit policy requires (§4.2's AND/OR lesson).
    """
    route_map = RouteMap(egress_map_name(index))
    seq = 10
    for other in spoke_indices:
        if other == index:
            continue
        clause = RouteMapClause(seq=seq, action=Action.DENY)
        clause.matches.append(
            MatchCommunityList(str(community_list_number(other)))
        )
        route_map.add_clause(clause)
        seq += 10
    route_map.add_clause(RouteMapClause(seq=seq, action=Action.PERMIT))
    return route_map


def _apply_interfaces(config: RouterConfig, spec: RouterSpec) -> None:
    for interface_spec in spec.interfaces:
        config.add_interface(
            Interface(
                name=interface_spec.name,
                address=interface_spec.address,
                prefix=interface_spec.prefix,
            )
        )


def _spoke_indices(topology: Topology) -> List[int]:
    indices = []
    for name in topology.router_names():
        if name != "R1":
            indices.append(int(name[1:]))
    return indices
