"""Reference no-transit configurations for any topology family.

This is the ground truth for the local-synthesis use case (§4): for each
router of the star, the config a competent operator would write.  The
hub (R1) carries all the policy — per the paper, "R1 should add a
specific community at the ingress to each ISP and then drop routes based
on those communities at the egress to each ISP" — while the spokes just
set up interfaces, neighbors, and networks.

Community-list numbering follows §4.2's example: list ``1`` permits
``100:1`` (R2's tag), list ``2`` permits ``101:1`` (R3's), and so on —
list ``j-1`` holds ``R<j>``'s ingress tag.  The egress filter to ``Ri``
uses one ``deny`` stanza per *other* ISP's list (separate stanzas, i.e.
OR semantics — the correct form GPT-4 needed a human prompt to reach).

For the non-star families (chain, ring, mesh, dumbbell) there is no hub
through which all transit flows, so the same mechanism moves to the
*border*: each ISP-attached router ``Ri``

* tags routes arriving from its ISP with ``Ri``'s community
  (``ADD_COMM_Ri`` on the external import — the real-world ingress),
* tags its own ISP subnet with the same community when advertising it
  into the core (``EXPORT_CORE_Ri``, matched via a prefix-list, since
  the simulation originates the ISP subnet locally), and
* drops routes carrying any *other* ISP's community at the egress back
  to its ISP (``FILTER_COMM_OUT_Ri``, same OR-stanza shape as the hub).

Communities are never stripped in between (all sets are additive), so
the local obligations compose into the global no-transit property on
any internal graph.  :func:`build_reference_configs` dispatches on
:func:`~repro.topology.families.is_hub_star`; the border path follows
the topology's :class:`~repro.topology.roles.RoleAssignment`, so map
names key on the attachment's *community slot* (both homes of a
multi-homed ISP share one tag) and a router may host several
attachments, each with its own tag/filter pair, under one multi-clause
core-export map.
"""

from __future__ import annotations

from typing import Dict, List

from ..netmodel.bgp import BgpNeighbor
from ..netmodel.communities import CommunityList, CommunityListEntry
from ..netmodel.device import RouterConfig, Vendor
from ..netmodel.interfaces import Interface
from ..netmodel.ip import PrefixRange
from ..netmodel.prefixlist import PrefixList
from ..netmodel.routing_policy import (
    Action,
    MatchCommunityList,
    MatchPrefixList,
    RouteMap,
    RouteMapClause,
    SetCommunity,
)
from .families import is_hub_star
from .generator import ingress_community
from .model import RouterSpec, Topology
from .roles import RoleAssignment, RoleAttachment

__all__ = [
    "build_border_config",
    "build_reference_configs",
    "build_spoke_config",
    "build_hub_config",
    "community_list_number",
    "core_export_map_name",
    "egress_map_name",
    "ingress_map_name",
    "isp_prefix_list_name",
]


def community_list_number(router_index: int) -> int:
    """The community-list number holding R<router_index>'s ingress tag."""
    if router_index < 2:
        raise ValueError("only spoke routers have ingress tags")
    return router_index - 1


def ingress_map_name(router_index: int) -> str:
    return f"ADD_COMM_R{router_index}"


def egress_map_name(router_index: int) -> str:
    return f"FILTER_COMM_OUT_R{router_index}"


def core_export_map_name(router_index: int) -> str:
    return f"EXPORT_CORE_R{router_index}"


def isp_prefix_list_name(router_index: int) -> str:
    return f"PL_ISP_R{router_index}"


def build_reference_configs(topology: Topology) -> Dict[str, RouterConfig]:
    """Reference configs for every router of any topology family.

    Hub-shaped (star) topologies keep the paper's hub-concentrated
    policy; all other families get border-placed policy.
    """
    configs: Dict[str, RouterConfig] = {}
    if is_hub_star(topology):
        spoke_indices = _spoke_indices(topology)
        for name in topology.router_names():
            spec = topology.router(name)
            if name == "R1":
                configs[name] = build_hub_config(spec, spoke_indices)
            else:
                configs[name] = build_spoke_config(spec)
        return configs
    roles = RoleAssignment.from_topology(topology)
    for name in topology.router_names():
        spec = topology.router(name)
        configs[name] = build_border_config(
            spec, roles.attachments_of(name), roles
        )
    return configs


def build_spoke_config(spec: RouterSpec) -> RouterConfig:
    """A plain spoke: interfaces, BGP neighbors, announced networks."""
    config = RouterConfig(hostname=spec.name, vendor=Vendor.CISCO)
    _apply_interfaces(config, spec)
    bgp = config.ensure_bgp(spec.asn)
    bgp.router_id = spec.router_id
    for network in spec.networks:
        bgp.announce(network)
    for neighbor_spec in spec.neighbors:
        bgp.add_neighbor(
            BgpNeighbor(
                ip=neighbor_spec.ip,
                remote_as=neighbor_spec.asn,
                send_community=True,
            )
        )
    return config


def build_hub_config(spec: RouterSpec, spoke_indices: List[int]) -> RouterConfig:
    """The hub with the full ingress-tag / egress-filter policy."""
    config = RouterConfig(hostname=spec.name, vendor=Vendor.CISCO)
    _apply_interfaces(config, spec)
    bgp = config.ensure_bgp(spec.asn)
    bgp.router_id = spec.router_id
    for network in spec.networks:
        bgp.announce(network)
    for index in spoke_indices:
        tag = ingress_community(index)
        community_list = CommunityList(str(community_list_number(index)))
        community_list.add(
            CommunityListEntry(action="permit", communities=(tag,))
        )
        config.add_community_list(community_list)
    for index in spoke_indices:
        config.add_route_map(_ingress_map(index))
        config.add_route_map(_egress_map(index, spoke_indices))
    for neighbor_spec in spec.neighbors:
        neighbor = BgpNeighbor(
            ip=neighbor_spec.ip,
            remote_as=neighbor_spec.asn,
            send_community=True,
        )
        if neighbor_spec.peer_name.startswith("R"):
            index = int(neighbor_spec.peer_name[1:])
            neighbor.import_policy = ingress_map_name(index)
            neighbor.export_policy = egress_map_name(index)
        bgp.add_neighbor(neighbor)
    return config


def _ingress_map(index: int) -> RouteMap:
    """``ADD_COMM_Ri``: tag everything arriving from Ri, additively."""
    route_map = RouteMap(ingress_map_name(index))
    clause = RouteMapClause(seq=10, action=Action.PERMIT)
    clause.sets.append(SetCommunity((ingress_community(index),), additive=True))
    route_map.add_clause(clause)
    return route_map


def _egress_map(index: int, spoke_indices: List[int]) -> RouteMap:
    """``FILTER_COMM_OUT_Ri``: drop other ISPs' tags, then permit.

    One deny stanza per community list — separate stanzas give the OR
    semantics the no-transit policy requires (§4.2's AND/OR lesson).
    """
    route_map = RouteMap(egress_map_name(index))
    seq = 10
    for other in spoke_indices:
        if other == index:
            continue
        clause = RouteMapClause(seq=seq, action=Action.DENY)
        clause.matches.append(
            MatchCommunityList(str(community_list_number(other)))
        )
        route_map.add_clause(clause)
        seq += 10
    route_map.add_clause(RouteMapClause(seq=seq, action=Action.PERMIT))
    return route_map


def build_border_config(
    spec: RouterSpec,
    attachments: List[RoleAttachment],
    roles: RoleAssignment,
) -> RouterConfig:
    """One router of a border-policy (role-assigned) topology.

    Routers without a transit-forbidden attachment (customer routers,
    the dumbbell cores, plain transit routers) are spokes; each
    ISP/peer attachment a router hosts carries the full tag/filter
    policy on its own external session plus the prefix-list-scoped
    tagging of that attachment's subnet toward the core.  Map names are
    keyed by the attachment's *community slot* (``ADD_COMM_Rj`` for
    ISP/peer ``j``), so both homes of a multi-homed ISP share one tag —
    which is what makes the no-transit argument per-ISP rather than
    per-border-router.
    """
    config = build_spoke_config(spec)
    if not attachments:
        return config
    all_indices = roles.indices()
    for peer_index in all_indices:
        community_list = CommunityList(str(community_list_number(peer_index)))
        community_list.add(
            CommunityListEntry(
                action="permit", communities=(ingress_community(peer_index),)
            )
        )
        config.add_community_list(community_list)
    assert config.bgp is not None
    for attachment in attachments:
        index = attachment.index
        isp_subnet = spec.interface(attachment.peer.interface)
        assert isp_subnet is not None
        prefix_list = PrefixList(isp_prefix_list_name(index))
        prefix_list.add("permit", PrefixRange.exact(isp_subnet.prefix))
        config.add_prefix_list(prefix_list)
        config.add_route_map(_ingress_map(index))
        config.add_route_map(_egress_map(index, all_indices))
        neighbor = config.bgp.get_neighbor(attachment.peer.peer_ip)
        if neighbor is not None:
            neighbor.import_policy = ingress_map_name(index)
            neighbor.export_policy = egress_map_name(index)
    core_export = _core_export_map(attachments)
    config.add_route_map(core_export)
    external_ips = {attachment.peer.peer_ip for attachment in attachments}
    for neighbor in config.bgp.neighbors.values():
        if neighbor.ip in external_ips:
            continue
        peer = spec.neighbor_with_ip(neighbor.ip)
        if peer is not None and peer.peer_name.startswith("R"):
            neighbor.export_policy = core_export.name
    return config


def _core_export_map(attachments: List[RoleAttachment]) -> RouteMap:
    """``EXPORT_CORE_Rj``: tag each hosted attachment's subnet (matched
    via its prefix-list) when advertising into the core; pass
    everything else untouched.  A router hosting several attachments
    gets one map (named for the first slot) with one tagging clause per
    attachment."""
    route_map = RouteMap(core_export_map_name(attachments[0].index))
    seq = 10
    for attachment in attachments:
        tagging = RouteMapClause(seq=seq, action=Action.PERMIT)
        tagging.matches.append(
            MatchPrefixList(isp_prefix_list_name(attachment.index))
        )
        tagging.sets.append(
            SetCommunity(
                (ingress_community(attachment.index),), additive=True
            )
        )
        route_map.add_clause(tagging)
        seq += 10
    route_map.add_clause(RouteMapClause(seq=seq, action=Action.PERMIT))
    return route_map


def _apply_interfaces(config: RouterConfig, spec: RouterSpec) -> None:
    for interface_spec in spec.interfaces:
        config.add_interface(
            Interface(
                name=interface_spec.name,
                address=interface_spec.address,
                prefix=interface_spec.prefix,
            )
        )


def _spoke_indices(topology: Topology) -> List[int]:
    indices = []
    for name in topology.router_names():
        if name != "R1":
            indices.append(int(name[1:]))
    return indices
