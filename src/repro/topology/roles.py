"""Network roles as first-class objects.

The bundled families hard-wire one role layout: a single CUSTOMER at R1
and one single-homed ISP per border router.  The paper's no-transit
property, however, is about *roles*, not shapes — what must hold is
that no transit-forbidden attachment can reach another through the
customer network, wherever those attachments land on the graph.  This
module makes that explicit:

* :class:`RoleKind` — the vocabulary: ``CUSTOMER`` (a customer network
  that every provider must reach), ``PROVIDER`` (a transit-forbidden
  ISP that must still reach every customer), and ``PEER`` (a
  transit-forbidden attachment with no reachability obligation —
  a settlement-free peer that must never be transited either way);
* :class:`RoleSpec` — how many customers / ISPs / peers a generated
  network should carry and how many *homes* (border attachments) each
  ISP gets.  ``homes > 1`` yields multi-homed ISPs: the same external
  AS attached at several border routers, sharing one community slot;
* :class:`RoleAssignment` — the concrete placement, recovered from any
  :class:`~repro.topology.model.Topology` by grouping its external
  peers.  Reference configs, local invariants, the composition
  argument, the global check, the Modularizer, and fault addressing
  all dispatch on this object, so the legacy families are just the
  degenerate one-customer single-homed case.

Naming conventions (compatible with the existing families):

* the first customer is ``CUSTOMER`` (AS 65001), further customers are
  ``CUSTOMER_c`` (AS ``65000 + c``) on ``100.(c-1).0.0/24``;
* ISP *j* (j ≥ 2, sharing the spoke community slots) is ``ISP_j``
  (AS ``1000 + j``); its *h*-th home uses ``200.j.(h-1).0/24`` — so a
  single-homed ISP keeps the classic ``200.j.0.0/24``;
* transit-forbidden peers are ``PEER_j`` and draw from the same index
  space (and thus the same community slots) as the ISPs.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .model import ExternalPeer, Topology

__all__ = [
    "RoleAssignment",
    "RoleAttachment",
    "RoleKind",
    "RoleSpec",
    "attachment_isp_index",
    "customer_ordinal",
    "egress_map_of",
    "ingress_map_of",
]

CUSTOMER_BASE_ASN = 65000  # customer c gets AS 65000 + c (c=1 -> 65001)
ISP_BASE_ASN = 1000  # ISP/peer j gets AS 1000 + j


class RoleKind(enum.Enum):
    """What an external attachment *is* to the customer network."""

    CUSTOMER = "customer"
    PROVIDER = "provider"  # transit-forbidden ISP with reachability needs
    PEER = "peer"  # transit-forbidden, no reachability obligation

    @property
    def transit_forbidden(self) -> bool:
        return self is not RoleKind.CUSTOMER


_SPEC_PATTERN = re.compile(
    r"^c(?P<customers>\d+)i(?P<isps>\d+)h(?P<homes>\d+)(p(?P<peers>\d+))?$"
)


@dataclass(frozen=True)
class RoleSpec:
    """A role layout request for the random generators.

    ``key()`` round-trips through :meth:`parse` (``c2i3h2p1`` = two
    customers, three ISPs with two homes each, one peer) so specs can
    travel through scenario keys, journals, and the CLI as strings.
    """

    customers: int = 1
    isps: int = 3
    homes: int = 1
    peers: int = 0

    def __post_init__(self) -> None:
        if self.customers < 1:
            raise ValueError("a role spec needs at least one customer")
        if self.isps < 1:
            raise ValueError("a role spec needs at least one ISP")
        if self.homes < 1:
            raise ValueError("every ISP needs at least one home")
        if self.peers < 0:
            raise ValueError("peers must be non-negative")

    @property
    def attachments(self) -> int:
        """Total external attachments the spec places."""
        return self.customers + self.isps * self.homes + self.peers

    def key(self) -> str:
        text = f"c{self.customers}i{self.isps}h{self.homes}"
        if self.peers:
            text += f"p{self.peers}"
        return text

    @classmethod
    def parse(cls, text: str) -> "RoleSpec":
        match = _SPEC_PATTERN.match(text.strip())
        if match is None:
            raise ValueError(
                f"invalid role spec {text!r} (expected e.g. 'c2i3h2' or "
                f"'c1i2h1p1': customers, ISPs, homes per ISP, peers)"
            )
        return cls(
            customers=int(match.group("customers")),
            isps=int(match.group("isps")),
            homes=int(match.group("homes")),
            peers=int(match.group("peers") or 0),
        )

    @classmethod
    def coerce(cls, value: "RoleSpec | str | None") -> "Optional[RoleSpec]":
        """None / 'default' -> None; strings parse; specs pass through."""
        if value is None or isinstance(value, cls):
            return value
        text = str(value).strip()
        if not text or text == "default":
            return None
        return cls.parse(text)

    @classmethod
    def default_for(cls, size: int) -> "RoleSpec":
        """The family default: one customer, up to three single-homed
        ISPs (every router carries at most one attachment)."""
        return cls(customers=1, isps=max(1, min(3, size - 1)), homes=1)


def customer_ordinal(peer_name: str) -> Optional[int]:
    """``CUSTOMER`` -> 1, ``CUSTOMER_3`` -> 3, anything else -> None."""
    if peer_name == "CUSTOMER":
        return 1
    match = re.match(r"^CUSTOMER_(\d+)$", peer_name)
    return int(match.group(1)) if match else None


def attachment_isp_index(peer: ExternalPeer) -> int:
    """The community slot of a transit-forbidden attachment.

    ``ISP_5`` / ``PEER_5`` -> 5; names without digits fall back to the
    attached router's index so custom peers still get a stable slot.
    """
    for name in (peer.peer_name, peer.router):
        digits = "".join(char for char in name if char.isdigit())
        if digits:
            return int(digits)
    raise ValueError(f"cannot derive an index for attachment {peer!r}")


@dataclass(frozen=True)
class RoleAttachment:
    """One external attachment with its resolved role."""

    peer: ExternalPeer
    kind: RoleKind
    index: int  # community slot (ISP/peer) or customer ordinal

    @property
    def router(self) -> str:
        return self.peer.router

    @property
    def role_name(self) -> str:
        """The role label used in per-role verdicts (``ISP_3``,
        ``CUSTOMER_2``, ``PEER_7``) — the attachment's peer name."""
        return self.peer.peer_name


@dataclass
class RoleAssignment:
    """The concrete role placement of one topology.

    ``groups`` maps each transit-forbidden index to its attachments —
    more than one entry means a multi-homed ISP sharing one community
    slot across all its borders.
    """

    customers: List[RoleAttachment] = field(default_factory=list)
    groups: Dict[int, List[RoleAttachment]] = field(default_factory=dict)

    @classmethod
    def from_topology(cls, topology: Topology) -> "RoleAssignment":
        assignment = cls()
        order = {
            name: rank for rank, name in enumerate(topology.router_names())
        }
        customers: List[Tuple[int, RoleAttachment]] = []
        forbidden: List[RoleAttachment] = []
        for peer in topology.externals:
            ordinal = customer_ordinal(peer.peer_name)
            if ordinal is not None:
                customers.append(
                    (
                        ordinal,
                        RoleAttachment(
                            peer=peer, kind=RoleKind.CUSTOMER, index=ordinal
                        ),
                    )
                )
                continue
            kind = (
                RoleKind.PEER
                if peer.peer_name.startswith("PEER")
                else RoleKind.PROVIDER
            )
            forbidden.append(
                RoleAttachment(
                    peer=peer, kind=kind, index=attachment_isp_index(peer)
                )
            )
        for _ordinal, attachment in sorted(
            customers, key=lambda item: (item[0], order[item[1].router])
        ):
            assignment.customers.append(attachment)
        forbidden.sort(
            key=lambda item: (item.index, order[item.router], item.role_name)
        )
        for attachment in forbidden:
            assignment.groups.setdefault(attachment.index, []).append(
                attachment
            )
        return assignment

    # -- queries ---------------------------------------------------------------

    def indices(self) -> List[int]:
        """Every transit-forbidden community slot, ascending."""
        return sorted(self.groups)

    def transit_forbidden(self) -> List[RoleAttachment]:
        """Every ISP/peer attachment, in (index, router) order."""
        return [
            attachment
            for index in self.indices()
            for attachment in self.groups[index]
        ]

    def attachments_of(self, router: str) -> List[RoleAttachment]:
        """The transit-forbidden attachments hosted by one router."""
        return [
            attachment
            for attachment in self.transit_forbidden()
            if attachment.router == router
        ]

    def is_multi_homed(self, index: int) -> bool:
        return len(self.groups.get(index, ())) > 1

    def role_names(self) -> List[str]:
        """Every distinct role label: customers first, then ISPs/peers."""
        names = [attachment.role_name for attachment in self.customers]
        seen = set(names)
        for attachment in self.transit_forbidden():
            if attachment.role_name not in seen:
                seen.add(attachment.role_name)
                names.append(attachment.role_name)
        return names

    def describe(self) -> str:
        isps = sum(
            1
            for index in self.indices()
            if self.groups[index][0].kind is RoleKind.PROVIDER
        )
        peers = len(self.indices()) - isps
        multi = sum(1 for index in self.indices() if self.is_multi_homed(index))
        text = (
            f"{len(self.customers)} customer(s), {isps} ISP(s) "
            f"({multi} multi-homed)"
        )
        if peers:
            text += f", {peers} transit-forbidden peer(s)"
        return text


def ingress_map_of(topology: Topology, router: str) -> Optional[str]:
    """The ingress-tag route-map name on ``router``'s first
    transit-forbidden attachment, or None when it has no attachment."""
    from .reference import ingress_map_name

    attachments = RoleAssignment.from_topology(topology).attachments_of(router)
    if not attachments:
        return None
    return ingress_map_name(attachments[0].index)


def egress_map_of(topology: Topology, router: str) -> Optional[str]:
    """The egress-filter route-map name on ``router``'s first
    transit-forbidden attachment, or None when it has no attachment."""
    from .reference import egress_map_name

    attachments = RoleAssignment.from_topology(topology).attachments_of(router)
    if not attachments:
        return None
    return egress_map_name(attachments[0].index)
