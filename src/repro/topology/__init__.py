"""Topology: JSON network model, the star generator (Figure 4) plus the
chain/ring/mesh/dumbbell families, seeded random/Waxman families with
first-class role placement, and the paper's custom topology verifier
(Table 3)."""

from .families import (
    FAMILIES,
    SEEDED_FAMILIES,
    GeneratedNetwork,
    generate_chain_network,
    generate_dumbbell_network,
    generate_mesh_network,
    generate_network,
    generate_random_network,
    generate_ring_network,
    generate_waxman_network,
    is_hub_star,
)
from .roles import RoleAssignment, RoleAttachment, RoleKind, RoleSpec
from .generator import StarNetwork, generate_star_network, ingress_community
from .model import (
    ExternalPeer,
    InterfaceSpec,
    Link,
    NeighborSpec,
    RouterSpec,
    Topology,
)
from .verifier import (
    TopologyIssue,
    TopologyIssueKind,
    verify_network,
    verify_topology,
)

__all__ = [
    "ExternalPeer",
    "FAMILIES",
    "GeneratedNetwork",
    "InterfaceSpec",
    "Link",
    "NeighborSpec",
    "RoleAssignment",
    "RoleAttachment",
    "RoleKind",
    "RoleSpec",
    "RouterSpec",
    "SEEDED_FAMILIES",
    "StarNetwork",
    "Topology",
    "TopologyIssue",
    "TopologyIssueKind",
    "generate_chain_network",
    "generate_dumbbell_network",
    "generate_mesh_network",
    "generate_network",
    "generate_random_network",
    "generate_ring_network",
    "generate_star_network",
    "generate_waxman_network",
    "ingress_community",
    "is_hub_star",
    "verify_network",
    "verify_topology",
]
