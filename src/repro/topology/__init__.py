"""Topology: JSON network model, star generator (Figure 4), and the
paper's custom topology verifier (Table 3)."""

from .generator import StarNetwork, generate_star_network, ingress_community
from .model import (
    ExternalPeer,
    InterfaceSpec,
    Link,
    NeighborSpec,
    RouterSpec,
    Topology,
)
from .verifier import (
    TopologyIssue,
    TopologyIssueKind,
    verify_network,
    verify_topology,
)

__all__ = [
    "ExternalPeer",
    "InterfaceSpec",
    "Link",
    "NeighborSpec",
    "RouterSpec",
    "StarNetwork",
    "Topology",
    "TopologyIssue",
    "TopologyIssueKind",
    "generate_star_network",
    "ingress_community",
    "verify_network",
    "verify_topology",
]
