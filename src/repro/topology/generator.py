"""Star network generator (Figure 4).

§4.1: "We wrote an automated script that generates text given the
topology as input ... The 'network generator' therefore only needs the
number of routers as input.  It has two outputs: 1) a textual
description and 2) a JSON dictionary for the entire network topology."

Addressing scheme (consistent with Table 3's examples):

* routers ``R1..Rn``, router ``Ri`` in AS ``i``;
* hub link R1–Ri (i ≥ 2) uses subnet ``(i-1).0.0.0/24`` with R1 at
  ``(i-1).0.0.1`` and Ri at ``(i-1).0.0.2`` (so R2's neighbor is
  ``1.0.0.1 AS 1`` and R2's router-id is ``1.0.0.2``, as in Table 3);
* R1's customer attachment uses ``100.0.0.0/24`` (CUSTOMER at
  ``100.0.0.2``);
* Ri's ISP attachment uses ``200.i.0.0/24`` (ISP_i at ``200.i.0.2``,
  AS ``1000 + i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..netmodel.communities import Community
from ..netmodel.ip import Ipv4Address, Prefix
from .model import (
    ExternalPeer,
    InterfaceSpec,
    Link,
    NeighborSpec,
    RouterSpec,
    Topology,
)

__all__ = ["StarNetwork", "generate_star_network", "ingress_community"]

MIN_ROUTERS = 2
MAX_ROUTERS = 50  # keeps the 200.i.0.0/24 scheme inside one octet

CUSTOMER_ASN = 65001
CUSTOMER_SUBNET = "100.0.0.0/24"


def ingress_community(router_index: int) -> Community:
    """The community R1 tags on routes arriving from ``R<router_index>``.

    §4.2 associates ``100:1`` with R2, ``101:1`` with R3, and so on.
    """
    if router_index < 2:
        raise ValueError("ingress communities exist only for spoke routers")
    return Community(98 + router_index, 1)


@dataclass
class StarNetwork:
    """Generator output: the JSON-able topology plus the prose prompt."""

    topology: Topology
    description: str

    @property
    def size(self) -> int:
        return len(self.topology.routers)


def generate_star_network(router_count: int) -> StarNetwork:
    """Build the n-router star of Figure 4."""
    if not MIN_ROUTERS <= router_count <= MAX_ROUTERS:
        raise ValueError(
            f"router_count must be in [{MIN_ROUTERS}, {MAX_ROUTERS}], "
            f"got {router_count}"
        )
    topology = Topology(name=f"star-{router_count}")
    hub = RouterSpec(
        name="R1",
        asn=1,
        router_id=Ipv4Address.parse("100.0.0.1"),
    )
    hub.interfaces.append(
        InterfaceSpec(
            name="eth0/0",
            address=Ipv4Address.parse("100.0.0.1"),
            prefix=Prefix.parse(CUSTOMER_SUBNET),
        )
    )
    hub.neighbors.append(
        NeighborSpec(
            ip=Ipv4Address.parse("100.0.0.2"),
            asn=CUSTOMER_ASN,
            peer_name="CUSTOMER",
        )
    )
    hub.networks.append(Prefix.parse(CUSTOMER_SUBNET))
    topology.add_router(hub)
    topology.externals.append(
        ExternalPeer(
            router="R1",
            interface="eth0/0",
            peer_name="CUSTOMER",
            peer_ip=Ipv4Address.parse("100.0.0.2"),
            peer_asn=CUSTOMER_ASN,
        )
    )
    for index in range(2, router_count + 1):
        _add_spoke(topology, hub, index)
    description = _describe(topology)
    return StarNetwork(topology=topology, description=description)


def _add_spoke(topology: Topology, hub: RouterSpec, index: int) -> None:
    subnet = Prefix.parse(f"{index - 1}.0.0.0/24")
    hub_address = Ipv4Address.parse(f"{index - 1}.0.0.1")
    spoke_address = Ipv4Address.parse(f"{index - 1}.0.0.2")
    isp_subnet = Prefix.parse(f"200.{index}.0.0/24")
    isp_router_address = Ipv4Address.parse(f"200.{index}.0.1")
    isp_peer_address = Ipv4Address.parse(f"200.{index}.0.2")
    isp_asn = 1000 + index
    spoke = RouterSpec(
        name=f"R{index}",
        asn=index,
        router_id=spoke_address,
    )
    spoke.interfaces.append(
        InterfaceSpec(name="eth0/0", address=spoke_address, prefix=subnet)
    )
    spoke.interfaces.append(
        InterfaceSpec(name="eth0/1", address=isp_router_address, prefix=isp_subnet)
    )
    spoke.neighbors.append(
        NeighborSpec(ip=hub_address, asn=hub.asn, peer_name="R1")
    )
    spoke.neighbors.append(
        NeighborSpec(ip=isp_peer_address, asn=isp_asn, peer_name=f"ISP_{index}")
    )
    spoke.networks.append(subnet)
    spoke.networks.append(isp_subnet)
    topology.add_router(spoke)
    hub_interface = f"eth0/{index - 1}"
    hub.interfaces.append(
        InterfaceSpec(name=hub_interface, address=hub_address, prefix=subnet)
    )
    hub.neighbors.append(
        NeighborSpec(ip=spoke_address, asn=index, peer_name=f"R{index}")
    )
    topology.links.append(
        Link(
            router_a="R1",
            interface_a=hub_interface,
            router_b=f"R{index}",
            interface_b="eth0/0",
            subnet=subnet,
        )
    )
    topology.externals.append(
        ExternalPeer(
            router=f"R{index}",
            interface="eth0/1",
            peer_name=f"ISP_{index}",
            peer_ip=isp_peer_address,
            peer_asn=isp_asn,
        )
    )


def _describe(topology: Topology) -> str:
    """The prose the Modularizer feeds GPT-4 (§2: "Router R1 is connected
    to Router R2 via interface I1 at R1 and I2 at R2")."""
    sentences: List[str] = []
    names = topology.router_names()
    kind = topology.name.split("-")[0]
    if kind not in (
        "star", "chain", "ring", "mesh", "dumbbell", "random", "waxman"
    ):
        kind = "network"
    sentences.append(
        f"The network is a {kind} of {len(names)} routers named "
        f"{', '.join(names)}. Router Ri runs BGP in autonomous system i."
    )
    for link in topology.links:
        a_spec = topology.router(link.router_a).interface(link.interface_a)
        b_spec = topology.router(link.router_b).interface(link.interface_b)
        assert a_spec is not None and b_spec is not None
        sentences.append(
            f"Router {link.router_a} is connected to Router {link.router_b} "
            f"via interface {link.interface_a} at {link.router_a} and "
            f"{link.interface_b} at {link.router_b}; the link subnet is "
            f"{link.subnet}, {link.router_a} uses address {a_spec.address} "
            f"and {link.router_b} uses address {b_spec.address}."
        )
    for peer in topology.externals:
        sentences.append(
            f"Router {peer.router} is attached to {peer.peer_name} on "
            f"interface {peer.interface}; the peer's address is "
            f"{peer.peer_ip} in AS {peer.peer_asn}."
        )
    for name in names:
        router = topology.router(name)
        networks = ", ".join(str(prefix) for prefix in router.networks)
        sentences.append(
            f"Router {name} (router-id {router.router_id}) must announce "
            f"the networks: {networks}."
        )
    return "\n".join(sentences)
