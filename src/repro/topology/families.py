"""Topology families beyond the Figure 4 star.

The paper closes with "much further testing in more complex use cases is
needed".  This module supplies that diversity: chain, ring, full-mesh,
and dumbbell generators that emit the same machine-readable
:class:`~repro.topology.model.Topology` (plus prose description) as
:func:`~repro.topology.generator.generate_star_network`, so every
downstream stage — Modularizer, per-router synthesis, topology verifier,
Lightyear-style local invariants, and the global BGP-simulation check —
runs unchanged on any family.

Conventions shared by all generated families:

* routers ``R1..Rn``, router ``Ri`` in AS ``i``;
* internal link *k* (1-based, in creation order) uses subnet
  ``10.k.0.0/24`` with the lower-indexed endpoint at ``10.k.0.1`` and
  the higher at ``10.k.0.2``; the lower endpoint announces the subnet;
* the CUSTOMER attaches to ``R1`` on ``100.0.0.0/24`` (as in the star);
* ``ISP_i`` attaches to ``Ri`` on ``200.i.0.0/24`` (router at ``.1``,
  peer at ``.2``, AS ``1000 + i``) — every router except the customer
  router carries an ISP, except in the dumbbell where the two core
  routers stay ISP-free;
* interface names count up per router (``eth0/0``, ``eth0/1``, ...),
  links first, external attachments last.

Unlike the star — whose no-transit policy is concentrated on the hub —
these families place the policy on the *border* routers: each
ISP-attached router tags its ISP's routes with that ISP's community when
they enter the network and drops routes carrying any other ISP's
community at the egress back out.  :func:`is_hub_star` tells the two
placements apart structurally, so reference configs, invariants, and the
global check dispatch without any family-specific flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..netmodel.ip import Ipv4Address, Prefix
from .generator import (
    CUSTOMER_ASN,
    CUSTOMER_SUBNET,
    generate_star_network,
)
from .model import (
    ExternalPeer,
    InterfaceSpec,
    Link,
    NeighborSpec,
    RouterSpec,
    Topology,
)
from .roles import attachment_isp_index

__all__ = [
    "FAMILIES",
    "GeneratedNetwork",
    "SEEDED_FAMILIES",
    "attachment_index",
    "customer_attachment",
    "generate_chain_network",
    "generate_dumbbell_network",
    "generate_mesh_network",
    "generate_network",
    "generate_random_network",
    "generate_ring_network",
    "generate_waxman_network",
    "is_hub_star",
    "isp_attachments",
]

MIN_SIZE = 4  # the default fault assignment needs four routers
MAX_SIZE = 22  # keeps the mesh's 10.k.0.0/24 link numbering in one octet


@dataclass
class GeneratedNetwork:
    """Generator output: topology, prose description, and family name.

    Seeded families (random/waxman) also record the seed, the role spec
    they placed, and the placement strategy (``seeded``/``degree``);
    the hand-shaped families leave all three at their defaults."""

    topology: Topology
    description: str
    family: str
    seed: Optional[int] = None
    roles: Optional[str] = None
    place: Optional[str] = None

    @property
    def size(self) -> int:
        return len(self.topology.routers)


# -- role helpers ------------------------------------------------------------


def customer_attachment(topology: Topology) -> Optional[ExternalPeer]:
    """The first CUSTOMER external peer, or None if there is none."""
    for peer in topology.externals:
        if peer.peer_name == "CUSTOMER":
            return peer
    return None


def isp_attachments(topology: Topology) -> List[ExternalPeer]:
    """Every transit-forbidden external attachment (ISPs and PEERs —
    everything that is not a customer), in router order."""
    peers = [
        peer
        for peer in topology.externals
        if not peer.peer_name.startswith("CUSTOMER")
    ]
    order = {name: rank for rank, name in enumerate(topology.router_names())}
    return sorted(peers, key=lambda peer: (order[peer.router], peer.peer_name))


# Single implementation of the community-slot derivation; re-exported
# here under its historical name for existing callers.
attachment_index = attachment_isp_index


def is_hub_star(topology: Topology) -> bool:
    """True iff the topology is hub-shaped: R1 links every other router
    and no other internal links exist (the Figure 4 star).  Hub-shaped
    networks keep the paper's hub-concentrated policy; everything else
    uses border-placed policy."""
    if "R1" not in topology.routers or not topology.links:
        return False
    others = {name for name in topology.routers if name != "R1"}
    linked: Dict[str, int] = {}
    for link in topology.links:
        ends = {link.router_a, link.router_b}
        if "R1" not in ends or len(ends) != 2:
            return False
        (other,) = ends - {"R1"}
        linked[other] = linked.get(other, 0) + 1
    return set(linked) == others and all(count == 1 for count in linked.values())


# -- shared construction helpers ---------------------------------------------


class _Builder:
    """Accumulates routers/links/externals with the shared conventions."""

    def __init__(self, name: str, size: int) -> None:
        self.topology = Topology(name=name)
        self._interface_counts: Dict[str, int] = {}
        self._link_count = 0
        for index in range(1, size + 1):
            self.topology.add_router(
                RouterSpec(
                    name=f"R{index}",
                    asn=index,
                    router_id=Ipv4Address.parse("0.0.0.0"),  # fixed up later
                )
            )

    def _next_interface(self, router: str) -> str:
        count = self._interface_counts.get(router, 0)
        self._interface_counts[router] = count + 1
        return f"eth0/{count}"

    def link(self, a: int, b: int) -> None:
        """Join ``Ra`` and ``Rb`` with the next ``10.k.0.0/24`` subnet."""
        low, high = sorted((a, b))
        self._link_count += 1
        subnet = Prefix.parse(f"10.{self._link_count}.0.0/24")
        low_name, high_name = f"R{low}", f"R{high}"
        low_address = Ipv4Address.parse(f"10.{self._link_count}.0.1")
        high_address = Ipv4Address.parse(f"10.{self._link_count}.0.2")
        low_interface = self._next_interface(low_name)
        high_interface = self._next_interface(high_name)
        low_spec = self.topology.router(low_name)
        high_spec = self.topology.router(high_name)
        low_spec.interfaces.append(
            InterfaceSpec(name=low_interface, address=low_address, prefix=subnet)
        )
        high_spec.interfaces.append(
            InterfaceSpec(name=high_interface, address=high_address, prefix=subnet)
        )
        low_spec.neighbors.append(
            NeighborSpec(ip=high_address, asn=high, peer_name=high_name)
        )
        high_spec.neighbors.append(
            NeighborSpec(ip=low_address, asn=low, peer_name=low_name)
        )
        low_spec.networks.append(subnet)
        self.topology.links.append(
            Link(
                router_a=low_name,
                interface_a=low_interface,
                router_b=high_name,
                interface_b=high_interface,
                subnet=subnet,
            )
        )

    def attach_customer(self, index: int = 1, ordinal: int = 1) -> None:
        """Attach customer ``ordinal`` (1-based) to router ``R<index>``.

        The first customer keeps the classic name/subnet (``CUSTOMER``
        on ``100.0.0.0/24``, AS 65001); customer ``c`` is
        ``CUSTOMER_c`` on ``100.(c-1).0.0/24`` with AS ``65000 + c``.
        """
        router_name = f"R{index}"
        spec = self.topology.router(router_name)
        subnet = (
            Prefix.parse(CUSTOMER_SUBNET)
            if ordinal == 1
            else Prefix.parse(f"100.{ordinal - 1}.0.0/24")
        )
        address = Ipv4Address.parse(f"100.{ordinal - 1}.0.1")
        peer_ip = Ipv4Address.parse(f"100.{ordinal - 1}.0.2")
        peer_name = "CUSTOMER" if ordinal == 1 else f"CUSTOMER_{ordinal}"
        peer_asn = CUSTOMER_ASN + (ordinal - 1)
        interface = self._next_interface(router_name)
        spec.interfaces.append(
            InterfaceSpec(name=interface, address=address, prefix=subnet)
        )
        spec.neighbors.append(
            NeighborSpec(ip=peer_ip, asn=peer_asn, peer_name=peer_name)
        )
        spec.networks.append(subnet)
        self.topology.externals.append(
            ExternalPeer(
                router=router_name,
                interface=interface,
                peer_name=peer_name,
                peer_ip=peer_ip,
                peer_asn=peer_asn,
            )
        )

    def attach_isp(
        self,
        index: int,
        isp_index: Optional[int] = None,
        home: int = 1,
        peer: bool = False,
    ) -> None:
        """Attach one home of ISP/peer ``isp_index`` to ``R<index>``.

        ``isp_index`` defaults to the router's own index (the legacy
        single-homed convention); ``home`` numbers the attachment
        subnets of a multi-homed ISP (``200.j.(home-1).0/24`` — home 1
        keeps the classic ``200.j.0.0/24``); ``peer=True`` names the
        attachment ``PEER_j``: transit-forbidden like an ISP, but with
        no customer-reachability obligation.
        """
        router_name = f"R{index}"
        isp = index if isp_index is None else isp_index
        spec = self.topology.router(router_name)
        subnet = Prefix.parse(f"200.{isp}.{home - 1}.0/24")
        address = Ipv4Address.parse(f"200.{isp}.{home - 1}.1")
        peer_ip = Ipv4Address.parse(f"200.{isp}.{home - 1}.2")
        peer_name = f"{'PEER' if peer else 'ISP'}_{isp}"
        interface = self._next_interface(router_name)
        spec.interfaces.append(
            InterfaceSpec(name=interface, address=address, prefix=subnet)
        )
        spec.neighbors.append(
            NeighborSpec(ip=peer_ip, asn=1000 + isp, peer_name=peer_name)
        )
        spec.networks.append(subnet)
        self.topology.externals.append(
            ExternalPeer(
                router=router_name,
                interface=interface,
                peer_name=peer_name,
                peer_ip=peer_ip,
                peer_asn=1000 + isp,
            )
        )

    def finish(self, family: str) -> GeneratedNetwork:
        for name in self.topology.router_names():
            spec = self.topology.router(name)
            if not spec.interfaces:
                raise ValueError(f"router {name} ended up unconnected")
            spec.router_id = spec.interfaces[0].address
        from .generator import _describe

        return GeneratedNetwork(
            topology=self.topology,
            description=_describe(self.topology),
            family=family,
        )


def _check_size(size: int, family: str) -> None:
    if not MIN_SIZE <= size <= MAX_SIZE:
        raise ValueError(
            f"{family} size must be in [{MIN_SIZE}, {MAX_SIZE}], got {size}"
        )


# -- the families ------------------------------------------------------------


def generate_chain_network(size: int) -> GeneratedNetwork:
    """``R1 - R2 - ... - Rn``; CUSTOMER at R1, ISPs at R2..Rn."""
    _check_size(size, "chain")
    builder = _Builder(f"chain-{size}", size)
    for index in range(1, size):
        builder.link(index, index + 1)
    builder.attach_customer()
    for index in range(2, size + 1):
        builder.attach_isp(index)
    return builder.finish("chain")


def generate_ring_network(size: int) -> GeneratedNetwork:
    """A chain closed into a cycle; CUSTOMER at R1, ISPs at R2..Rn."""
    _check_size(size, "ring")
    builder = _Builder(f"ring-{size}", size)
    for index in range(1, size):
        builder.link(index, index + 1)
    builder.link(size, 1)
    builder.attach_customer()
    for index in range(2, size + 1):
        builder.attach_isp(index)
    return builder.finish("ring")


def generate_mesh_network(size: int) -> GeneratedNetwork:
    """Every router pair directly linked; CUSTOMER at R1, ISPs at
    R2..Rn."""
    _check_size(size, "mesh")
    builder = _Builder(f"mesh-{size}", size)
    for a in range(1, size + 1):
        for b in range(a + 1, size + 1):
            builder.link(a, b)
    builder.attach_customer()
    for index in range(2, size + 1):
        builder.attach_isp(index)
    return builder.finish("mesh")


def generate_dumbbell_network(size: int) -> GeneratedNetwork:
    """Two cores (R1, R2) joined by one bottleneck link; the remaining
    routers hang off the cores alternately.  CUSTOMER at R1; ISPs on the
    leaves only — the cores stay policy-free transit routers."""
    _check_size(size, "dumbbell")
    builder = _Builder(f"dumbbell-{size}", size)
    builder.link(1, 2)
    for index in range(3, size + 1):
        builder.link(1 if index % 2 == 1 else 2, index)
    builder.attach_customer()
    for index in range(3, size + 1):
        builder.attach_isp(index)
    return builder.finish("dumbbell")


def _generate_star(size: int) -> GeneratedNetwork:
    star = generate_star_network(size)
    return GeneratedNetwork(
        topology=star.topology, description=star.description, family="star"
    )


from .randomnet import (  # noqa: E402  (needs _Builder defined above)
    generate_random_network,
    generate_waxman_network,
)

FAMILIES: Dict[str, Callable[..., GeneratedNetwork]] = {
    "star": _generate_star,
    "chain": generate_chain_network,
    "ring": generate_ring_network,
    "mesh": generate_mesh_network,
    "dumbbell": generate_dumbbell_network,
    "random": generate_random_network,
    "waxman": generate_waxman_network,
}

# Families whose generator takes (size, seed, roles, params); the
# hand-shaped families take only a size and reject the other axes.
SEEDED_FAMILIES = frozenset({"random", "waxman"})


def generate_network(
    family: str,
    size: int,
    seed: int = 0,
    roles: "object | str | None" = None,
    params: "Dict[str, float] | str | None" = None,
    place: "str | None" = None,
) -> GeneratedNetwork:
    """Generate one network of the named family.

    ``seed``, ``roles`` (a :class:`~repro.topology.roles.RoleSpec` or
    its string form, e.g. ``c2i3h2``), ``params`` (family knobs, e.g.
    ``p=0.4`` or ``alpha=0.5,beta=0.7``), and ``place`` (role-placement
    strategy: ``seeded`` or ``degree``) apply to the seeded random
    families only; the hand-shaped families are fully determined by
    their size and reject non-default values rather than silently
    ignoring them.
    """
    try:
        generator = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise ValueError(f"unknown family {family!r} (known: {known})") from None
    if family in SEEDED_FAMILIES:
        return generator(size, seed=seed, roles=roles, params=params, place=place)
    from .randomnet import coerce_placement, parse_topo_params
    from .roles import RoleSpec

    if RoleSpec.coerce(roles) is not None:
        raise ValueError(
            f"family {family!r} has a fixed role layout; role specs "
            f"apply to the seeded families ({', '.join(sorted(SEEDED_FAMILIES))})"
        )
    if parse_topo_params(params):
        raise ValueError(
            f"family {family!r} takes no topology knobs; knobs apply to "
            f"the seeded families ({', '.join(sorted(SEEDED_FAMILIES))})"
        )
    if coerce_placement(place) != "seeded":
        raise ValueError(
            f"family {family!r} has a fixed role layout; placement "
            f"strategies apply to the seeded families "
            f"({', '.join(sorted(SEEDED_FAMILIES))})"
        )
    return generator(size)
