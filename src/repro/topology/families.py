"""Topology families beyond the Figure 4 star.

The paper closes with "much further testing in more complex use cases is
needed".  This module supplies that diversity: chain, ring, full-mesh,
and dumbbell generators that emit the same machine-readable
:class:`~repro.topology.model.Topology` (plus prose description) as
:func:`~repro.topology.generator.generate_star_network`, so every
downstream stage — Modularizer, per-router synthesis, topology verifier,
Lightyear-style local invariants, and the global BGP-simulation check —
runs unchanged on any family.

Conventions shared by all generated families:

* routers ``R1..Rn``, router ``Ri`` in AS ``i``;
* internal link *k* (1-based, in creation order) uses subnet
  ``10.k.0.0/24`` with the lower-indexed endpoint at ``10.k.0.1`` and
  the higher at ``10.k.0.2``; the lower endpoint announces the subnet;
* the CUSTOMER attaches to ``R1`` on ``100.0.0.0/24`` (as in the star);
* ``ISP_i`` attaches to ``Ri`` on ``200.i.0.0/24`` (router at ``.1``,
  peer at ``.2``, AS ``1000 + i``) — every router except the customer
  router carries an ISP, except in the dumbbell where the two core
  routers stay ISP-free;
* interface names count up per router (``eth0/0``, ``eth0/1``, ...),
  links first, external attachments last.

Unlike the star — whose no-transit policy is concentrated on the hub —
these families place the policy on the *border* routers: each
ISP-attached router tags its ISP's routes with that ISP's community when
they enter the network and drops routes carrying any other ISP's
community at the egress back out.  :func:`is_hub_star` tells the two
placements apart structurally, so reference configs, invariants, and the
global check dispatch without any family-specific flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..netmodel.ip import Ipv4Address, Prefix
from .generator import (
    CUSTOMER_ASN,
    CUSTOMER_SUBNET,
    generate_star_network,
)
from .model import (
    ExternalPeer,
    InterfaceSpec,
    Link,
    NeighborSpec,
    RouterSpec,
    Topology,
)

__all__ = [
    "FAMILIES",
    "GeneratedNetwork",
    "attachment_index",
    "customer_attachment",
    "generate_chain_network",
    "generate_dumbbell_network",
    "generate_mesh_network",
    "generate_network",
    "generate_ring_network",
    "is_hub_star",
    "isp_attachments",
]

MIN_SIZE = 4  # the default fault assignment needs four routers
MAX_SIZE = 22  # keeps the mesh's 10.k.0.0/24 link numbering in one octet


@dataclass
class GeneratedNetwork:
    """Generator output: topology, prose description, and family name."""

    topology: Topology
    description: str
    family: str

    @property
    def size(self) -> int:
        return len(self.topology.routers)


# -- role helpers ------------------------------------------------------------


def customer_attachment(topology: Topology) -> Optional[ExternalPeer]:
    """The CUSTOMER external peer, or None if the topology has none."""
    for peer in topology.externals:
        if peer.peer_name == "CUSTOMER":
            return peer
    return None


def isp_attachments(topology: Topology) -> List[ExternalPeer]:
    """Every non-CUSTOMER external attachment, in router order."""
    peers = [
        peer for peer in topology.externals if peer.peer_name != "CUSTOMER"
    ]
    order = {name: rank for rank, name in enumerate(topology.router_names())}
    return sorted(peers, key=lambda peer: (order[peer.router], peer.peer_name))


def attachment_index(peer: ExternalPeer) -> int:
    """The numeric index of an ISP attachment (``ISP_5`` -> 5).

    Falls back to the attached router's index so custom peer names still
    get a deterministic community slot.
    """
    for name in (peer.peer_name, peer.router):
        digits = "".join(char for char in name if char.isdigit())
        if digits:
            return int(digits)
    raise ValueError(f"cannot derive an index for attachment {peer!r}")


def is_hub_star(topology: Topology) -> bool:
    """True iff the topology is hub-shaped: R1 links every other router
    and no other internal links exist (the Figure 4 star).  Hub-shaped
    networks keep the paper's hub-concentrated policy; everything else
    uses border-placed policy."""
    if "R1" not in topology.routers or not topology.links:
        return False
    others = {name for name in topology.routers if name != "R1"}
    linked: Dict[str, int] = {}
    for link in topology.links:
        ends = {link.router_a, link.router_b}
        if "R1" not in ends or len(ends) != 2:
            return False
        (other,) = ends - {"R1"}
        linked[other] = linked.get(other, 0) + 1
    return set(linked) == others and all(count == 1 for count in linked.values())


# -- shared construction helpers ---------------------------------------------


class _Builder:
    """Accumulates routers/links/externals with the shared conventions."""

    def __init__(self, name: str, size: int) -> None:
        self.topology = Topology(name=name)
        self._interface_counts: Dict[str, int] = {}
        self._link_count = 0
        for index in range(1, size + 1):
            self.topology.add_router(
                RouterSpec(
                    name=f"R{index}",
                    asn=index,
                    router_id=Ipv4Address.parse("0.0.0.0"),  # fixed up later
                )
            )

    def _next_interface(self, router: str) -> str:
        count = self._interface_counts.get(router, 0)
        self._interface_counts[router] = count + 1
        return f"eth0/{count}"

    def link(self, a: int, b: int) -> None:
        """Join ``Ra`` and ``Rb`` with the next ``10.k.0.0/24`` subnet."""
        low, high = sorted((a, b))
        self._link_count += 1
        subnet = Prefix.parse(f"10.{self._link_count}.0.0/24")
        low_name, high_name = f"R{low}", f"R{high}"
        low_address = Ipv4Address.parse(f"10.{self._link_count}.0.1")
        high_address = Ipv4Address.parse(f"10.{self._link_count}.0.2")
        low_interface = self._next_interface(low_name)
        high_interface = self._next_interface(high_name)
        low_spec = self.topology.router(low_name)
        high_spec = self.topology.router(high_name)
        low_spec.interfaces.append(
            InterfaceSpec(name=low_interface, address=low_address, prefix=subnet)
        )
        high_spec.interfaces.append(
            InterfaceSpec(name=high_interface, address=high_address, prefix=subnet)
        )
        low_spec.neighbors.append(
            NeighborSpec(ip=high_address, asn=high, peer_name=high_name)
        )
        high_spec.neighbors.append(
            NeighborSpec(ip=low_address, asn=low, peer_name=low_name)
        )
        low_spec.networks.append(subnet)
        self.topology.links.append(
            Link(
                router_a=low_name,
                interface_a=low_interface,
                router_b=high_name,
                interface_b=high_interface,
                subnet=subnet,
            )
        )

    def attach_customer(self, index: int = 1) -> None:
        router_name = f"R{index}"
        spec = self.topology.router(router_name)
        subnet = Prefix.parse(CUSTOMER_SUBNET)
        address = Ipv4Address.parse("100.0.0.1")
        peer_ip = Ipv4Address.parse("100.0.0.2")
        interface = self._next_interface(router_name)
        spec.interfaces.append(
            InterfaceSpec(name=interface, address=address, prefix=subnet)
        )
        spec.neighbors.append(
            NeighborSpec(ip=peer_ip, asn=CUSTOMER_ASN, peer_name="CUSTOMER")
        )
        spec.networks.append(subnet)
        self.topology.externals.append(
            ExternalPeer(
                router=router_name,
                interface=interface,
                peer_name="CUSTOMER",
                peer_ip=peer_ip,
                peer_asn=CUSTOMER_ASN,
            )
        )

    def attach_isp(self, index: int) -> None:
        router_name = f"R{index}"
        spec = self.topology.router(router_name)
        subnet = Prefix.parse(f"200.{index}.0.0/24")
        address = Ipv4Address.parse(f"200.{index}.0.1")
        peer_ip = Ipv4Address.parse(f"200.{index}.0.2")
        interface = self._next_interface(router_name)
        spec.interfaces.append(
            InterfaceSpec(name=interface, address=address, prefix=subnet)
        )
        spec.neighbors.append(
            NeighborSpec(
                ip=peer_ip, asn=1000 + index, peer_name=f"ISP_{index}"
            )
        )
        spec.networks.append(subnet)
        self.topology.externals.append(
            ExternalPeer(
                router=router_name,
                interface=interface,
                peer_name=f"ISP_{index}",
                peer_ip=peer_ip,
                peer_asn=1000 + index,
            )
        )

    def finish(self, family: str) -> GeneratedNetwork:
        for name in self.topology.router_names():
            spec = self.topology.router(name)
            if not spec.interfaces:
                raise ValueError(f"router {name} ended up unconnected")
            spec.router_id = spec.interfaces[0].address
        from .generator import _describe

        return GeneratedNetwork(
            topology=self.topology,
            description=_describe(self.topology),
            family=family,
        )


def _check_size(size: int, family: str) -> None:
    if not MIN_SIZE <= size <= MAX_SIZE:
        raise ValueError(
            f"{family} size must be in [{MIN_SIZE}, {MAX_SIZE}], got {size}"
        )


# -- the families ------------------------------------------------------------


def generate_chain_network(size: int) -> GeneratedNetwork:
    """``R1 - R2 - ... - Rn``; CUSTOMER at R1, ISPs at R2..Rn."""
    _check_size(size, "chain")
    builder = _Builder(f"chain-{size}", size)
    for index in range(1, size):
        builder.link(index, index + 1)
    builder.attach_customer()
    for index in range(2, size + 1):
        builder.attach_isp(index)
    return builder.finish("chain")


def generate_ring_network(size: int) -> GeneratedNetwork:
    """A chain closed into a cycle; CUSTOMER at R1, ISPs at R2..Rn."""
    _check_size(size, "ring")
    builder = _Builder(f"ring-{size}", size)
    for index in range(1, size):
        builder.link(index, index + 1)
    builder.link(size, 1)
    builder.attach_customer()
    for index in range(2, size + 1):
        builder.attach_isp(index)
    return builder.finish("ring")


def generate_mesh_network(size: int) -> GeneratedNetwork:
    """Every router pair directly linked; CUSTOMER at R1, ISPs at
    R2..Rn."""
    _check_size(size, "mesh")
    builder = _Builder(f"mesh-{size}", size)
    for a in range(1, size + 1):
        for b in range(a + 1, size + 1):
            builder.link(a, b)
    builder.attach_customer()
    for index in range(2, size + 1):
        builder.attach_isp(index)
    return builder.finish("mesh")


def generate_dumbbell_network(size: int) -> GeneratedNetwork:
    """Two cores (R1, R2) joined by one bottleneck link; the remaining
    routers hang off the cores alternately.  CUSTOMER at R1; ISPs on the
    leaves only — the cores stay policy-free transit routers."""
    _check_size(size, "dumbbell")
    builder = _Builder(f"dumbbell-{size}", size)
    builder.link(1, 2)
    for index in range(3, size + 1):
        builder.link(1 if index % 2 == 1 else 2, index)
    builder.attach_customer()
    for index in range(3, size + 1):
        builder.attach_isp(index)
    return builder.finish("dumbbell")


def _generate_star(size: int) -> GeneratedNetwork:
    star = generate_star_network(size)
    return GeneratedNetwork(
        topology=star.topology, description=star.description, family="star"
    )


FAMILIES: Dict[str, Callable[[int], GeneratedNetwork]] = {
    "star": _generate_star,
    "chain": generate_chain_network,
    "ring": generate_ring_network,
    "mesh": generate_mesh_network,
    "dumbbell": generate_dumbbell_network,
}


def generate_network(family: str, size: int) -> GeneratedNetwork:
    """Generate one network of the named family."""
    try:
        generator = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise ValueError(f"unknown family {family!r} (known: {known})") from None
    return generator(size)
