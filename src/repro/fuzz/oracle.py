"""Run one fuzz scenario under one toggle combination and observe it.

An *observation* is a plain JSON-able structure capturing everything
the conformance contract promises is toggle-independent: after every
policy edit, the full RIB of every router (attributes, provenance
path), the local-invariant violations with their witness routes, and
the global no-transit verdict with per-role breakdowns.  Symbolic memo
traffic is captured alongside — canonical memo keys make the hit/miss
pattern datapath-independent, so it is compared between route-model
partners that share every other toggle.

The all-legacy baseline (:data:`LEGACY_BASELINE`) is the oracle every
other combination is compared against; a fast path may only ship while
it is provably equivalent to the path it wants to retire.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, List, Optional, Tuple

from ..core import toggles
from .edits import apply_edit_op, resolve_router
from .scenarios import FuzzScenario

__all__ = [
    "ALL_NEW",
    "FUZZ_FACTORS",
    "LEGACY_BASELINE",
    "all_combos",
    "diff_memo_traffic",
    "diff_observations",
    "memo_partner",
    "observe",
    "pairwise_combos",
]

# The fuzzed toggle axes, in canonical order.  ``worker_shipping`` is a
# campaign-transport toggle with no per-scenario semantics, so it is
# covered by its own differential suite, not fuzzed here.
FUZZ_FACTORS: Tuple[Tuple[str, Tuple[Any, ...]], ...] = (
    ("route_model", ("v1", "v2")),
    ("decision_cache", (False, True)),
    ("batched_evaluation", (False, True)),
    ("incremental_simulation", (False, True)),
    ("memoization", (False, True)),
)

LEGACY_BASELINE: Dict[str, Any] = {
    "route_model": "v1",
    "decision_cache": False,
    "batched_evaluation": False,
    "incremental_simulation": False,
    "memoization": False,
}

ALL_NEW: Dict[str, Any] = {
    "route_model": "v2",
    "decision_cache": True,
    "batched_evaluation": True,
    "incremental_simulation": True,
    "memoization": True,
}


def all_combos() -> List[Dict[str, Any]]:
    """Every toggle combination (32), in a fixed enumeration order
    starting from the all-legacy baseline."""
    names = [name for name, _values in FUZZ_FACTORS]
    return [
        dict(zip(names, values))
        for values in itertools.product(
            *(values for _name, values in FUZZ_FACTORS)
        )
    ]


def pairwise_combos() -> List[Dict[str, Any]]:
    """A deterministic pairwise-covering subset of the combinations.

    Greedy cover: starts from the baseline and the all-new corner,
    then repeatedly adds the enumeration-order-first combination that
    covers the most uncovered factor-value pairs.  Every pair of
    (factor, value) settings appears in at least one returned
    combination — the cheap mode for time-budgeted nightly runs.
    """
    candidates = all_combos()
    names = [name for name, _values in FUZZ_FACTORS]

    def pairs_of(combo: Dict[str, Any]) -> set:
        return {
            (a, combo[a], b, combo[b])
            for a, b in itertools.combinations(names, 2)
        }

    needed = set()
    for combo in candidates:
        needed |= pairs_of(combo)
    chosen = [dict(LEGACY_BASELINE), dict(ALL_NEW)]
    covered = pairs_of(LEGACY_BASELINE) | pairs_of(ALL_NEW)
    while needed - covered:
        best = max(
            candidates,
            key=lambda combo: len(pairs_of(combo) - covered),
        )
        chosen.append(dict(best))
        covered |= pairs_of(best)
    return chosen


def memo_partner(combo: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The combination whose memo traffic must equal this one's.

    Canonical memo keys make cache traffic independent of the route
    model, so a memoized v2 combination is compared against its v1
    twin (every other toggle equal).  ``None`` when no comparison
    applies (memoization off, or already the v1 side).
    """
    if not combo.get("memoization") or combo.get("route_model") != "v2":
        return None
    partner = dict(combo)
    partner["route_model"] = "v1"
    return partner


def _canonical_route(route) -> list:
    return [
        str(route.prefix),
        list(route.as_path.asns),
        sorted(str(community) for community in route.communities),
        route.med,
        route.local_pref,
        str(route.next_hop),
    ]


def _canonical_ribs(simulation) -> Dict[str, Dict[str, list]]:
    return {
        name: {
            str(entry.route.prefix): (
                _canonical_route(entry.route)
                + [
                    entry.learned_from or "",
                    entry.origin_router,
                    list(entry.path),
                ]
            )
            for entry in simulation.rib(name).values()
        }
        for name in sorted(simulation._configs)
    }


def _step_observation(state, configs, topology, invariants) -> dict:
    from ..lightyear import check_global_no_transit, verify_invariants

    violations = verify_invariants(copy.deepcopy(configs), invariants)
    check = check_global_no_transit(copy.deepcopy(configs), topology)
    return {
        "ribs": _canonical_ribs(state.simulation),
        "violations": [
            [
                violation.router,
                violation.policy_name,
                violation.message,
                _canonical_route(violation.witness),
            ]
            for violation in violations
        ],
        "global": {
            "holds": check.holds,
            "detail": check.describe(),
            "roles": dict(sorted(check.role_verdicts.items())),
        },
    }


def observe(scenario: FuzzScenario, combo: Dict[str, Any]) -> dict:
    """Execute the scenario under the toggle combination.

    Raises whatever generation raises for impossible coordinates (the
    shrinker treats that as "not a valid smaller input").  All warm
    process-local state (memo caches, global-check simulation states)
    is reset on entry so observations are hermetic per combination.
    """
    from ..batfish.bgpsim import SimulationState
    from ..experiments.no_transit import materialize_network
    from ..lightyear import no_transit_invariants
    from ..lightyear.compose import reset_simulation_states
    from ..symbolic.memo import cache_totals, reset_caches
    from ..topology.reference import build_reference_configs

    with toggles.scoped(**combo):
        reset_caches()
        reset_simulation_states()
        network = materialize_network(
            scenario.family,
            scenario.size,
            roles=scenario.roles,
            topo=scenario.topo,
            topology_seed=scenario.topology_seed,
            place=scenario.place,
        )
        topology = network.topology
        configs = build_reference_configs(topology)
        invariants = no_transit_invariants(topology)
        hits_before, misses_before = cache_totals()
        state = SimulationState()
        state.converge(copy.deepcopy(configs))
        steps = [
            {"applied": None}
            | _step_observation(state, configs, topology, invariants)
        ]
        for edit in scenario.edits:
            router = resolve_router(edit.router_index, configs)
            applied = apply_edit_op(edit.op, configs, router)
            state.resimulate(copy.deepcopy(configs), {router})
            steps.append(
                {"applied": [router, edit.op, applied]}
                | _step_observation(state, configs, topology, invariants)
            )
        hits_after, misses_after = cache_totals()
        reset_simulation_states()
        return {
            "scenario": scenario.key(),
            "steps": steps,
            "memo": [hits_after - hits_before, misses_after - misses_before],
        }


def _first_rib_divergence(base: dict, other: dict) -> str:
    for router in sorted(set(base) | set(other)):
        left, right = base.get(router), other.get(router)
        if left == right:
            continue
        left, right = left or {}, right or {}
        for prefix in sorted(set(left) | set(right)):
            if left.get(prefix) != right.get(prefix):
                return (
                    f"router {router} prefix {prefix}: "
                    f"baseline={left.get(prefix)} vs {right.get(prefix)}"
                )
    return "rib key sets differ"


def diff_observations(baseline: dict, other: dict) -> Optional[str]:
    """The first semantic divergence between two observations, or
    ``None`` when they agree (memo traffic is compared separately —
    see :func:`diff_memo_traffic`)."""
    base_steps, other_steps = baseline["steps"], other["steps"]
    if len(base_steps) != len(other_steps):
        return (
            f"step counts differ: {len(base_steps)} vs {len(other_steps)}"
        )
    for index, (left, right) in enumerate(zip(base_steps, other_steps)):
        if left["applied"] != right["applied"]:
            return (
                f"step {index}: edit applicability diverged "
                f"({left['applied']} vs {right['applied']})"
            )
        if left["ribs"] != right["ribs"]:
            return f"step {index}: RIBs diverged — " + _first_rib_divergence(
                left["ribs"], right["ribs"]
            )
        if left["violations"] != right["violations"]:
            return (
                f"step {index}: invariant violations diverged "
                f"(baseline {len(left['violations'])}: "
                f"{left['violations']} vs {len(right['violations'])}: "
                f"{right['violations']})"
            )
        if left["global"] != right["global"]:
            return (
                f"step {index}: global verdict diverged "
                f"({left['global']} vs {right['global']})"
            )
    return None


def diff_memo_traffic(left: dict, right: dict) -> Optional[str]:
    """Memo hit/miss divergence between two route-model partner runs."""
    if left["memo"] != right["memo"]:
        return (
            f"memo traffic diverged: v1 {left['memo']} vs v2 {right['memo']}"
        )
    return None
