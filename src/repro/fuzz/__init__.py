"""Differential fuzzing of the simulator/verifier toggle surface.

The repo carries five independent A/B toggles (route model v1/v2, the
best-path decision cache, batched route-map evaluation, incremental
re-simulation, symbolic memoization) and nine topology-family cells.
Every fast path must be observationally identical to the legacy path —
the hand-written differential suites spot-check that contract; this
package fuzzes it continuously:

* :mod:`scenarios` generates seeded random (family, size, roles, topo
  knobs, placement, policy-edit sequence) scenarios;
* :mod:`oracle` runs one scenario under a toggle combination and
  records canonical observations (per-step RIBs, invariant violations
  with witnesses, global verdicts, memo traffic);
* :mod:`harness` drives the loop: every combination (or a pairwise
  covering subset) against the all-legacy baseline, streaming results
  through the campaign's JSONL journal substrate;
* :mod:`shrink` delta-debugs a mismatch down to a minimal repro;
* :mod:`corpus` serializes shrunk repros into ``tests/fuzz_corpus/``,
  where a pytest harness replays every file as a tier-1 differential
  test forever after.
"""

from .corpus import load_repro, replay_record, repro_filename, write_repro
from .harness import FuzzConfig, FuzzSummary, run_fuzz, run_fuzz_iteration
from .oracle import (
    LEGACY_BASELINE,
    all_combos,
    diff_observations,
    observe,
    pairwise_combos,
)
from .scenarios import FuzzEdit, FuzzScenario, scenario_at
from .shrink import shrink_scenario

__all__ = [
    "FuzzConfig",
    "FuzzEdit",
    "FuzzScenario",
    "FuzzSummary",
    "LEGACY_BASELINE",
    "all_combos",
    "diff_observations",
    "load_repro",
    "observe",
    "pairwise_combos",
    "replay_record",
    "repro_filename",
    "run_fuzz",
    "run_fuzz_iteration",
    "scenario_at",
    "shrink_scenario",
    "write_repro",
]
