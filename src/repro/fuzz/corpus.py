"""The shrunk-repro corpus: serialize, load, and replay.

Every mismatch the fuzzer finds is shrunk and serialized as one JSON
file under ``tests/fuzz_corpus/``.  A corpus file is self-contained:
the minimal scenario, the toggle combination that diverged, the
baseline it diverged from, and the divergence observed at capture
time.  ``replay_record`` re-runs the comparison from scratch, so each
checked-in file is a permanent tier-1 differential test — it fails
again the moment the bug it captured is reintroduced.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .oracle import diff_memo_traffic, diff_observations, observe
from .scenarios import FuzzScenario

__all__ = [
    "CORPUS_VERSION",
    "corpus_files",
    "load_repro",
    "make_record",
    "replay_file",
    "replay_record",
    "repro_filename",
    "write_repro",
]

CORPUS_VERSION = 1


def make_record(
    scenario: FuzzScenario,
    combo: Dict[str, Any],
    baseline: Dict[str, Any],
    kind: str,
    mismatch: str,
    fuzz_seed: Optional[int] = None,
    index: Optional[int] = None,
) -> dict:
    """One corpus record.  ``kind`` is ``"semantic"`` (observation vs
    baseline) or ``"memo"`` (route-model partner memo traffic)."""
    record = {
        "kind": "fuzz_repro",
        "version": CORPUS_VERSION,
        "check": kind,
        "scenario": scenario.to_dict(),
        "combo": combo,
        "baseline": baseline,
        "mismatch": mismatch,
    }
    if fuzz_seed is not None:
        record["fuzz_seed"] = fuzz_seed
    if index is not None:
        record["index"] = index
    return record


def repro_filename(record: dict) -> str:
    """A deterministic, content-addressed corpus filename."""
    material = json.dumps(
        {
            "scenario": record["scenario"],
            "combo": record["combo"],
            "baseline": record["baseline"],
            "check": record["check"],
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]
    scenario = FuzzScenario.from_dict(record["scenario"])
    return f"fuzz-{scenario.family}-{scenario.size}-{digest}.json"


def write_repro(directory: "Path | str", record: dict) -> Path:
    """Serialize a record into the corpus directory (idempotent: the
    content-addressed name means re-finding the same bug rewrites the
    same file byte for byte)."""
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / repro_filename(record)
    target.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return target


def load_repro(path: "Path | str") -> dict:
    record = json.loads(Path(path).read_text())
    if record.get("kind") != "fuzz_repro":
        raise ValueError(f"{path} is not a fuzz repro file")
    return record


def replay_record(record: dict) -> Optional[str]:
    """Re-run a corpus record's comparison from scratch.

    Returns ``None`` when the paths agree (the bug stays fixed) or the
    divergence description when they do not.
    """
    scenario = FuzzScenario.from_dict(record["scenario"])
    combo = record["combo"]
    baseline = record["baseline"]
    if record.get("check") == "memo":
        return diff_memo_traffic(
            observe(scenario, baseline), observe(scenario, combo)
        )
    return diff_observations(
        observe(scenario, baseline), observe(scenario, combo)
    )


def replay_file(path: "Path | str") -> Optional[str]:
    return replay_record(load_repro(path))


def corpus_files(directory: "Path | str") -> List[Path]:
    """Every corpus file, sorted for deterministic replay order."""
    target = Path(directory)
    if not target.is_dir():
        return []
    return sorted(target.glob("*.json"))
