"""The fuzz loop: scenarios × toggle combinations, against the baseline.

Each iteration derives its scenario purely from ``(fuzz_seed, index)``
(see :mod:`repro.fuzz.scenarios`), observes it under the all-legacy
baseline and under every other toggle combination — all 32, or the
pairwise covering subset — and reports the first divergence.  A
divergence is delta-debugged down to a minimal scenario and returned
as a ready-to-serialize corpus record.

Results stream through the campaign's JSONL journal substrate: every
finished iteration is appended and flushed, ``resume=True`` folds the
journal first and re-runs only missing indices, and the final summary
is rebuilt by folding — so an interrupted nightly fuzz run continues
where it stopped, at any worker count, with a byte-identical outcome.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core import toggles
from .corpus import make_record, write_repro
from .oracle import (
    LEGACY_BASELINE,
    all_combos,
    diff_memo_traffic,
    diff_observations,
    memo_partner,
    observe,
    pairwise_combos,
)
from .scenarios import FuzzScenario, scenario_at
from .shrink import shrink_scenario

__all__ = [
    "FUZZ_JOURNAL_VERSION",
    "FuzzConfig",
    "FuzzIterationResult",
    "FuzzSummary",
    "fold_fuzz_journal",
    "lint_scenario",
    "run_fuzz",
    "run_fuzz_iteration",
]

# v2 adds the static-analysis cross-check columns to every executed
# iteration: ``broken`` (did the baseline observation end with a
# violated invariant or failed global check), ``lint_findings``/
# ``lint_high`` (analyzer counts over the final edited configs), and
# ``recall_gap`` (simulator says broken, analyzer found nothing — a
# journaled hole in the lint rule set).  Folding stays tolerant in
# both directions.
FUZZ_JOURNAL_VERSION = 2


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz run's knobs.

    ``iterations`` pins an exact, deterministic amount of work;
    ``budget_s`` instead runs until the wall-clock budget is spent
    (the nightly mode).  ``planted`` names hidden known-bug flags to
    re-enable — the harness's self-test mechanism, proving the loop
    can find, shrink, and serialize a real historical bug.
    """

    fuzz_seed: int = 0
    iterations: Optional[int] = None
    budget_s: Optional[float] = None
    pairs: bool = False
    workers: int = 1
    corpus_dir: "Path | str" = Path("tests/fuzz_corpus")
    planted: Tuple[str, ...] = ()

    def combos(self) -> List[Dict[str, Any]]:
        return pairwise_combos() if self.pairs else all_combos()


@dataclass(frozen=True)
class FuzzIterationResult:
    """One iteration's outcome (one journal row)."""

    index: int
    key: str
    ok: bool
    check: Optional[str] = None  # "semantic" | "memo" when not ok
    combo: Optional[Dict[str, Any]] = None
    mismatch: Optional[str] = None
    repro: Optional[dict] = None  # shrunk corpus record, ready to write
    error: Optional[str] = None  # scenario-generation failure (skipped)
    # Static-analysis cross-check (journal v2).  ``recall_gap`` is the
    # interesting bit: the simulator proves the final edited configs
    # broken, yet the analyzer found nothing — a measured hole in the
    # lint rule set, journaled so it can become a new rule.  All None
    # on skipped iterations and rows folded from v1 journals.
    broken: Optional[bool] = None
    lint_findings: Optional[int] = None
    lint_high: Optional[int] = None
    recall_gap: Optional[bool] = None


def _apply_planted(planted: Sequence[str]) -> None:
    from ..batfish.bgpsim import _plant_bug

    for name in planted:
        _plant_bug(name, True)


@contextmanager
def _planted_scope(planted: Sequence[str]):
    """Plant the named bugs for the duration of the block, restoring the
    previous planted set on exit — an in-process fuzz run must not leave
    a known bug enabled for whatever runs next."""
    from ..batfish.bgpsim import _KNOWN_PLANTED_BUGS, _plant_bug, _planted_bugs

    before = _planted_bugs()
    _apply_planted(planted)
    try:
        yield
    finally:
        for name in _KNOWN_PLANTED_BUGS:
            _plant_bug(name, name in before)


def run_fuzz_iteration(
    fuzz_seed: int,
    index: int,
    combos: Optional[Sequence[Dict[str, Any]]] = None,
    pairs: bool = False,
    planted: Sequence[str] = (),
) -> FuzzIterationResult:
    """Fuzz one index: observe under every combination, diff against
    the baseline, shrink the first divergence.  Deterministic — the
    same arguments produce the same result in any process."""
    with _planted_scope(planted):
        return _fuzz_index(fuzz_seed, index, combos=combos, pairs=pairs)


def _fuzz_index(
    fuzz_seed: int,
    index: int,
    combos: Optional[Sequence[Dict[str, Any]]] = None,
    pairs: bool = False,
) -> FuzzIterationResult:
    scenario = scenario_at(fuzz_seed, index)
    combo_list = [
        dict(combo)
        for combo in (
            combos
            if combos is not None
            else (pairwise_combos() if pairs else all_combos())
        )
    ]
    try:
        baseline_obs = observe(scenario, LEGACY_BASELINE)
    except Exception as exc:
        return FuzzIterationResult(
            index=index,
            key=scenario.key(),
            ok=True,
            error=f"{type(exc).__name__}: {exc}",
        )
    broken, lint_findings, lint_high, recall_gap = _lint_cross_check(
        scenario, baseline_obs
    )
    cache: Dict[str, dict] = {}

    def observed(combo: Dict[str, Any]) -> dict:
        cache_key = json.dumps(combo, sort_keys=True)
        if cache_key not in cache:
            cache[cache_key] = observe(scenario, combo)
        return cache[cache_key]

    failure: Optional[Tuple[str, Dict[str, Any], Dict[str, Any], str]] = None
    for combo in combo_list:
        if combo == LEGACY_BASELINE:
            continue
        mismatch = diff_observations(baseline_obs, observed(combo))
        if mismatch is not None:
            failure = ("semantic", combo, dict(LEGACY_BASELINE), mismatch)
            break
        partner = memo_partner(combo)
        if partner is not None and partner in combo_list:
            memo_mismatch = diff_memo_traffic(
                observed(partner), observed(combo)
            )
            if memo_mismatch is not None:
                failure = ("memo", combo, partner, memo_mismatch)
                break
    if failure is None:
        return FuzzIterationResult(
            index=index,
            key=scenario.key(),
            ok=True,
            broken=broken,
            lint_findings=lint_findings,
            lint_high=lint_high,
            recall_gap=recall_gap,
        )

    check, combo, against, mismatch = failure

    def still_fails(candidate: FuzzScenario) -> bool:
        if check == "memo":
            return (
                diff_memo_traffic(
                    observe(candidate, against), observe(candidate, combo)
                )
                is not None
            )
        return (
            diff_observations(
                observe(candidate, against), observe(candidate, combo)
            )
            is not None
        )

    shrunk = shrink_scenario(scenario, still_fails)
    final_mismatch = mismatch
    if shrunk != scenario:
        if check == "memo":
            final_mismatch = diff_memo_traffic(
                observe(shrunk, against), observe(shrunk, combo)
            )
        else:
            final_mismatch = diff_observations(
                observe(shrunk, against), observe(shrunk, combo)
            )
    record = make_record(
        shrunk,
        combo,
        against,
        check,
        final_mismatch or mismatch,
        fuzz_seed=fuzz_seed,
        index=index,
    )
    return FuzzIterationResult(
        index=index,
        key=scenario.key(),
        ok=False,
        check=check,
        combo=combo,
        mismatch=final_mismatch or mismatch,
        repro=record,
        broken=broken,
        lint_findings=lint_findings,
        lint_high=lint_high,
        recall_gap=recall_gap,
    )


def _lint_cross_check(
    scenario: FuzzScenario, baseline_obs: dict
) -> Tuple[Optional[bool], Optional[int], Optional[int], Optional[bool]]:
    """Cross the simulator's verdict with the static analyzer's.

    ``broken`` reads the *final* baseline step (the state the analyzer
    sees): any local-invariant violation or a failed global check.  The
    analyzer then runs over the same final edited configs; a broken
    network that lints clean is a recall gap — journaled, and counted
    on ``analysis.recall_gaps``, so fuzzing continuously measures the
    rule set's blind spots.  Analysis failures degrade to all-None
    rather than aborting the iteration.
    """
    try:
        last = baseline_obs["steps"][-1]
        broken = bool(last["violations"]) or not last["global"]["holds"]
    except (KeyError, IndexError, TypeError):
        return None, None, None, None
    try:
        from ..obs import counter

        report = lint_scenario(scenario)
    except Exception:
        return broken, None, None, None
    recall_gap = bool(broken and len(report) == 0)
    if recall_gap:
        counter("analysis.recall_gaps").inc()
    return broken, len(report), report.high, recall_gap


def lint_scenario(scenario: FuzzScenario):
    """Run the static analyzer over a fuzz scenario's *final* configs.

    Rebuilds the reference configs for the scenario's topology, applies
    its whole edit sequence, renders every router, and returns the
    :class:`~repro.analysis.findings.LintReport`.  Pure function of the
    scenario — the corpus determinism test asserts two calls serialize
    identically.
    """
    from ..analysis import analyze_configs
    from ..cisco.generator import generate_cisco
    from ..experiments.no_transit import materialize_network
    from ..topology.reference import build_reference_configs
    from .edits import apply_edit_op, resolve_router

    network = materialize_network(
        scenario.family,
        scenario.size,
        roles=scenario.roles,
        topo=scenario.topo,
        topology_seed=scenario.topology_seed,
        place=scenario.place,
    )
    topology = network.topology
    configs = build_reference_configs(topology)
    for edit in scenario.edits:
        router = resolve_router(edit.router_index, configs)
        apply_edit_op(edit.op, configs, router)
    texts = {
        name: generate_cisco(config) for name, config in configs.items()
    }
    return analyze_configs(configs, topology=topology, texts=texts)


# -- the fuzz journal ----------------------------------------------------------


def _fuzz_header(config: FuzzConfig, combos: int) -> str:
    return json.dumps(
        {
            "kind": "fuzz",
            "version": FUZZ_JOURNAL_VERSION,
            "fuzz_seed": config.fuzz_seed,
            "pairs": config.pairs,
            "combos": combos,
        },
        sort_keys=True,
    )


def _fuzz_line(result: FuzzIterationResult) -> str:
    return json.dumps(
        {
            "kind": "fuzz_result",
            "index": result.index,
            "key": result.key,
            "ok": result.ok,
            "check": result.check,
            "combo": result.combo,
            "mismatch": result.mismatch,
            "repro": result.repro,
            "error": result.error,
            "broken": result.broken,
            "lint_findings": result.lint_findings,
            "lint_high": result.lint_high,
            "recall_gap": result.recall_gap,
        },
        sort_keys=True,
    )


def fold_fuzz_journal(path: "Path | str") -> Dict[int, FuzzIterationResult]:
    """Reconstruct fuzz results by folding a journal (same tolerance
    rules as the campaign fold: malformed lines skipped, latest record
    per index wins)."""
    results: Dict[int, FuzzIterationResult] = {}
    target = Path(path)
    if not target.exists():
        return results
    with target.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                not isinstance(record, dict)
                or record.get("kind") != "fuzz_result"
            ):
                continue
            index = record.get("index")
            key = record.get("key")
            if not isinstance(index, int) or not isinstance(key, str):
                continue
            results[index] = FuzzIterationResult(
                index=index,
                key=key,
                ok=bool(record.get("ok")),
                check=record.get("check"),
                combo=record.get("combo"),
                mismatch=record.get("mismatch"),
                repro=record.get("repro"),
                error=record.get("error"),
                broken=record.get("broken"),
                lint_findings=record.get("lint_findings"),
                lint_high=record.get("lint_high"),
                recall_gap=record.get("recall_gap"),
            )
    return results


# -- the loop ------------------------------------------------------------------


@dataclass
class FuzzSummary:
    """Everything one fuzz run produced."""

    results: List[FuzzIterationResult] = field(default_factory=list)
    fuzz_seed: int = 0
    workers: int = 1
    duration_s: float = 0.0
    resumed: int = 0
    corpus_written: List[Path] = field(default_factory=list)

    @property
    def mismatches(self) -> List[FuzzIterationResult]:
        return [result for result in self.results if not result.ok]

    @property
    def skipped(self) -> List[FuzzIterationResult]:
        return [result for result in self.results if result.error is not None]

    @property
    def recall_gaps(self) -> List[FuzzIterationResult]:
        """Iterations the simulator proved broken but the analyzer
        linted clean — measured blind spots in the lint rule set."""
        return [result for result in self.results if result.recall_gap]

    def render(self) -> str:
        lines = []
        for result in self.results:
            if result.error is not None:
                lines.append(
                    f"  [{result.index:>4}] SKIP {result.key} "
                    f"({result.error})"
                )
            elif not result.ok:
                lines.append(
                    f"  [{result.index:>4}] FAIL {result.key}\n"
                    f"         {result.check} mismatch under "
                    f"{result.combo}:\n         {result.mismatch}"
                )
            if result.recall_gap:
                lines.append(
                    f"  [{result.index:>4}] LINT-GAP {result.key} "
                    f"(simulator: broken; analyzer: 0 findings)"
                )
        status = (
            f"fuzz: {len(self.results)} iteration(s), "
            f"{len(self.mismatches)} mismatch(es), "
            f"{len(self.skipped)} skipped, seed {self.fuzz_seed}, "
            f"{self.workers} worker(s), {self.duration_s:.2f}s"
        )
        if self.recall_gaps:
            status += f", {len(self.recall_gaps)} lint recall gap(s)"
        lines.append(status)
        for path in self.corpus_written:
            lines.append(f"  shrunk repro written: {path}")
        return "\n".join(lines)


def _init_fuzz_worker(
    toggle_values: Dict[str, Any], planted: Sequence[str]
) -> None:
    """Propagate the parent's toggle configuration and any planted-bug
    flags into a pool worker (start methods other than fork do not
    inherit module globals)."""
    toggles.apply(toggle_values)
    _apply_planted(planted)


def run_fuzz(
    config: FuzzConfig,
    journal_path: "Path | str | None" = None,
    resume: bool = False,
) -> FuzzSummary:
    """Run the fuzz loop; returns a summary folded from the journal.

    With ``iterations`` set the run is exactly that many indices (the
    deterministic mode the corpus tests rely on); with ``budget_s`` the
    loop keeps claiming indices until the budget is spent.  Corpus
    records are written by the parent only, so worker count never
    changes what lands on disk.
    """
    from ..experiments.campaign import _append, _open_journal

    if config.iterations is None and config.budget_s is None:
        raise ValueError("FuzzConfig needs iterations or budget_s")
    with _planted_scope(config.planted):
        return _run_fuzz_loop(config, journal_path, resume)


def _run_fuzz_loop(
    config: FuzzConfig,
    journal_path: "Path | str | None",
    resume: bool,
) -> FuzzSummary:
    from ..experiments.campaign import _append, _open_journal

    started = time.perf_counter()
    combos = config.combos()
    journal = Path(journal_path) if journal_path is not None else None
    if resume and journal is None:
        raise ValueError("resume=True requires a journal_path")
    completed: Dict[int, FuzzIterationResult] = {}
    if resume and journal.exists():
        completed = fold_fuzz_journal(journal)
    resumed = len(completed)

    handle = None
    if journal is not None:
        appending = resume and journal.exists()
        # _open_journal repairs a crash-truncated final line whenever
        # it appends, so the first resumed record never lands on the
        # fragment the crash left behind.
        handle = _open_journal(journal, append=appending)
        if not appending:
            _append(handle, _fuzz_header(config, len(combos)))

    def budget_left() -> bool:
        return (
            config.budget_s is None
            or time.perf_counter() - started < config.budget_s
        )

    def record_result(result: FuzzIterationResult) -> None:
        completed[result.index] = result
        if handle is not None:
            _append(handle, _fuzz_line(result))

    try:
        if config.workers <= 1:
            index = 0
            ran = 0
            while budget_left() and (
                config.iterations is None or ran < config.iterations
            ):
                if config.iterations is not None and index >= config.iterations:
                    break
                if index not in completed:
                    record_result(
                        run_fuzz_iteration(
                            config.fuzz_seed,
                            index,
                            combos=combos,
                            planted=config.planted,
                        )
                    )
                    ran += 1
                index += 1
                if config.iterations is None and index >= 1_000_000:
                    break  # budget mode backstop
        else:
            with ProcessPoolExecutor(
                max_workers=config.workers,
                initializer=_init_fuzz_worker,
                initargs=(toggles.snapshot(), config.planted),
            ) as executor:
                if config.iterations is not None:
                    pending = [
                        index
                        for index in range(config.iterations)
                        if index not in completed
                    ]
                    futures = [
                        executor.submit(
                            run_fuzz_iteration,
                            config.fuzz_seed,
                            index,
                            combos=combos,
                            planted=config.planted,
                        )
                        for index in pending
                    ]
                    for future in as_completed(futures):
                        record_result(future.result())
                else:
                    # Budget mode: submit in waves so the clock is
                    # checked between batches.
                    index = 0
                    while budget_left():
                        wave = []
                        while len(wave) < config.workers * 2:
                            if index not in completed:
                                wave.append(index)
                            index += 1
                        futures = [
                            executor.submit(
                                run_fuzz_iteration,
                                config.fuzz_seed,
                                claim,
                                combos=combos,
                                planted=config.planted,
                            )
                            for claim in wave
                        ]
                        for future in as_completed(futures):
                            record_result(future.result())
    finally:
        if handle is not None:
            handle.close()

    if journal is not None:
        completed = fold_fuzz_journal(journal)
    ordered = [completed[index] for index in sorted(completed)]
    corpus_written = [
        write_repro(config.corpus_dir, result.repro)
        for result in ordered
        if result.repro is not None
    ]
    return FuzzSummary(
        results=ordered,
        fuzz_seed=config.fuzz_seed,
        workers=max(1, config.workers),
        duration_s=time.perf_counter() - started,
        resumed=resumed,
        corpus_written=corpus_written,
    )
