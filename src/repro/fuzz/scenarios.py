"""Seeded random fuzz scenarios and their canonical JSON form.

A scenario is a pure function of ``(fuzz_seed, index)``: the generator
derives one CRC32-seeded RNG per iteration, so the scenario *sequence*
is byte-identical no matter how iterations are distributed over
workers, and any corpus entry names the exact coordinates that
produced it.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["FuzzEdit", "FuzzScenario", "scenario_at"]

# Mesh is double-weighted: dense graphs are where best-path ties (and
# historically, tie-break bugs) live.
_FAMILY_POOL = (
    "mesh", "mesh", "ring", "chain", "star", "dumbbell", "random", "waxman",
)

# Edit-op pool, weighted toward the operations that historically find
# bugs: multi-origin prefixes (tie-breaks) and filter holes (verdicts).
_OP_POOL = (
    "announce_shared_prefix",
    "announce_shared_prefix",
    "permit_all_egress",
    "drop_first_deny",
    "strip_additive",
    "bump_local_pref",
    "withdraw_network",
    "noop",
)

# Role specs small enough for the sizes we fuzz (attachments <= size).
_ROLE_POOL = ("c2i2h1", "c2i2h2", "c1i2h1p1")


@dataclass(frozen=True)
class FuzzEdit:
    """One policy edit: an abstract router index plus a catalog op.

    The index resolves against the sorted router names modulo the
    router count (see :func:`repro.fuzz.edits.resolve_router`), so the
    same edit stays meaningful while the shrinker shrinks the size.
    """

    router_index: int
    op: str

    def to_dict(self) -> dict:
        return {"router_index": self.router_index, "op": self.op}

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzEdit":
        return cls(router_index=int(data["router_index"]), op=str(data["op"]))


@dataclass(frozen=True)
class FuzzScenario:
    """One fuzz input: topology coordinates plus a policy-edit sequence."""

    family: str
    size: int
    topology_seed: int = 0
    roles: str = "default"
    topo: str = "default"
    place: str = "default"
    edits: Tuple[FuzzEdit, ...] = field(default_factory=tuple)

    def key(self) -> str:
        edits = ",".join(f"{e.router_index}.{e.op}" for e in self.edits)
        return (
            f"{self.family}:{self.size}:{self.topology_seed}:{self.roles}:"
            f"{self.topo}:{self.place}:[{edits}]"
        )

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "size": self.size,
            "topology_seed": self.topology_seed,
            "roles": self.roles,
            "topo": self.topo,
            "place": self.place,
            "edits": [edit.to_dict() for edit in self.edits],
        }

    def to_json(self) -> str:
        """Canonical serialized form (sorted keys, no whitespace churn) —
        the byte-identity contract of the determinism tests."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzScenario":
        return cls(
            family=str(data["family"]),
            size=int(data["size"]),
            topology_seed=int(data.get("topology_seed", 0)),
            roles=str(data.get("roles", "default")),
            topo=str(data.get("topo", "default")),
            place=str(data.get("place", "default")),
            edits=tuple(
                FuzzEdit.from_dict(edit) for edit in data.get("edits", ())
            ),
        )

    def without_edit(self, index: int) -> "FuzzScenario":
        return replace(
            self, edits=self.edits[:index] + self.edits[index + 1:]
        )


def scenario_at(fuzz_seed: int, index: int) -> FuzzScenario:
    """The ``index``-th scenario of the ``fuzz_seed`` sequence.

    Pure and position-independent: worker pools can claim indices in
    any order and still fuzz the identical sequence.
    """
    rng = random.Random(
        zlib.crc32(f"fuzz:{fuzz_seed}:{index}".encode("utf-8"))
    )
    family = rng.choice(_FAMILY_POOL)
    roles = "default"
    topo = "default"
    place = "default"
    if family in ("random", "waxman"):
        size = rng.randint(6, 8)
        if rng.random() < 0.6:
            roles = rng.choice(_ROLE_POOL)
            if rng.random() < 0.3:
                place = "degree"
        if family == "random" and rng.random() < 0.5:
            topo = f"p={rng.choice(('0.4', '0.6'))}"
    elif family == "mesh":
        size = rng.randint(4, 6)  # dense: keep the grid affordable
    else:
        size = rng.randint(4, 7)
    edits = tuple(
        FuzzEdit(router_index=rng.randrange(32), op=rng.choice(_OP_POOL))
        for _ in range(rng.randint(1, 4))
    )
    return FuzzScenario(
        family=family,
        size=size,
        topology_seed=rng.randrange(1024),
        roles=roles,
        topo=topo,
        place=place,
        edits=edits,
    )
