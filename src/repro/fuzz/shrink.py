"""Delta-debugging shrinker: minimize a failing fuzz scenario.

Given a scenario and a deterministic ``still_fails`` predicate, the
shrinker greedily tries smaller variants — dropping edits, shrinking
the router count, stripping the role/knob/placement axes, and
canonicalizing router indices — and keeps any variant that still
fails, looping to a fixpoint.  Every predicate call is cached by
scenario key, and a variant whose coordinates cannot even generate a
network (e.g. a role spec needing more border routers than the shrunk
size provides) simply counts as "does not fail".

The result is the minimal repro that lands in ``tests/fuzz_corpus/``:
small enough to read, stable enough to replay forever.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from .scenarios import FuzzScenario

__all__ = ["shrink_scenario"]

_MIN_SIZE = 3


def shrink_scenario(
    scenario: FuzzScenario,
    still_fails: Callable[[FuzzScenario], bool],
    max_checks: int = 200,
) -> FuzzScenario:
    """Minimize ``scenario`` while ``still_fails`` keeps returning True.

    ``still_fails`` must be deterministic; generation errors inside it
    should be treated by the caller as False (not a failure — an
    invalid input).  ``max_checks`` bounds the total number of
    predicate evaluations so a pathological case cannot stall a fuzz
    run; the best scenario found so far is returned regardless.
    """
    cache: Dict[str, bool] = {scenario.key(): True}
    checks = 0

    def fails(candidate: FuzzScenario) -> bool:
        nonlocal checks
        key = candidate.key()
        cached = cache.get(key)
        if cached is not None:
            return cached
        if checks >= max_checks:
            return False
        checks += 1
        try:
            verdict = bool(still_fails(candidate))
        except Exception:
            verdict = False  # unbuildable coordinates are not a repro
        cache[key] = verdict
        return verdict

    current = scenario
    changed = True
    while changed and checks < max_checks:
        changed = False
        # 1. Drop edits, last first (later edits most often depend on
        # earlier ones, so removing from the tail converges fastest).
        for index in reversed(range(len(current.edits))):
            candidate = current.without_edit(index)
            if fails(candidate):
                current = candidate
                changed = True
        # 2. Shrink the router count, smallest first.
        for size in range(_MIN_SIZE, current.size):
            candidate = replace(current, size=size)
            if fails(candidate):
                current = candidate
                changed = True
                break
        # 3. Strip the topology-shaping axes back to default.
        for field_name in ("place", "topo", "roles"):
            if getattr(current, field_name) != "default":
                candidate = replace(current, **{field_name: "default"})
                if fails(candidate):
                    current = candidate
                    changed = True
        # 4. Canonicalize router indices to their modulo-reduced form
        # (pure relabeling at the current size, but it makes the
        # serialized repro independent of the generator's raw draws).
        reduced = tuple(
            replace(edit, router_index=edit.router_index % current.size)
            for edit in current.edits
        )
        if reduced != current.edits:
            candidate = replace(current, edits=reduced)
            if fails(candidate):
                current = candidate
                changed = True
        # 5. Try zeroing the topology seed (the most readable graph).
        if current.topology_seed != 0:
            candidate = replace(current, topology_seed=0)
            if fails(candidate):
                current = candidate
                changed = True
    return current
