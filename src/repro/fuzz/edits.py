"""The policy-edit catalog the fuzzer mutates scenarios with.

Each operation is a *deterministic* function of ``(configs, router)``:
given the same configuration dict and router name it always performs
the same mutation (or returns ``False`` when inapplicable, which is
itself a deterministic outcome).  Determinism is what makes a corpus
file a repro — replaying the serialized edit sequence reproduces the
exact configs the fuzzer saw, byte for byte.

The catalog is deliberately adversarial toward the toggle surface:

* ``permit_all_egress`` / ``drop_first_deny`` flip no-transit verdicts
  (the verifier differential);
* ``strip_additive`` re-creates the paper's "Adding Communities" IIP
  bug (community-set divergence);
* ``bump_local_pref`` makes an ingress map decision-*affecting*, which
  disables the decision-cache loser pre-screen;
* ``announce_shared_prefix`` creates multi-origin prefixes — the
  tie-heavy case where best-path tie-break bugs (PR 6's ``"" < ""``
  fall-through) actually bite;
* ``withdraw_network`` exercises route invalidation in the
  incremental engine;
* ``noop`` marks a router changed without changing it (the no-change
  resimulation path).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..netmodel.device import RouterConfig
from ..netmodel.routing_policy import (
    Action,
    RouteMap,
    RouteMapClause,
    SetCommunity,
    SetLocalPref,
)

__all__ = ["EDIT_OPS", "apply_edit_op", "resolve_router"]

EditOp = Callable[[Dict[str, RouterConfig], str], bool]


def _sorted_maps(config: RouterConfig, prefix: str):
    return [
        config.route_maps[name]
        for name in sorted(config.route_maps)
        if name.startswith(prefix)
    ]


def permit_all_egress(configs: Dict[str, RouterConfig], router: str) -> bool:
    """Replace the router's first egress filter with permit-all."""
    config = configs[router]
    maps = _sorted_maps(config, "FILTER_COMM_OUT_")
    if not maps:
        return False
    replacement = RouteMap(maps[0].name)
    replacement.add_clause(RouteMapClause(seq=10, action=Action.PERMIT))
    config.route_maps[replacement.name] = replacement
    return True


def drop_first_deny(configs: Dict[str, RouterConfig], router: str) -> bool:
    """Remove the first deny stanza of the first egress filter that has
    one (a partial no-transit hole, subtler than permit-all)."""
    for route_map in _sorted_maps(configs[router], "FILTER_COMM_OUT_"):
        denies = [c for c in route_map.clauses if c.action is Action.DENY]
        if denies:
            route_map.clauses.remove(denies[0])
            return True
    return False


def strip_additive(configs: Dict[str, RouterConfig], router: str) -> bool:
    """Make the first additive ingress ``set community`` replacing —
    the paper's §4.2 "Adding Communities" bug."""
    for route_map in _sorted_maps(configs[router], "ADD_COMM_"):
        for clause in route_map.clauses:
            for index, action in enumerate(clause.sets):
                if isinstance(action, SetCommunity) and action.additive:
                    clause.sets[index] = SetCommunity(
                        action.communities, additive=False
                    )
                    return True
    return False


def bump_local_pref(configs: Dict[str, RouterConfig], router: str) -> bool:
    """Append ``set local-preference 150`` to the first permit clause of
    the router's first route map (sorted).  Makes the map decision-
    affecting, which switches off the loser pre-screen fast path."""
    config = configs[router]
    for name in sorted(config.route_maps):
        for clause in config.route_maps[name].clauses:
            if clause.action is Action.PERMIT:
                if any(isinstance(s, SetLocalPref) for s in clause.sets):
                    return False  # already bumped by an earlier edit
                clause.sets.append(SetLocalPref(150))
                return True
    return False


def announce_shared_prefix(
    configs: Dict[str, RouterConfig], router: str
) -> bool:
    """Additionally originate the first prefix announced by the
    lexicographically-first *other* router: multi-origin prefixes are
    what make best-path tie-breaks observable."""
    config = configs[router]
    if config.bgp is None:
        return False
    for other in sorted(configs):
        if other == router or configs[other].bgp is None:
            continue
        for prefix in configs[other].bgp.networks:
            if not config.bgp.announces(prefix):
                config.bgp.announce(prefix)
                return True
    return False


def withdraw_network(configs: Dict[str, RouterConfig], router: str) -> bool:
    """Withdraw the router's first originated prefix."""
    config = configs[router]
    if config.bgp is None or not config.bgp.networks:
        return False
    del config.bgp.networks[0]
    return True


def noop(configs: Dict[str, RouterConfig], router: str) -> bool:
    """Change nothing, but report the router as changed — the
    incremental engine must treat a no-op delta exactly like a full
    run does."""
    return True


EDIT_OPS: Dict[str, EditOp] = {
    "permit_all_egress": permit_all_egress,
    "drop_first_deny": drop_first_deny,
    "strip_additive": strip_additive,
    "bump_local_pref": bump_local_pref,
    "announce_shared_prefix": announce_shared_prefix,
    "withdraw_network": withdraw_network,
    "noop": noop,
}


def resolve_router(router_index: int, configs: Dict[str, RouterConfig]) -> str:
    """Map a scenario's abstract router index onto a concrete router.

    Indices are stored modulo-free so a shrunk scenario's smaller
    router set still resolves deterministically.
    """
    names = sorted(configs)
    return names[router_index % len(names)]


def apply_edit_op(
    op: str, configs: Dict[str, RouterConfig], router: str
) -> bool:
    """Apply the named operation; ``False`` means it was inapplicable
    (which every toggle combination must agree on, too)."""
    return EDIT_OPS[op](configs, router)
