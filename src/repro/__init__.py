"""COSYNTH: Verified Prompt Programming for router configurations.

A complete, runnable reproduction of "What do LLMs need to Synthesize
Correct Router Configurations?" (HotNets 2023): the VPP loop pairing an
LLM with a verifier suite (a Batfish substitute for syntax and symbolic
policy questions, a Campion substitute for semantic config diffing, a
Lightyear-style local-policy verifier, and a topology verifier), plus a
humanizer, modularizer, IIP database, leverage accounting, and a
calibrated simulated GPT-4 standing in for the API the authors lacked.

Quickstart::

    from repro import run_translation_experiment
    experiment = run_translation_experiment(seed=0)
    print(experiment.result.prompt_log.summary())
"""

from .core import (
    DEFAULT_IIP_IDS,
    Composer,
    Humanizer,
    IIPDatabase,
    LoopLimits,
    Modularizer,
    PromptKind,
    PromptLog,
    ScriptedHuman,
    SynthesisOrchestrator,
    TranslationOrchestrator,
)
from .errors import ErrorCategory, Finding
from .experiments import (
    build_grid,
    run_campaign,
    run_local_vs_global,
    run_no_transit_experiment,
    run_scaling_sweep,
    run_synthesis_ablation,
    run_translation_ablation,
    run_translation_experiment,
)
from .llm import (
    BehaviorProfile,
    LLMClient,
    SimulatedGPT4,
    make_synthesis_models,
    make_translation_model,
)
from .topology import generate_network, generate_star_network

__version__ = "1.0.0"

__all__ = [
    "BehaviorProfile",
    "Composer",
    "DEFAULT_IIP_IDS",
    "ErrorCategory",
    "Finding",
    "Humanizer",
    "IIPDatabase",
    "LLMClient",
    "LoopLimits",
    "Modularizer",
    "PromptKind",
    "PromptLog",
    "ScriptedHuman",
    "SimulatedGPT4",
    "SynthesisOrchestrator",
    "TranslationOrchestrator",
    "__version__",
    "build_grid",
    "generate_network",
    "generate_star_network",
    "make_synthesis_models",
    "make_translation_model",
    "run_campaign",
    "run_local_vs_global",
    "run_no_transit_experiment",
    "run_scaling_sweep",
    "run_synthesis_ablation",
    "run_translation_ablation",
    "run_translation_experiment",
]
