"""Factory for the translation-task simulated GPT-4 (§3)."""

from __future__ import annotations

from typing import Optional, Sequence

from ..sampleconfigs import load_translation_source
from ..juniper import generate_juniper, translate_cisco_to_juniper
from ..netmodel.device import RouterConfig
from .behavior import BehaviorProfile
from .simulated import SimulatedGPT4
from .translation_faults import (
    DEFAULT_INITIAL_FAULTS,
    SIDE_POOL_FAULTS,
    translation_fault_catalog,
)

__all__ = ["make_translation_model", "reference_translation"]


def reference_translation(source: Optional[RouterConfig] = None) -> RouterConfig:
    """The correct Juniper translation the fault model perturbs."""
    if source is None:
        source = load_translation_source()
    reference, _notes = translate_cisco_to_juniper(source)
    return reference


def make_translation_model(
    seed: int = 0,
    profile: Optional[BehaviorProfile] = None,
    initial_faults: Sequence[str] = DEFAULT_INITIAL_FAULTS,
    source: Optional[RouterConfig] = None,
) -> SimulatedGPT4:
    """A chat session primed for "translate this Cisco config to Juniper".

    ``initial_faults`` defaults to the full Table 2 set; experiments can
    narrow it (e.g. one fault at a time for the per-row bench).
    """
    return SimulatedGPT4(
        catalog=translation_fault_catalog(),
        reference=reference_translation(source),
        renderer=generate_juniper,
        initial_fault_keys=initial_faults,
        side_pool_keys=SIDE_POOL_FAULTS,
        seed=seed,
        profile=profile,
    )
