"""Fault catalog for the Cisco→Juniper translation use case (§3).

Every row of Table 2 appears here as a :class:`Fault` over the reference
Juniper translation of the bundled Cisco config, including the two rows
GPT-4 could *not* fix from a generated prompt (prefix-length ``ge``
matching and redistribution into BGP), and the paper's signature
transition: the human-directed fix of the dropped ``ge 24`` produces the
*invalid* ``1.2.3.0/24-32`` prefix-list syntax (Table 1's syntax-error
example), which the next generated syntax prompt then repairs.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ErrorCategory
from ..netmodel.device import RouterConfig
from ..netmodel.ip import Prefix, PrefixRange
from ..netmodel.prefixlist import PrefixListEntry
from ..netmodel.routing_policy import (
    MatchPrefixList,
    MatchPrefixRanges,
    MatchProtocol,
    SetMed,
)
from .faults import Fault

__all__ = [
    "DEFAULT_INITIAL_FAULTS",
    "SIDE_POOL_FAULTS",
    "translation_fault_catalog",
]

# The keys injected into the first draft, in catalog order.  Two of them
# (dropped_ge_range, redistribution_unguarded) are Table 2's "No" rows.
DEFAULT_INITIAL_FAULTS = (
    "missing_local_as",
    "stray_statement",
    "missing_export_policy",
    "extra_export_policy",
    "ospf_cost_difference",
    "ospf_passive_difference",
    "redistribution_unguarded",
    "wrong_med",
    "dropped_ge_range",
)

# Fresh syntax errors the model may introduce while fixing something else
# (§3.2: "GPT-4 can fix one error, but introduce new errors").
SIDE_POOL_FAULTS = ("stray_statement", "stray_term_statement")


def _drop_local_as(config: RouterConfig) -> None:
    assert config.bgp is not None
    config.bgp.asn = 0


def _restore_statement(text: str) -> str:
    return "maximum-paths 4;\n" + text


def _stray_term(text: str) -> str:
    return text + "load-balance per-packet;\n"


def _drop_export_policy(config: RouterConfig) -> None:
    assert config.bgp is not None
    config.bgp.neighbors["2.3.4.5"].export_policy = None


def _add_extra_export_policy(config: RouterConfig) -> None:
    assert config.bgp is not None
    config.bgp.neighbors["1.2.3.9"].export_policy = "to_provider"


def _drop_loopback_cost(config: RouterConfig) -> None:
    interface = config.get_interface("Loopback0")
    assert interface is not None
    interface.ospf_cost = None


def _drop_loopback_passive(config: RouterConfig) -> None:
    interface = config.get_interface("Loopback0")
    assert interface is not None
    interface.ospf_passive = False
    if config.ospf is not None and "Loopback0" in config.ospf.passive_interfaces:
        config.ospf.passive_interfaces.remove("Loopback0")


def _drop_med(config: RouterConfig) -> None:
    route_map = config.route_maps["to_provider"]
    for clause in route_map.clauses:
        clause.sets = [
            action for action in clause.sets if not isinstance(action, SetMed)
        ]


def _drop_ge_range(config: RouterConfig) -> None:
    """Replace the ranged matching with an exact /24 prefix-list.

    §3.2: "it often does not translate the 'ge 24' part correctly, often
    just omitting it, so the space of prefixes matched will differ."
    """
    our_base = Prefix.parse("1.2.3.0/24")
    prefix_list = config.prefix_lists["our-networks"]
    prefix_list.entries = [
        PrefixListEntry(
            seq=5,
            action="permit",
            range=PrefixRange.exact(our_base),
        )
    ]
    for route_map in config.route_maps.values():
        for clause in route_map.clauses:
            clause.matches = [
                MatchPrefixList("our-networks")
                if isinstance(condition, MatchPrefixRanges)
                and any(item.prefix == our_base for item in condition.ranges)
                else condition
                for condition in clause.matches
            ]


def _invalid_range_text(text: str) -> str:
    """Swap the exact entry for GPT-4's invented ``/24-32`` syntax."""
    return text.replace("1.2.3.0/24;", "1.2.3.0/24-32;", 1)


def _unguard_redistribution(config: RouterConfig) -> None:
    """Strip every ``from protocol`` guard from the export policy.

    The translation then exports connected/OSPF routes the Cisco config
    never redistributed — the difference Campion detects in §3.2.
    """
    route_map = config.route_maps["to_provider"]
    for clause in route_map.clauses:
        clause.matches = [
            condition
            for condition in clause.matches
            if not isinstance(condition, MatchProtocol)
        ]


def translation_fault_catalog() -> Dict[str, Fault]:
    """The full catalog, keyed by fault key."""
    faults: List[Fault] = [
        Fault(
            key="missing_local_as",
            label="Missing BGP local-as attribute",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"local AS",),
            ir_transform=_drop_local_as,
        ),
        Fault(
            key="stray_statement",
            label="Invalid top-level statement",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"maximum-paths",),
            text_transform=_restore_statement,
        ),
        Fault(
            key="stray_term_statement",
            label="Invalid trailing statement",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"load-balance",),
            text_transform=_stray_term,
        ),
        Fault(
            key="missing_export_policy",
            label="Missing/extra BGP route policy",
            category=ErrorCategory.STRUCTURAL,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"export route map for bgp neighbor 2\.3\.4\.5",),
            ir_transform=_drop_export_policy,
        ),
        Fault(
            key="extra_export_policy",
            label="Missing/extra BGP route policy",
            category=ErrorCategory.STRUCTURAL,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"export route map for bgp neighbor 1\.2\.3\.9",),
            ir_transform=_add_extra_export_policy,
        ),
        Fault(
            key="ospf_cost_difference",
            label="Different OSPF link cost",
            category=ErrorCategory.ATTRIBUTE,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"cost set to",),
            ir_transform=_drop_loopback_cost,
        ),
        Fault(
            key="ospf_passive_difference",
            label="Different OSPF passive interface setting",
            category=ErrorCategory.ATTRIBUTE,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"passive",),
            ir_transform=_drop_loopback_passive,
        ),
        Fault(
            key="redistribution_unguarded",
            label="Different redistribution into BGP",
            category=ErrorCategory.POLICY,
            fixable_by_generated_prompt=False,
            prompt_patterns=(r"redistribution",),
            human_prompt_patterns=(r"from bgp", r"from protocol"),
            human_prompt=(
                "The translated routing policies apply to routes from any "
                "protocol, so the router exports OSPF and connected routes "
                "the original never redistributed. Add a 'from protocol "
                "bgp' condition to the existing to_provider terms and keep "
                "redistribution in its own term guarded by 'from protocol "
                "ospf'."
            ),
            ir_transform=_unguard_redistribution,
        ),
        Fault(
            key="wrong_med",
            label="Setting wrong BGP MED value",
            category=ErrorCategory.POLICY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"MED",),
            ir_transform=_drop_med,
        ),
        Fault(
            key="dropped_ge_range",
            label="Different prefix lengths match in BGP",
            category=ErrorCategory.POLICY,
            fixable_by_generated_prompt=False,
            prompt_patterns=(r"1\.2\.3\.\d+/(2[5-9]|3[0-2])",),
            human_prompt_patterns=(
                r"prefix-length-range",
                r"route-filter",
                r"ge 24",
            ),
            human_prompt=(
                "The Cisco prefix list uses 'ge 24' to match prefixes of "
                "length 24 or greater under 1.2.3.0/24. Junos prefix-lists "
                "cannot express this; use a route-filter with "
                "prefix-length-range /24-/32 in the policy terms instead."
            ),
            ir_transform=_drop_ge_range,
            successor_key="invalid_prefix_list_syntax",
        ),
        Fault(
            key="invalid_prefix_list_syntax",
            label="Invalid syntax for prefix lists",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"24-32", r"syntax error.*prefix-list"),
            ir_transform=_drop_ge_range,
            text_transform=_invalid_range_text,
        ),
    ]
    return {fault.key: fault for fault in faults}
