"""LLM client protocol and chat transcripts.

COSYNTH is LLM-agnostic: the orchestrator talks to anything implementing
:class:`LLMClient`.  The paper "simulated each API call by feeding our
automatically generated prompts manually to GPT-4"; this reproduction
ships :class:`~repro.llm.simulated.SimulatedGPT4`, and a real API client
can be dropped in behind the same one-method protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Protocol

__all__ = ["ChatMessage", "ChatRole", "ChatTranscript", "LLMClient"]


class ChatRole(enum.Enum):
    """Who authored a chat message."""

    USER = "user"
    ASSISTANT = "assistant"


@dataclass(frozen=True)
class ChatMessage:
    """One message of a chat."""

    role: ChatRole
    content: str


@dataclass
class ChatTranscript:
    """An append-only record of one chat session."""

    messages: List[ChatMessage] = field(default_factory=list)

    def add_user(self, content: str) -> None:
        self.messages.append(ChatMessage(ChatRole.USER, content))

    def add_assistant(self, content: str) -> None:
        self.messages.append(ChatMessage(ChatRole.ASSISTANT, content))

    def prompt_count(self) -> int:
        return sum(1 for item in self.messages if item.role is ChatRole.USER)

    def last_response(self) -> str:
        for message in reversed(self.messages):
            if message.role is ChatRole.ASSISTANT:
                return message.content
        return ""


class LLMClient(Protocol):
    """The minimal interface COSYNTH needs from a language model."""

    def send(self, prompt: str) -> str:
        """Send one prompt; return the model's full response.

        For configuration tasks the response is expected to contain the
        complete current configuration (the paper re-asks GPT-4 to
        "print the entire configuration" after each fix; simulated
        models simply always return it).
        """
        ...
