"""Fault catalog for the no-transit local-synthesis use case (§4).

Three families, matching §4.1's error classification:

* **syntax** — interactive CLI keywords, inline ``match community``
  values, and the misplaced ``neighbor`` command of §4.2;
* **topology** — the seven Table 3 inconsistencies (wrong interface IP,
  wrong local AS, wrong router-id, missing neighbor/network, extra
  network/neighbor);
* **semantic** — egress filters that pass tagged routes, ingress maps
  that do not tag, the non-additive ``set community``, and §4.2's
  AND/OR match-semantics confusion (unfixable from the generated
  counterexample; needs the "separate stanza" human prompt).

Fault keys suppressed by Initial Instruction Prompts are listed in
:data:`IIP_SUPPRESSED_FAULTS` — supplying the IIP removes them from the
initial draft, reproducing §4.2's before/after.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..errors import ErrorCategory
from ..netmodel.communities import Community
from ..netmodel.device import RouterConfig
from ..netmodel.bgp import BgpNeighbor
from ..netmodel.ip import Ipv4Address, Prefix
from ..netmodel.routing_policy import (
    Action,
    MatchCommunityInline,
    MatchCommunityList,
    RouteMapClause,
    SetCommunity,
)
from ..topology.generator import ingress_community
from ..topology.model import Topology
from .faults import Fault

__all__ = [
    "IIP_SUPPRESSED_FAULTS",
    "SYNTHESIS_SIDE_POOL",
    "border_fault_assignment",
    "default_fault_assignment",
    "synthesis_fault_catalog",
]

# fault key -> the IIP id whose presence suppresses it (§4.2's four IIPs;
# the misplaced-keywords IIP covers CLI prompts and wrong keywords both).
IIP_SUPPRESSED_FAULTS = {
    "cli_keywords": "no-cli-keywords",
    "inline_match_community": "match-via-community-list",
    "non_additive_set_community": "additive-keyword",
}

SYNTHESIS_SIDE_POOL = ("stray_ip_routing",)


def default_fault_assignment(router_count: int) -> Dict[str, List[str]]:
    """Which faults each router's first draft carries (default seed).

    The hub concentrates the policy errors (it holds all the policy);
    two spokes carry the Table 3 topology errors; the rest draft clean —
    mirroring §4.2 where "some GPT-4 errors were more common" but not
    universal.
    """
    if router_count < 4:
        raise ValueError("the default assignment needs at least 4 routers")
    assignment: Dict[str, List[str]] = {
        name: [] for name in (f"R{i}" for i in range(1, router_count + 1))
    }
    assignment["R1"] = [
        "cli_keywords",
        "inline_match_community",
        "non_additive_set_community",
        "misplaced_neighbor_command",
        "and_or_semantics",
        "wrong_interface_ip",
        "extra_network",
        "extra_neighbor",
        "egress_permits_tagged",
    ]
    if router_count >= 5:
        assignment["R1"].append("missing_ingress_tag")
    assignment["R2"] = [
        "cli_keywords",
        "wrong_router_id",
        "missing_neighbor",
        "missing_network",
    ]
    assignment["R3"] = ["wrong_local_as"]
    return assignment


def border_fault_assignment(topology: Topology) -> Dict[str, List[str]]:
    """Default faults for border-policy families (chain/ring/mesh/...).

    The policy faults target concrete route-map names
    (``FILTER_COMM_OUT_R2`` and friends), which in a border family live
    on the router of the same index — so each lands on the router that
    actually owns its map, and only when that router carries an ISP.
    Routers whose target artifact is absent simply draft clean, like the
    untouched spokes of the star assignment.
    """
    from ..topology.families import isp_attachments

    names = topology.router_names()
    count = len(names)
    if count < 4:
        raise ValueError("the default assignment needs at least 4 routers")
    isp_routers = {peer.router for peer in isp_attachments(topology)}
    assignment: Dict[str, List[str]] = {name: [] for name in names}

    def put(router: str, *keys: str) -> None:
        if router in assignment:
            assignment[router].extend(keys)

    put("R1", "cli_keywords", "extra_network", "extra_neighbor")
    put("R2", "cli_keywords", "wrong_router_id")
    put("R3", "wrong_local_as", "wrong_interface_ip")
    if "R2" in isp_routers:
        put("R2", "and_or_semantics")
    if "R3" in isp_routers:
        put("R3", "non_additive_set_community")
    if "R4" in isp_routers:
        put("R4", "egress_permits_tagged")
    if count >= 5 and "R5" in isp_routers:
        put("R5", "missing_ingress_tag")
    inline_owner = f"R{min(6, count)}"
    if inline_owner in isp_routers:
        put(inline_owner, "inline_match_community")
    last = f"R{count}"
    if last in isp_routers and last != inline_owner:
        put(last, "misplaced_neighbor_command")
    return assignment


def synthesis_fault_catalog(topology: Topology) -> Dict[str, Fault]:
    """Build the catalog for a given star topology (it needs concrete
    addresses and the spoke count)."""
    router_count = len(topology.routers)
    faults: List[Fault] = []

    # -- syntax ----------------------------------------------------------------

    faults.append(
        Fault(
            key="cli_keywords",
            label="Interactive CLI keywords in config file",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(
                r"Interactive CLI command",
                r"configure terminal",
            ),
            text_transform=lambda text: "configure terminal\n"
            + text
            + "exit\nwrite\n",
        )
    )
    faults.append(
        Fault(
            key="stray_ip_routing",
            label="Unnecessary 'ip routing' statement",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"ip routing",),
            text_transform=lambda text: "ip routing\n" + text,
        )
    )
    inline_target = f"FILTER_COMM_OUT_R{min(6, router_count)}"
    faults.append(
        Fault(
            key="inline_match_community",
            label="match community with a literal value",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(
                r"community-list name",
                r"match community expects",
            ),
            ir_transform=_make_inline_match(inline_target),
        )
    )
    last_spoke = router_count
    misplaced_pattern = (
        rf"neighbor \S+ route-map FILTER_COMM_OUT_R{last_spoke} out"
    )
    faults.append(
        Fault(
            key="misplaced_neighbor_command",
            label="neighbor command outside the router bgp block",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=False,
            prompt_patterns=(misplaced_pattern,),
            human_prompt_patterns=(r"router bgp block", r"under .router bgp."),
            human_prompt=(
                "All network and neighbor commands must be placed under "
                'the "router bgp" block. Move the neighbor route-map '
                "statement back inside the router bgp block."
            ),
            text_transform=_make_misplace_neighbor(last_spoke),
        )
    )

    # -- topology ---------------------------------------------------------------

    faults.append(
        Fault(
            key="wrong_interface_ip",
            label="Interface IP address does not match the topology",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Interface eth0/2 ip address",),
            ir_transform=_wrong_interface_ip,
        )
    )
    faults.append(
        Fault(
            key="wrong_local_as",
            label="Local AS number does not match",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Local AS number",),
            ir_transform=_wrong_local_as,
        )
    )
    faults.append(
        Fault(
            key="wrong_router_id",
            label="Router ID does not match",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Router ID",),
            ir_transform=_wrong_router_id,
        )
    )
    faults.append(
        Fault(
            key="missing_neighbor",
            label="BGP neighbor not declared",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Neighbor with IP address 1\.0\.0\.1",),
            ir_transform=_drop_hub_neighbor,
        )
    )
    faults.append(
        Fault(
            key="missing_network",
            label="Network not declared",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Network 1\.0\.0\.0/24 not declared",),
            ir_transform=_drop_link_network,
        )
    )
    faults.append(
        Fault(
            key="extra_network",
            label="Network not directly connected",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Incorrect network declaration",),
            ir_transform=_make_extra_network(router_count),
        )
    )
    faults.append(
        Fault(
            key="extra_neighbor",
            label="Neighbor that does not exist in the topology",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Incorrect neighbor declaration",),
            ir_transform=_make_extra_neighbor(router_count),
        )
    )

    # -- semantic -----------------------------------------------------------------

    faults.append(
        Fault(
            key="and_or_semantics",
            label="AND semantics used for community filtering",
            category=ErrorCategory.SEMANTIC,
            fixable_by_generated_prompt=False,
            prompt_patterns=(r"FILTER_COMM_OUT_R2",),
            human_prompt_patterns=(r"separate (route-map )?stanza",),
            human_prompt=(
                "Multiple match statements inside one route-map stanza are "
                "combined with AND semantics. To filter routes carrying ANY "
                "of the communities, declare each match statement in a "
                "separate route-map stanza with its own deny action."
            ),
            ir_transform=_merge_deny_clauses("FILTER_COMM_OUT_R2"),
        )
    )
    faults.append(
        Fault(
            key="egress_permits_tagged",
            label="Egress filter passes a tagged route",
            category=ErrorCategory.SEMANTIC,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"FILTER_COMM_OUT_R4",),
            ir_transform=_drop_first_deny("FILTER_COMM_OUT_R4"),
        )
    )
    faults.append(
        Fault(
            key="missing_ingress_tag",
            label="Ingress map does not add the community",
            category=ErrorCategory.SEMANTIC,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"ADD_COMM_R5",),
            ir_transform=_drop_ingress_sets("ADD_COMM_R5"),
        )
    )
    faults.append(
        Fault(
            key="non_additive_set_community",
            label="set community without the additive keyword",
            category=ErrorCategory.SEMANTIC,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"additive", r"non-additively"),
            ir_transform=_make_non_additive("ADD_COMM_R3"),
        )
    )
    return {fault.key: fault for fault in faults}


# -- transform builders ------------------------------------------------------------


def _make_inline_match(map_name: str):
    def transform(config: RouterConfig) -> None:
        route_map = config.route_maps.get(map_name)
        if route_map is None:
            return
        for clause in route_map.clauses:
            if clause.action is Action.DENY and clause.matches:
                condition = clause.matches[0]
                if isinstance(condition, MatchCommunityList):
                    community_list = config.get_community_list(condition.name)
                    members = (
                        sorted(community_list.permitted_communities())
                        if community_list is not None
                        else [Community(100, 1)]
                    )
                    clause.matches[0] = MatchCommunityInline(members[0])
                return

    return transform


def _make_misplace_neighbor(last_spoke: int):
    pattern = re.compile(
        rf"^ neighbor (\S+) route-map FILTER_COMM_OUT_R{last_spoke} out$",
        re.MULTILINE,
    )

    def transform(text: str) -> str:
        match = pattern.search(text)
        if match is None:
            return text
        line = match.group(0)
        without = pattern.sub("", text, count=1)
        return line.strip() + "\n" + without

    return transform


def _wrong_interface_ip(config: RouterConfig) -> None:
    interface = config.get_interface("eth0/2")
    if interface is not None and interface.address is not None:
        # Swap the hub-side .1 for the spoke-side .2 on the link subnet.
        interface.address = Ipv4Address(interface.address.value + 1)


def _wrong_local_as(config: RouterConfig) -> None:
    if config.bgp is not None:
        config.bgp.asn = 1 if config.bgp.asn != 1 else 99


def _wrong_router_id(config: RouterConfig) -> None:
    if config.bgp is not None and config.bgp.router_id is not None:
        config.bgp.router_id = Ipv4Address(config.bgp.router_id.value - 1)


def _drop_hub_neighbor(config: RouterConfig) -> None:
    if config.bgp is not None:
        config.bgp.remove_neighbor("1.0.0.1")


def _drop_link_network(config: RouterConfig) -> None:
    if config.bgp is not None:
        target = Prefix.parse("1.0.0.0/24")
        config.bgp.networks = [
            prefix for prefix in config.bgp.networks if prefix != target
        ]


def _make_extra_network(router_count: int):
    def transform(config: RouterConfig) -> None:
        if config.bgp is not None:
            config.bgp.announce(Prefix.parse(f"{router_count}.0.0.0/24"))

    return transform


def _make_extra_neighbor(router_count: int):
    def transform(config: RouterConfig) -> None:
        if config.bgp is not None:
            config.bgp.add_neighbor(
                BgpNeighbor(
                    ip=Ipv4Address.parse(f"{router_count}.0.0.2"),
                    remote_as=router_count,
                )
            )

    return transform


def _merge_deny_clauses(map_name: str):
    """Collapse the per-community deny stanzas into one AND stanza —
    §4.2's exact mistake, quoted route-map and all."""

    def transform(config: RouterConfig) -> None:
        route_map = config.route_maps.get(map_name)
        if route_map is None:
            return
        deny_matches = []
        permit_clauses = []
        for clause in route_map.clauses:
            if clause.action is Action.DENY:
                deny_matches.extend(clause.matches)
            else:
                permit_clauses.append(clause)
        if not deny_matches:
            return
        merged = RouteMapClause(seq=10, action=Action.DENY, matches=deny_matches)
        for index, clause in enumerate(permit_clauses):
            clause.seq = 20 + 10 * index
        route_map.clauses = [merged] + permit_clauses

    return transform


def _drop_first_deny(map_name: str):
    def transform(config: RouterConfig) -> None:
        route_map = config.route_maps.get(map_name)
        if route_map is None:
            return
        for clause in list(route_map.clauses):
            if clause.action is Action.DENY:
                route_map.clauses.remove(clause)
                return

    return transform


def _drop_ingress_sets(map_name: str):
    def transform(config: RouterConfig) -> None:
        route_map = config.route_maps.get(map_name)
        if route_map is None:
            return
        for clause in route_map.clauses:
            clause.sets = []

    return transform


def _make_non_additive(map_name: str):
    def transform(config: RouterConfig) -> None:
        route_map = config.route_maps.get(map_name)
        if route_map is None:
            return
        for clause in route_map.clauses:
            clause.sets = [
                SetCommunity(action.communities, additive=False)
                if isinstance(action, SetCommunity)
                else action
                for action in clause.sets
            ]

    return transform
