"""Fault catalog for the no-transit local-synthesis use case (§4).

Three families, matching §4.1's error classification:

* **syntax** — interactive CLI keywords, inline ``match community``
  values, and the misplaced ``neighbor`` command of §4.2;
* **topology** — the seven Table 3 inconsistencies (wrong interface IP,
  wrong local AS, wrong router-id, missing neighbor/network, extra
  network/neighbor);
* **semantic** — egress filters that pass tagged routes, ingress maps
  that do not tag, the non-additive ``set community``, and §4.2's
  AND/OR match-semantics confusion (unfixable from the generated
  counterexample; needs the "separate stanza" human prompt).

Fault keys suppressed by Initial Instruction Prompts are listed in
:data:`IIP_SUPPRESSED_FAULTS` — supplying the IIP removes them from the
initial draft, reproducing §4.2's before/after.

Fault *addressing* dispatches on topology family.  The star catalog
keeps Table 3's literal targets (neighbor ``1.0.0.1``, network
``1.0.0.0/24``, the hub's ``eth0/2``); every other family derives the
equivalent artifact from the topology itself — a router's first
internal BGP neighbor, its first announced link subnet, its ISP-facing
interface.  A transform whose target is absent from the draft raises
:class:`~repro.llm.faults.FaultTargetError` instead of silently
no-opping, so a misassigned fault fails loudly rather than passing
every check vacuously.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..errors import ErrorCategory
from ..netmodel.communities import Community
from ..netmodel.device import RouterConfig
from ..netmodel.bgp import BgpNeighbor
from ..netmodel.ip import Ipv4Address, Prefix
from ..netmodel.routing_policy import (
    Action,
    MatchCommunityInline,
    MatchCommunityList,
    RouteMapClause,
    SetCommunity,
)
from ..topology.families import is_hub_star, isp_attachments
from ..topology.generator import ingress_community
from ..topology.model import Topology
from ..topology.roles import RoleAssignment, egress_map_of, ingress_map_of
from .faults import Fault, FaultTargetError

__all__ = [
    "IIP_SUPPRESSED_FAULTS",
    "MULTIHOME_FAULT_KEY",
    "SYNTHESIS_SIDE_POOL",
    "border_fault_assignment",
    "default_fault_assignment",
    "fault_designations",
    "multihome_fault_target",
    "synthesis_fault_catalog",
]

# The role-aware fault family: present in a topology's catalog only
# when that topology actually carries a multi-homed transit-forbidden
# ISP (two attachments sharing one community slot).
MULTIHOME_FAULT_KEY = "multihome_untagged_home"

# fault key -> the IIP id whose presence suppresses it (§4.2's four IIPs;
# the misplaced-keywords IIP covers CLI prompts and wrong keywords both).
IIP_SUPPRESSED_FAULTS = {
    "cli_keywords": "no-cli-keywords",
    "inline_match_community": "match-via-community-list",
    "non_additive_set_community": "additive-keyword",
}

SYNTHESIS_SIDE_POOL = ("stray_ip_routing",)


def default_fault_assignment(router_count: int) -> Dict[str, List[str]]:
    """Which faults each router's first draft carries (default seed).

    The hub concentrates the policy errors (it holds all the policy);
    two spokes carry the Table 3 topology errors; the rest draft clean —
    mirroring §4.2 where "some GPT-4 errors were more common" but not
    universal.
    """
    if router_count < 4:
        raise ValueError("the default assignment needs at least 4 routers")
    assignment: Dict[str, List[str]] = {
        name: [] for name in (f"R{i}" for i in range(1, router_count + 1))
    }
    assignment["R1"] = [
        "cli_keywords",
        "inline_match_community",
        "non_additive_set_community",
        "misplaced_neighbor_command",
        "and_or_semantics",
        "wrong_interface_ip",
        "extra_network",
        "extra_neighbor",
        "egress_permits_tagged",
    ]
    if router_count >= 5:
        assignment["R1"].append("missing_ingress_tag")
    assignment["R2"] = [
        "cli_keywords",
        "wrong_router_id",
        "missing_neighbor",
        "missing_network",
    ]
    assignment["R3"] = ["wrong_local_as"]
    return assignment


def border_fault_assignment(topology: Topology) -> Dict[str, List[str]]:
    """Default faults for border-policy families (chain/ring/mesh/...).

    The policy faults target concrete route-map names
    (``FILTER_COMM_OUT_R2`` and friends), which in a border family live
    on the router of the same index — so each lands on the router that
    actually owns its map, and only when that router carries an ISP.
    The addressed topology faults (missing neighbor/network) resolve
    their targets per router, so R2 carries them in every family just
    as it does in the star.
    """
    names = topology.router_names()
    count = len(names)
    if count < 4:
        raise ValueError("the default assignment needs at least 4 routers")
    isp_routers = {peer.router for peer in isp_attachments(topology)}
    assignment: Dict[str, List[str]] = {name: [] for name in names}

    def put(router: str, *keys: str) -> None:
        if router in assignment:
            assignment[router].extend(keys)

    # Addressed faults land only where their target artifact exists:
    # on an irregular (random/waxman) graph R2 may announce no link
    # subnet and R3 may carry no external interface, and assigning a
    # fault with no target would abort the draft with FaultTargetError.
    network_targets = _link_network_targets(topology)
    neighbor_targets = _internal_neighbor_targets(topology)
    interface_targets = _interface_targets(topology)
    put("R1", "cli_keywords", "extra_network", "extra_neighbor")
    put("R2", "cli_keywords", "wrong_router_id")
    if "R2" in neighbor_targets:
        put("R2", "missing_neighbor")
    if "R2" in network_targets:
        put("R2", "missing_network")
    put("R3", "wrong_local_as")
    if "R3" in interface_targets:
        put("R3", "wrong_interface_ip")
    and_or_router, _ = _and_or_owner(topology)
    put(and_or_router, "and_or_semantics")
    if "R3" in isp_routers:
        put("R3", "non_additive_set_community")
    if "R4" in isp_routers:
        put("R4", "egress_permits_tagged")
    if count >= 5 and "R5" in isp_routers:
        put("R5", "missing_ingress_tag")
    inline_owner = f"R{min(6, count)}"
    if inline_owner in isp_routers:
        put(inline_owner, "inline_match_community")
    last = f"R{count}"
    if last in isp_routers and last != inline_owner:
        put(last, "misplaced_neighbor_command")
    return assignment


def fault_designations(topology: Topology) -> Dict[str, str]:
    """Which router each fault key is designated to land on, derived
    from the topology's default assignment (first carrier in router
    order).  Side-pool faults default to R1.  Faults absent from the
    assignment (e.g. ``missing_ingress_tag`` below five routers) are
    absent from the mapping."""
    assignment = (
        default_fault_assignment(len(topology.routers))
        if is_hub_star(topology)
        else border_fault_assignment(topology)
    )
    designations: Dict[str, str] = {}
    for router in topology.router_names():
        for key in assignment.get(router, []):
            designations.setdefault(key, router)
    for key in SYNTHESIS_SIDE_POOL:
        designations.setdefault(key, "R1")
    multihome = multihome_fault_target(topology)
    if multihome is not None:
        designations.setdefault(MULTIHOME_FAULT_KEY, multihome[0])
    return designations


def multihome_fault_target(
    topology: Topology,
) -> "Tuple[str, str, object] | None":
    """(router, ingress map, shared community) of the *second* home of
    the first multi-homed transit-forbidden ISP, or ``None`` when the
    topology has no multi-homed group.

    This is the role-aware fault family's address: the attachment whose
    draft can silently break the shared-tag discipline while every
    other home of the same ISP keeps tagging — the per-ISP (rather than
    per-border-router) failure mode the multi-homed no-transit argument
    exists to catch.
    """
    from ..topology.reference import ingress_map_name

    if is_hub_star(topology):
        return None  # hub policy: no role assignment, never multi-homed
    roles = RoleAssignment.from_topology(topology)
    for index in roles.indices():
        group = roles.groups[index]
        if len(group) > 1:
            second_home = group[1]
            # The map is named for the shared community *slot*, so both
            # homes carry an identically-named map — the fault corrupts
            # the copy on the second home's router only.
            return (
                second_home.router,
                ingress_map_name(index),
                ingress_community(index),
            )
    return None


# -- per-family target resolution ---------------------------------------------


def _internal_neighbor_targets(topology: Topology) -> Dict[str, str]:
    """router -> IP (string) of its first internal BGP neighbor."""
    internal = set(topology.routers)
    targets: Dict[str, str] = {}
    for name in topology.router_names():
        for spec in topology.router(name).neighbors:
            if spec.peer_name in internal:
                targets[name] = str(spec.ip)
                break
    return targets


def _link_network_targets(topology: Topology) -> Dict[str, Prefix]:
    """router -> the first link subnet that router announces."""
    link_subnets = {link.subnet for link in topology.links}
    targets: Dict[str, Prefix] = {}
    for name in topology.router_names():
        for network in topology.router(name).networks:
            if network in link_subnets:
                targets[name] = network
                break
    return targets


def _interface_targets(topology: Topology) -> Dict[str, str]:
    """router -> the interface whose address the fault corrupts.

    Star: the hub's ``eth0/2`` (Table 3's literal example).  Border
    families: each ISP-attached router's external interface — the one
    artifact guaranteed to exist wherever the fault is assigned.
    """
    if is_hub_star(topology):
        hub = topology.router("R1")
        if hub.interface("eth0/2") is not None:
            return {"R1": "eth0/2"}
        return {}
    targets: Dict[str, str] = {}
    for peer in isp_attachments(topology):
        targets.setdefault(peer.router, peer.interface)
    return targets


def _and_or_owner(topology: Topology) -> Tuple[str, str]:
    """(router carrying the AND/OR fault, egress map it corrupts).

    Star: the hub owns every egress map; §4.2's example corrupts
    ``FILTER_COMM_OUT_R2``.  Border: the map lives on its own router —
    R2 when R2 carries an attachment, else the first attached router
    (the dumbbell's cores are attachment-free) — and is named for the
    attachment's community slot, which under multi-homing need not
    equal the router index.
    """
    if is_hub_star(topology):
        return "R1", "FILTER_COMM_OUT_R2"
    isp_routers = [peer.router for peer in isp_attachments(topology)]
    if "R2" in isp_routers:
        owner = "R2"
    elif isp_routers:
        owner = isp_routers[0]
    else:
        owner = "R2"
    return owner, egress_map_of(topology, owner) or "FILTER_COMM_OUT_R2"


def _resolve_map(
    topology: Topology, router: str, direction: str, fallback: str
) -> str:
    """The actual ingress/egress map name on ``router``'s attachment.

    The star's spoke-indexed names happen to coincide with the slot
    resolution (spoke Rj's maps are named for slot j), so one helper
    serves both placements; routers without an attachment keep the
    historical literal — their faults are never assigned there anyway.
    """
    resolver = ingress_map_of if direction == "ingress" else egress_map_of
    if is_hub_star(topology):
        return fallback
    return resolver(topology, router) or fallback


def synthesis_fault_catalog(topology: Topology) -> Dict[str, Fault]:
    """Build the catalog for a given topology (it needs concrete
    addresses, map names, and the router count)."""
    router_count = len(topology.routers)
    neighbor_targets = _internal_neighbor_targets(topology)
    network_targets = _link_network_targets(topology)
    interface_targets = _interface_targets(topology)
    and_or_router, and_or_map = _and_or_owner(topology)
    # Table 3 phrases its prompts against R2's draft; the pattern for an
    # addressed fault is derived from the designated carrier's target.
    neighbor_ip = neighbor_targets.get("R2", "1.0.0.1")
    link_network = network_targets.get("R2", Prefix.parse("1.0.0.0/24"))
    interface_owner = "R1" if is_hub_star(topology) else "R3"
    interface_name = interface_targets.get(interface_owner, "eth0/2")
    faults: List[Fault] = []

    # -- syntax ----------------------------------------------------------------

    faults.append(
        Fault(
            key="cli_keywords",
            label="Interactive CLI keywords in config file",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(
                r"Interactive CLI command",
                r"configure terminal",
            ),
            text_transform=lambda text: "configure terminal\n"
            + text
            + "exit\nwrite\n",
        )
    )
    faults.append(
        Fault(
            key="stray_ip_routing",
            label="Unnecessary 'ip routing' statement",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"ip routing",),
            text_transform=lambda text: "ip routing\n" + text,
        )
    )
    inline_target = _resolve_map(
        topology,
        f"R{min(6, router_count)}",
        "egress",
        f"FILTER_COMM_OUT_R{min(6, router_count)}",
    )
    faults.append(
        Fault(
            key="inline_match_community",
            label="match community with a literal value",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=True,
            prompt_patterns=(
                r"community-list name",
                r"match community expects",
            ),
            ir_transform=_make_inline_match(inline_target),
        )
    )
    misplaced_map = _resolve_map(
        topology,
        f"R{router_count}",
        "egress",
        f"FILTER_COMM_OUT_R{router_count}",
    )
    misplaced_pattern = (
        rf"neighbor \S+ route-map {re.escape(misplaced_map)} out"
    )
    faults.append(
        Fault(
            key="misplaced_neighbor_command",
            label="neighbor command outside the router bgp block",
            category=ErrorCategory.SYNTAX,
            fixable_by_generated_prompt=False,
            prompt_patterns=(misplaced_pattern,),
            human_prompt_patterns=(r"router bgp block", r"under .router bgp."),
            human_prompt=(
                "All network and neighbor commands must be placed under "
                'the "router bgp" block. Move the neighbor route-map '
                "statement back inside the router bgp block."
            ),
            text_transform=_make_misplace_neighbor(misplaced_map),
        )
    )

    # -- topology ---------------------------------------------------------------

    faults.append(
        Fault(
            key="wrong_interface_ip",
            label="Interface IP address does not match the topology",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(
                rf"Interface {re.escape(interface_name)} ip address",
            ),
            ir_transform=_shift_interface_ip(interface_targets),
        )
    )
    faults.append(
        Fault(
            key="wrong_local_as",
            label="Local AS number does not match",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Local AS number",),
            ir_transform=_wrong_local_as,
        )
    )
    faults.append(
        Fault(
            key="wrong_router_id",
            label="Router ID does not match",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Router ID",),
            ir_transform=_wrong_router_id,
        )
    )
    faults.append(
        Fault(
            key="missing_neighbor",
            label="BGP neighbor not declared",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(
                rf"Neighbor with IP address {re.escape(neighbor_ip)}",
            ),
            ir_transform=_drop_internal_neighbor(neighbor_targets),
        )
    )
    faults.append(
        Fault(
            key="missing_network",
            label="Network not declared",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(
                rf"Network {re.escape(str(link_network))} not declared",
            ),
            ir_transform=_drop_link_network(network_targets),
        )
    )
    faults.append(
        Fault(
            key="extra_network",
            label="Network not directly connected",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Incorrect network declaration",),
            ir_transform=_make_extra_network(router_count),
        )
    )
    faults.append(
        Fault(
            key="extra_neighbor",
            label="Neighbor that does not exist in the topology",
            category=ErrorCategory.TOPOLOGY,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"Incorrect neighbor declaration",),
            ir_transform=_make_extra_neighbor(router_count),
        )
    )

    # -- semantic -----------------------------------------------------------------

    faults.append(
        Fault(
            key="and_or_semantics",
            label="AND semantics used for community filtering",
            category=ErrorCategory.SEMANTIC,
            fixable_by_generated_prompt=False,
            prompt_patterns=(and_or_map,),
            human_prompt_patterns=(r"separate (route-map )?stanza",),
            human_prompt=(
                "Multiple match statements inside one route-map stanza are "
                "combined with AND semantics. To filter routes carrying ANY "
                "of the communities, declare each match statement in a "
                "separate route-map stanza with its own deny action."
            ),
            ir_transform=_merge_deny_clauses(and_or_map),
        )
    )
    egress_target = _resolve_map(topology, "R4", "egress", "FILTER_COMM_OUT_R4")
    faults.append(
        Fault(
            key="egress_permits_tagged",
            label="Egress filter passes a tagged route",
            category=ErrorCategory.SEMANTIC,
            fixable_by_generated_prompt=True,
            prompt_patterns=(re.escape(egress_target),),
            ir_transform=_drop_first_deny(egress_target),
        )
    )
    ingress_target = _resolve_map(topology, "R5", "ingress", "ADD_COMM_R5")
    faults.append(
        Fault(
            key="missing_ingress_tag",
            label="Ingress map does not add the community",
            category=ErrorCategory.SEMANTIC,
            fixable_by_generated_prompt=True,
            prompt_patterns=(re.escape(ingress_target),),
            ir_transform=_drop_ingress_sets(ingress_target),
        )
    )
    non_additive_target = _resolve_map(topology, "R3", "ingress", "ADD_COMM_R3")
    faults.append(
        Fault(
            key="non_additive_set_community",
            label="set community without the additive keyword",
            category=ErrorCategory.SEMANTIC,
            fixable_by_generated_prompt=True,
            prompt_patterns=(r"additive", r"non-additively"),
            ir_transform=_make_non_additive(non_additive_target),
        )
    )

    # -- role-aware fault family ----------------------------------------------
    # Only topologies with a multi-homed ISP carry this fault: exactly
    # one home stops adding the community slot it *shares* with its
    # sibling attachments, so the ISP's other homes keep the discipline
    # while this one opens a transit path.
    multihome = multihome_fault_target(topology)
    if multihome is not None:
        _, multihome_map, multihome_tag = multihome
        faults.append(
            Fault(
                key=MULTIHOME_FAULT_KEY,
                label="One home of a multi-homed ISP drops the shared tag",
                category=ErrorCategory.SEMANTIC,
                fixable_by_generated_prompt=True,
                prompt_patterns=(re.escape(multihome_map),),
                ir_transform=_drop_home_tag(multihome_map, multihome_tag),
            )
        )
    return {fault.key: fault for fault in faults}


# -- transform builders ------------------------------------------------------------


def _require_map(config: RouterConfig, map_name: str, fault_key: str):
    route_map = config.route_maps.get(map_name)
    if route_map is None:
        raise FaultTargetError(
            f"{fault_key}: {config.hostname} has no route-map {map_name}"
        )
    return route_map


def _make_inline_match(map_name: str):
    def transform(config: RouterConfig) -> None:
        route_map = _require_map(config, map_name, "inline_match_community")
        for clause in route_map.clauses:
            if clause.action is Action.DENY and clause.matches:
                condition = clause.matches[0]
                if isinstance(condition, MatchCommunityList):
                    community_list = config.get_community_list(condition.name)
                    members = (
                        sorted(community_list.permitted_communities())
                        if community_list is not None
                        else [Community(100, 1)]
                    )
                    clause.matches[0] = MatchCommunityInline(members[0])
                return
        raise FaultTargetError(
            f"inline_match_community: {map_name} on {config.hostname} has "
            f"no deny clause to corrupt"
        )

    return transform


def _make_misplace_neighbor(map_name: str):
    pattern = re.compile(
        rf"^ neighbor (\S+) route-map {re.escape(map_name)} out$",
        re.MULTILINE,
    )

    def transform(text: str) -> str:
        match = pattern.search(text)
        if match is None:
            raise FaultTargetError(
                f"misplaced_neighbor_command: no 'neighbor ... route-map "
                f"{map_name} out' line in this draft"
            )
        line = match.group(0)
        without = pattern.sub("", text, count=1)
        return line.strip() + "\n" + without

    return transform


def _shift_interface_ip(targets: Dict[str, str]):
    def transform(config: RouterConfig) -> None:
        name = targets.get(config.hostname)
        if name is None:
            raise FaultTargetError(
                f"wrong_interface_ip: no target interface designated for "
                f"{config.hostname}"
            )
        interface = config.get_interface(name)
        if interface is None or interface.address is None:
            raise FaultTargetError(
                f"wrong_interface_ip: {config.hostname} has no addressed "
                f"interface {name}"
            )
        # Swap the router-side .1 for the peer-side .2 on the subnet.
        interface.address = Ipv4Address(interface.address.value + 1)

    return transform


def _wrong_local_as(config: RouterConfig) -> None:
    if config.bgp is None:
        raise FaultTargetError(
            f"wrong_local_as: {config.hostname} has no BGP process"
        )
    config.bgp.asn = 1 if config.bgp.asn != 1 else 99


def _wrong_router_id(config: RouterConfig) -> None:
    if config.bgp is None or config.bgp.router_id is None:
        raise FaultTargetError(
            f"wrong_router_id: {config.hostname} has no BGP router-id"
        )
    config.bgp.router_id = Ipv4Address(config.bgp.router_id.value - 1)


def _drop_internal_neighbor(targets: Dict[str, str]):
    def transform(config: RouterConfig) -> None:
        ip = targets.get(config.hostname)
        if ip is None:
            raise FaultTargetError(
                f"missing_neighbor: {config.hostname} has no internal BGP "
                f"neighbor to drop"
            )
        if config.bgp is None or config.bgp.get_neighbor(ip) is None:
            raise FaultTargetError(
                f"missing_neighbor: {config.hostname} does not declare "
                f"neighbor {ip}"
            )
        config.bgp.remove_neighbor(ip)

    return transform


def _drop_link_network(targets: Dict[str, Prefix]):
    def transform(config: RouterConfig) -> None:
        target = targets.get(config.hostname)
        if target is None:
            raise FaultTargetError(
                f"missing_network: {config.hostname} announces no link "
                f"subnet to drop"
            )
        if config.bgp is None or target not in config.bgp.networks:
            raise FaultTargetError(
                f"missing_network: {config.hostname} does not announce "
                f"{target}"
            )
        config.bgp.networks = [
            prefix for prefix in config.bgp.networks if prefix != target
        ]

    return transform


def _make_extra_network(router_count: int):
    def transform(config: RouterConfig) -> None:
        if config.bgp is None:
            raise FaultTargetError(
                f"extra_network: {config.hostname} has no BGP process"
            )
        config.bgp.announce(Prefix.parse(f"{router_count}.0.0.0/24"))

    return transform


def _make_extra_neighbor(router_count: int):
    def transform(config: RouterConfig) -> None:
        if config.bgp is None:
            raise FaultTargetError(
                f"extra_neighbor: {config.hostname} has no BGP process"
            )
        config.bgp.add_neighbor(
            BgpNeighbor(
                ip=Ipv4Address.parse(f"{router_count}.0.0.2"),
                remote_as=router_count,
            )
        )

    return transform


def _merge_deny_clauses(map_name: str):
    """Collapse the per-community deny stanzas into one AND stanza —
    §4.2's exact mistake, quoted route-map and all."""

    def transform(config: RouterConfig) -> None:
        route_map = _require_map(config, map_name, "and_or_semantics")
        deny_matches = []
        permit_clauses = []
        for clause in route_map.clauses:
            if clause.action is Action.DENY:
                deny_matches.extend(clause.matches)
            else:
                permit_clauses.append(clause)
        if not deny_matches:
            raise FaultTargetError(
                f"and_or_semantics: {map_name} on {config.hostname} has no "
                f"deny stanzas to merge"
            )
        merged = RouteMapClause(seq=10, action=Action.DENY, matches=deny_matches)
        for index, clause in enumerate(permit_clauses):
            clause.seq = 20 + 10 * index
        route_map.clauses = [merged] + permit_clauses

    return transform


def _drop_first_deny(map_name: str):
    def transform(config: RouterConfig) -> None:
        route_map = _require_map(config, map_name, "egress_permits_tagged")
        for clause in list(route_map.clauses):
            if clause.action is Action.DENY:
                route_map.clauses.remove(clause)
                return
        raise FaultTargetError(
            f"egress_permits_tagged: {map_name} on {config.hostname} has "
            f"no deny clause to drop"
        )

    return transform


def _drop_ingress_sets(map_name: str):
    def transform(config: RouterConfig) -> None:
        route_map = _require_map(config, map_name, "missing_ingress_tag")
        if not any(clause.sets for clause in route_map.clauses):
            raise FaultTargetError(
                f"missing_ingress_tag: {map_name} on {config.hostname} "
                f"sets nothing to drop"
            )
        for clause in route_map.clauses:
            clause.sets = []

    return transform


def _drop_home_tag(map_name: str, community: Community):
    """Remove the shared community from one home's ingress tagging.

    Addressed like every other fault: injected into a draft whose
    router lacks the slot's map — or whose map never adds the shared
    tag — it raises :class:`FaultTargetError` instead of no-opping.
    """

    def transform(config: RouterConfig) -> None:
        route_map = _require_map(config, map_name, MULTIHOME_FAULT_KEY)
        dropped = False
        for clause in route_map.clauses:
            rewritten = []
            for action in clause.sets:
                if (
                    isinstance(action, SetCommunity)
                    and community in action.communities
                ):
                    dropped = True
                    remaining = tuple(
                        item
                        for item in action.communities
                        if item != community
                    )
                    if remaining:
                        rewritten.append(
                            SetCommunity(remaining, additive=action.additive)
                        )
                else:
                    rewritten.append(action)
            clause.sets = rewritten
        if not dropped:
            raise FaultTargetError(
                f"{MULTIHOME_FAULT_KEY}: {map_name} on {config.hostname} "
                f"never adds the shared community {community}"
            )

    return transform


def _make_non_additive(map_name: str):
    def transform(config: RouterConfig) -> None:
        route_map = _require_map(config, map_name, "non_additive_set_community")
        if not any(
            isinstance(action, SetCommunity)
            for clause in route_map.clauses
            for action in clause.sets
        ):
            raise FaultTargetError(
                f"non_additive_set_community: {map_name} on "
                f"{config.hostname} sets no community"
            )
        for clause in route_map.clauses:
            clause.sets = [
                SetCommunity(action.communities, additive=False)
                if isinstance(action, SetCommunity)
                else action
                for action in clause.sets
            ]

    return transform
