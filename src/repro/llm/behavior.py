"""The correction-behaviour model of the simulated GPT-4.

§3.2 observes four reactions to a correction prompt: GPT-4 fixes the
issue; it "appl[ies] no change"; it "can fix one error, but introduce
new errors that were not previously there"; and it "sometimes even
reintroduces errors that were previously fixed".  The behaviour model
samples among exactly those outcomes with a seeded RNG, so experiments
are reproducible prompt-for-prompt.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

__all__ = ["BehaviorProfile", "CorrectionOutcome", "sample_outcome"]


class CorrectionOutcome(enum.Enum):
    """What the model does with a recognized, fixable correction prompt."""

    FIX = "fix"
    NO_CHANGE = "no_change"
    FIX_WITH_NEW_ERROR = "fix_with_new_error"
    FIX_WITH_REGRESSION = "fix_with_regression"


@dataclass(frozen=True)
class BehaviorProfile:
    """Outcome probabilities.  Must sum to 1.

    The defaults are calibrated so the two use cases land near the
    paper's prompt counts (≈20 automated for translation, ≈12 for
    synthesis) over the default seeds.
    """

    fix: float = 0.70
    no_change: float = 0.14
    fix_with_new_error: float = 0.10
    fix_with_regression: float = 0.06

    def __post_init__(self) -> None:
        total = self.fix + self.no_change + self.fix_with_new_error + (
            self.fix_with_regression
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total}")

    @classmethod
    def always_fix(cls) -> "BehaviorProfile":
        """An idealized future model (the paper's GPT-6 hypothetical —
        leverage decreases as the LLM improves)."""
        return cls(fix=1.0, no_change=0.0, fix_with_new_error=0.0,
                   fix_with_regression=0.0)

    @classmethod
    def never_fix(cls) -> "BehaviorProfile":
        """A degenerate model used by failure-injection tests."""
        return cls(fix=0.0, no_change=1.0, fix_with_new_error=0.0,
                   fix_with_regression=0.0)


def sample_outcome(
    rng: random.Random, profile: BehaviorProfile
) -> CorrectionOutcome:
    """Draw one correction outcome."""
    value = rng.random()
    if value < profile.fix:
        return CorrectionOutcome.FIX
    value -= profile.fix
    if value < profile.no_change:
        return CorrectionOutcome.NO_CHANGE
    value -= profile.no_change
    if value < profile.fix_with_new_error:
        return CorrectionOutcome.FIX_WITH_NEW_ERROR
    return CorrectionOutcome.FIX_WITH_REGRESSION
