"""LLM layer: the client protocol and the simulated GPT-4.

The simulated model generates drafts as "correct reference + injected
faults" drawn from the paper's documented error taxonomy, and responds
to correction prompts with the §3.2 behaviour distribution.  A real API
client can replace it behind the same :class:`LLMClient` protocol.
"""

from .behavior import BehaviorProfile, CorrectionOutcome, sample_outcome
from .client import ChatMessage, ChatRole, ChatTranscript, LLMClient
from .faults import DraftState, Fault, FaultTargetError
from .replay import ReplayClient, responses_of
from .simulated import CorrectionStats, SimulatedGPT4
from .synthesis_faults import (
    IIP_SUPPRESSED_FAULTS,
    MULTIHOME_FAULT_KEY,
    border_fault_assignment,
    default_fault_assignment,
    fault_designations,
    multihome_fault_target,
    synthesis_fault_catalog,
)
from .synthesis_model import make_synthesis_model, make_synthesis_models
from .translation_faults import (
    DEFAULT_INITIAL_FAULTS,
    SIDE_POOL_FAULTS,
    translation_fault_catalog,
)
from .translation_model import make_translation_model, reference_translation

__all__ = [
    "BehaviorProfile",
    "ChatMessage",
    "ChatRole",
    "ChatTranscript",
    "CorrectionOutcome",
    "CorrectionStats",
    "DEFAULT_INITIAL_FAULTS",
    "DraftState",
    "Fault",
    "FaultTargetError",
    "IIP_SUPPRESSED_FAULTS",
    "MULTIHOME_FAULT_KEY",
    "LLMClient",
    "ReplayClient",
    "SIDE_POOL_FAULTS",
    "SimulatedGPT4",
    "border_fault_assignment",
    "default_fault_assignment",
    "fault_designations",
    "multihome_fault_target",
    "make_synthesis_model",
    "make_synthesis_models",
    "make_translation_model",
    "reference_translation",
    "responses_of",
    "sample_outcome",
    "synthesis_fault_catalog",
    "translation_fault_catalog",
]
