"""Replay client: drive COSYNTH from a recorded transcript.

The path to using a *real* GPT-4 with this codebase: record the
assistant responses of an actual chat (or of a prior simulated run),
then replay them through the same orchestrator.  Replay is also how the
test suite pins down orchestrator behaviour against byte-exact response
sequences.
"""

from __future__ import annotations

from typing import List, Sequence

from .client import ChatRole, ChatTranscript

__all__ = ["ReplayClient", "responses_of"]


class ReplayClient:
    """An :class:`LLMClient` that returns pre-recorded responses in order.

    When the recording runs out, the last response is repeated (a stuck
    model), matching how a real chat would behave if re-asked after its
    final answer.
    """

    def __init__(self, responses: Sequence[str]) -> None:
        if not responses:
            raise ValueError("a replay needs at least one response")
        self._responses = list(responses)
        self._cursor = 0
        self.transcript = ChatTranscript()

    def send(self, prompt: str) -> str:
        self.transcript.add_user(prompt)
        index = min(self._cursor, len(self._responses) - 1)
        self._cursor += 1
        response = self._responses[index]
        self.transcript.add_assistant(response)
        return response

    @property
    def exhausted(self) -> bool:
        """True once every recorded response has been served."""
        return self._cursor >= len(self._responses)

    def prompts_received(self) -> List[str]:
        return [
            message.content
            for message in self.transcript.messages
            if message.role is ChatRole.USER
        ]


def responses_of(transcript: ChatTranscript) -> List[str]:
    """Extract the assistant turns of a transcript, for replaying."""
    return [
        message.content
        for message in transcript.messages
        if message.role is ChatRole.ASSISTANT
    ]
