"""The simulated GPT-4: a draft generator with a calibrated fault model.

The paper could not script the real GPT-4 ("we have not been able to
access the APIs, and so manually simulated the API calls").  This class
plays GPT-4's role mechanically so the COSYNTH loop can actually run:

* the first prompt of a chat yields a draft — the correct reference
  configuration perturbed by the task's initial fault set;
* each later prompt is matched against the active faults' signatures;
  a match triggers the §3.2 behaviour distribution (fix / no change /
  fix-but-introduce-a-new-error / fix-but-regress-an-old-fix);
* faults marked unfixable-by-generated-prompt ignore generated prompts
  ("it usually does nothing when asked to fix the error") and yield only
  to their documented human prompt, possibly transitioning to a
  successor fault (the ``ge 24`` → ``1.2.3.0/24-32`` story).

Any real :class:`~repro.llm.client.LLMClient` can replace this class in
the orchestrator unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..netmodel.device import RouterConfig
from .behavior import BehaviorProfile, CorrectionOutcome, sample_outcome
from .client import ChatTranscript
from .faults import DraftState, Fault

__all__ = ["CorrectionStats", "SimulatedGPT4"]


@dataclass
class CorrectionStats:
    """Counters over one chat, used by tests and the Table 2 bench."""

    drafts: int = 0
    fixes: int = 0
    human_fixes: int = 0
    no_changes: int = 0
    stubborn_no_changes: int = 0  # unfixable fault ignored a generated prompt
    new_errors: int = 0
    regressions: int = 0
    unmatched: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class SimulatedGPT4:
    """One chat session of the simulated model."""

    def __init__(
        self,
        catalog: Dict[str, Fault],
        reference: RouterConfig,
        renderer: Callable[[RouterConfig], str],
        initial_fault_keys: Sequence[str],
        side_pool_keys: Sequence[str] = (),
        seed: int = 0,
        profile: Optional[BehaviorProfile] = None,
    ) -> None:
        self._catalog = catalog
        self._reference = reference
        self._renderer = renderer
        self._initial_fault_keys = list(initial_fault_keys)
        self._side_pool_keys = list(side_pool_keys)
        self._rng = random.Random(seed)
        self._profile = profile or BehaviorProfile()
        self._draft: Optional[DraftState] = None
        self.transcript = ChatTranscript()
        self.stats = CorrectionStats()
        # (fault_key, "generated" | "human") in resolution order — the
        # raw data behind Table 2's "Fixed" column.
        self.resolution_log: List[tuple] = []

    # -- LLMClient protocol -----------------------------------------------------

    def send(self, prompt: str) -> str:
        """Process one prompt; returns the full current configuration."""
        self.transcript.add_user(prompt)
        if self._draft is None:
            response = self._produce_initial_draft()
        else:
            response = self._handle_correction(prompt)
        self.transcript.add_assistant(response)
        return response

    # -- inspection hooks (tests, benches) ----------------------------------------

    @property
    def draft(self) -> DraftState:
        if self._draft is None:
            raise RuntimeError("no draft yet: send the task prompt first")
        return self._draft

    def active_fault_keys(self) -> List[str]:
        if self._draft is None:
            return []
        return [fault.key for fault in self._draft.active_faults()]

    # -- internals ---------------------------------------------------------------------

    def _produce_initial_draft(self) -> str:
        self._draft = DraftState(self._reference, self._renderer)
        for key in self._initial_fault_keys:
            self._draft.inject(self._catalog[key])
        self.stats.drafts += 1
        return self._draft.render()

    def _handle_correction(self, prompt: str) -> str:
        draft = self._draft
        assert draft is not None
        # Human-issued, fault-specific prompts are more direct and always
        # move the work forward (possibly into a successor fault).
        for fault in draft.active_faults():
            if fault.human_prompt_patterns and fault.matches_human(prompt):
                draft.repair(fault.key)
                if fault.successor_key is not None:
                    draft.inject(self._catalog[fault.successor_key])
                self.stats.human_fixes += 1
                self.resolution_log.append((fault.key, "human"))
                return draft.render()
        for fault in draft.active_faults():
            if fault.matches_generated(prompt):
                return self._apply_generated_correction(fault)
        self.stats.unmatched += 1
        return draft.render()

    def _apply_generated_correction(self, fault: Fault) -> str:
        draft = self._draft
        assert draft is not None
        if not fault.fixable_by_generated_prompt:
            # §3.2: "Instead it usually does nothing when asked to fix
            # the error."
            self.stats.stubborn_no_changes += 1
            return draft.render()
        outcome = sample_outcome(self._rng, self._profile)
        if outcome is CorrectionOutcome.NO_CHANGE:
            self.stats.no_changes += 1
            return draft.render()
        draft.repair(fault.key)
        self.stats.fixes += 1
        self.resolution_log.append((fault.key, "generated"))
        if outcome is CorrectionOutcome.FIX_WITH_NEW_ERROR:
            side_fault = self._pick_side_fault()
            if side_fault is not None:
                draft.inject(side_fault)
                self.stats.new_errors += 1
        elif outcome is CorrectionOutcome.FIX_WITH_REGRESSION:
            regressed = self._pick_regression()
            if regressed is not None:
                draft.reintroduce(regressed)
                self.stats.regressions += 1
        return draft.render()

    def _pick_side_fault(self) -> Optional[Fault]:
        candidates = [
            self._catalog[key]
            for key in self._side_pool_keys
            if self._draft is not None and not self._draft.is_active(key)
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _pick_regression(self) -> Optional[Fault]:
        assert self._draft is not None
        candidates = [
            fault
            for fault in self._draft.fixed_faults()
            if fault.fixable_by_generated_prompt
            and not self._draft.is_active(fault.key)
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)
