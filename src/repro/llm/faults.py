"""The fault framework behind the simulated GPT-4.

The paper characterizes GPT-4's drafts as "promising draft
configurations but with egregious errors in topology, syntax, and
semantics" (§Abstract).  The simulation reifies each observed error as a
:class:`Fault`: a reversible transform applied to the *correct*
reference configuration.  A draft is then "reference + active faults" —
which guarantees every verifier finding traces back to a documented,
paper-grounded fault rather than an accident of the generator.

Faults are recognized in correction prompts through regex signatures:
``prompt_patterns`` match the humanizer's generated prompts (Tables 1
and 3), ``human_prompt_patterns`` match the more direct prompts only a
human issues (§3.2's "add 'from bgp' conditions", §4.2's "declare each
match statement in a separate route-map stanza").
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ErrorCategory
from ..netmodel.device import RouterConfig

__all__ = ["DraftState", "Fault", "FaultTargetError"]

IrTransform = Callable[[RouterConfig], None]
TextTransform = Callable[[str], str]


class FaultTargetError(RuntimeError):
    """A fault was injected into a draft that lacks its target.

    Fault transforms address concrete artifacts — a neighbor IP, an
    announced network, an interface, a route-map.  Historically a
    missing target made the transform a silent no-op, so a misassigned
    fault "passed" every check vacuously.  Transforms now raise this
    instead, surfacing the misassignment at injection time.
    """



@dataclass(frozen=True)
class Fault:
    """One reversible, recognizable draft error."""

    key: str
    label: str  # Table 2 / Table 3 row name
    category: ErrorCategory
    fixable_by_generated_prompt: bool
    prompt_patterns: Tuple[str, ...]
    human_prompt_patterns: Tuple[str, ...] = ()
    ir_transform: Optional[IrTransform] = None
    text_transform: Optional[TextTransform] = None
    successor_key: Optional[str] = None  # fault that replaces this one after a human-directed fix attempt (e.g. ge-range -> invalid syntax)
    human_prompt: str = ""  # the targeted prompt a human issues when punted

    def matches_generated(self, prompt: str) -> bool:
        return any(
            re.search(pattern, prompt, re.IGNORECASE)
            for pattern in self.prompt_patterns
        )

    def matches_human(self, prompt: str) -> bool:
        return any(
            re.search(pattern, prompt, re.IGNORECASE)
            for pattern in self.human_prompt_patterns
        )


class DraftState:
    """A draft configuration: pristine reference plus active faults.

    Rendering deep-copies the reference, applies every active fault's IR
    transform, renders text, then applies text transforms (for errors —
    like invalid syntax — that the IR cannot express).
    """

    def __init__(
        self,
        pristine: RouterConfig,
        renderer: Callable[[RouterConfig], str],
    ) -> None:
        self._pristine = pristine
        self._renderer = renderer
        self._active: Dict[str, Fault] = {}
        self._fixed: List[Fault] = []

    # -- fault management ------------------------------------------------------

    def inject(self, fault: Fault) -> None:
        self._active[fault.key] = fault

    def repair(self, fault_key: str) -> Optional[Fault]:
        fault = self._active.pop(fault_key, None)
        if fault is not None:
            self._fixed.append(fault)
        return fault

    def reintroduce(self, fault: Fault) -> None:
        """A regression: a previously fixed fault comes back (§3.2:
        "Sometimes it even reintroduces errors that were previously
        fixed!")."""
        self._fixed = [item for item in self._fixed if item.key != fault.key]
        self._active[fault.key] = fault

    def active_faults(self) -> List[Fault]:
        return list(self._active.values())

    def fixed_faults(self) -> List[Fault]:
        return list(self._fixed)

    def is_active(self, fault_key: str) -> bool:
        return fault_key in self._active

    @property
    def clean(self) -> bool:
        return not self._active

    # -- rendering ----------------------------------------------------------------

    def current_config(self) -> RouterConfig:
        """The draft's IR (faulted), for white-box tests."""
        config = copy.deepcopy(self._pristine)
        for fault in self._active.values():
            if fault.ir_transform is not None:
                fault.ir_transform(config)
        return config

    def render(self) -> str:
        config = self.current_config()
        text = self._renderer(config)
        for fault in self._active.values():
            if fault.text_transform is not None:
                text = fault.text_transform(text)
        return text
