"""Factory for the per-router synthesis simulated GPT-4 (§4).

§4.1: "We asked GPT-4 to generate configs for each router using a new
prompt each time" — so synthesis uses one chat session (one
:class:`SimulatedGPT4`) per router.  The factory applies the IIP
suppression rule: faults whose IIP is supplied never appear in the
initial draft (§4.2's before/after).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..cisco import generate_cisco
from ..topology.model import Topology
from ..topology.reference import build_reference_configs
from .behavior import BehaviorProfile
from .simulated import SimulatedGPT4
from .synthesis_faults import (
    IIP_SUPPRESSED_FAULTS,
    SYNTHESIS_SIDE_POOL,
    border_fault_assignment,
    default_fault_assignment,
    synthesis_fault_catalog,
)

__all__ = ["make_synthesis_models", "make_synthesis_model"]


def make_synthesis_model(
    router_name: str,
    topology: Topology,
    iip_ids: Iterable[str] = (),
    seed: int = 0,
    profile: Optional[BehaviorProfile] = None,
    fault_keys: Optional[Sequence[str]] = None,
) -> SimulatedGPT4:
    """One chat session primed to generate ``router_name``'s config."""
    references = build_reference_configs(topology)
    if router_name not in references:
        raise KeyError(f"unknown router {router_name!r}")
    catalog = synthesis_fault_catalog(topology)
    if fault_keys is None:
        from ..topology.families import is_hub_star

        assignment = (
            default_fault_assignment(len(topology.routers))
            if is_hub_star(topology)
            else border_fault_assignment(topology)
        )
        fault_keys = assignment.get(router_name, [])
    active_iips = set(iip_ids)
    filtered = [
        key
        for key in fault_keys
        if IIP_SUPPRESSED_FAULTS.get(key) not in active_iips
    ]
    return SimulatedGPT4(
        catalog=catalog,
        reference=references[router_name],
        renderer=generate_cisco,
        initial_fault_keys=filtered,
        side_pool_keys=SYNTHESIS_SIDE_POOL,
        seed=seed + _router_seed_offset(router_name),
        profile=profile,
    )


def make_synthesis_models(
    topology: Topology,
    iip_ids: Iterable[str] = (),
    seed: int = 0,
    profile: Optional[BehaviorProfile] = None,
    assignment: Optional[Dict[str, List[str]]] = None,
) -> Dict[str, SimulatedGPT4]:
    """One session per router, keyed by router name."""
    iips = list(iip_ids)
    models: Dict[str, SimulatedGPT4] = {}
    for name in topology.router_names():
        fault_keys = assignment.get(name) if assignment is not None else None
        models[name] = make_synthesis_model(
            name,
            topology,
            iip_ids=iips,
            seed=seed,
            profile=profile,
            fault_keys=fault_keys,
        )
    return models


def _router_seed_offset(router_name: str) -> int:
    """Distinct per-router RNG streams under one experiment seed."""
    digits = "".join(char for char in router_name if char.isdigit())
    return int(digits) * 1009 if digits else 0
