"""Reference Cisco → Juniper translation over the IR.

This module is the *ground truth* for the translation use case (§3): a
semantics-preserving transform from a Cisco-flavoured
:class:`RouterConfig` to a Juniper-flavoured one.  The simulated GPT-4's
drafts are fault-injected perturbations of this output, so every
difference Campion reports against the source traces back to an injected
fault rather than a translator bug.

The two genuinely tricky translations are exactly the ones the paper
highlights:

* **prefix lists with ``ge``/``le``** (§3.2): Junos prefix-lists cannot
  carry length ranges, so any route-map match on such a list is lowered
  to inline ``route-filter ... prefix-length-range`` terms;
* **redistribution into BGP** (§3.2/Table 2): Cisco's ``redistribute
  <proto> route-map M`` becomes extra export-policy terms guarded by
  ``from protocol <proto>``, and — crucially — the original BGP export
  terms gain a ``from protocol bgp`` guard so they do not accidentally
  re-export IGP routes (the missing "from bgp" condition GPT-4 could not
  supply on its own).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Set

from ..netmodel.device import RouterConfig, Vendor
from ..netmodel.route import Protocol
from ..netmodel.routing_policy import (
    Action,
    MatchAcl,
    MatchPrefixList,
    MatchPrefixRanges,
    MatchProtocol,
    RouteMap,
    RouteMapClause,
)

__all__ = ["TranslationNotes", "translate_cisco_to_juniper"]


@dataclass
class TranslationNotes:
    """Bookkeeping produced alongside a translation.

    ``range_lowered_lists`` and ``redistribution_policies`` record where
    the two hard transformations fired; tests assert on them and the
    fault injector uses them to aim its perturbations at realistic spots.
    """

    range_lowered_lists: List[str] = field(default_factory=list)
    redistribution_policies: List[str] = field(default_factory=list)
    guarded_export_policies: List[str] = field(default_factory=list)


def translate_cisco_to_juniper(
    cisco: RouterConfig,
) -> "tuple[RouterConfig, TranslationNotes]":
    """Translate a Cisco IR config into an equivalent Juniper IR config."""
    notes = TranslationNotes()
    juniper = copy.deepcopy(cisco)
    juniper.vendor = Vendor.JUNIPER
    _lower_ranged_prefix_lists(juniper, notes)
    _guard_all_export_policies(juniper, notes)
    _fold_redistribution_into_exports(juniper, notes)
    return juniper, notes


def _guard_all_export_policies(config: RouterConfig, notes: TranslationNotes) -> None:
    """Every export policy needs ``from protocol bgp`` guards.

    A Cisco neighbor export route-map only ever sees BGP routes; a Junos
    export policy sees the whole routing table, so an unguarded permit
    term would silently redistribute direct/IGP routes — with or without
    any explicit ``redistribute`` statement on the Cisco side.
    """
    bgp = config.bgp
    if bgp is None:
        return
    export_names = sorted(
        {
            neighbor.export_policy
            for neighbor in bgp.neighbors.values()
            if neighbor.export_policy is not None
        }
    )
    for name in export_names:
        route_map = config.get_route_map(name)
        if route_map is not None:
            _guard_existing_terms(route_map, notes)


def _lower_ranged_prefix_lists(config: RouterConfig, notes: TranslationNotes) -> None:
    """Replace matches on ranged prefix lists with inline route filters."""
    # Lists that cannot be expressed as Junos prefix-lists: any entry
    # with a length range, or any deny entry (Junos prefix-lists are
    # permit-only); both lower to route-filters over the *permitted*
    # space, which accounts for deny shadowing.
    ranged: Set[str] = {
        name
        for name, prefix_list in config.prefix_lists.items()
        if any(
            not entry.range.is_exact() or entry.action == "deny"
            for entry in prefix_list.entries
        )
    }
    if not ranged and not config.access_lists:
        return
    for route_map in config.route_maps.values():
        for clause in route_map.clauses:
            rewritten = []
            for condition in clause.matches:
                if (
                    isinstance(condition, MatchPrefixList)
                    and condition.name in ranged
                ):
                    prefix_list = config.prefix_lists[condition.name]
                    permit_ranges = tuple(prefix_list.permitted_ranges())
                    rewritten.append(MatchPrefixRanges(permit_ranges))
                    if condition.name not in notes.range_lowered_lists:
                        notes.range_lowered_lists.append(condition.name)
                elif isinstance(condition, MatchAcl):
                    # Junos has no standard ACLs for route filtering;
                    # lower contiguous entries to route filters.
                    access_list = config.access_lists.get(condition.name)
                    if access_list is not None:
                        rewritten.append(
                            MatchPrefixRanges(
                                tuple(access_list.permitted_ranges())
                            )
                        )
                        if condition.name not in notes.range_lowered_lists:
                            notes.range_lowered_lists.append(condition.name)
                    else:
                        rewritten.append(condition)
                else:
                    rewritten.append(condition)
            clause.matches = rewritten


def _fold_redistribution_into_exports(
    config: RouterConfig, notes: TranslationNotes
) -> None:
    """Turn ``redistribute`` statements into guarded export-policy terms."""
    bgp = config.bgp
    if bgp is None or not bgp.redistributions:
        return
    export_names = sorted(
        {
            neighbor.export_policy
            for neighbor in bgp.neighbors.values()
            if neighbor.export_policy is not None
        }
    )
    for name in export_names:
        route_map = config.get_route_map(name)
        if route_map is None:
            continue
        # New terms must precede a trailing unconditional reject, or they
        # would be dead code; pop it, append, and re-add it last.
        trailing_deny = None
        if (
            route_map.clauses
            and route_map.clauses[-1].action is Action.DENY
            and not route_map.clauses[-1].matches
        ):
            trailing_deny = route_map.clauses.pop()
        next_seq = (route_map.clauses[-1].seq + 10) if route_map.clauses else 10
        for redistribution in bgp.redistributions:
            clause = RouteMapClause(
                seq=next_seq,
                action=Action.PERMIT,
                term_name=f"redistribute-{redistribution.protocol.value}",
            )
            clause.matches.append(MatchProtocol(redistribution.protocol))
            if redistribution.route_map is not None:
                source_map = config.get_route_map(redistribution.route_map)
                if source_map is not None:
                    clause = _merge_redistribution_map(
                        clause, source_map, next_seq, redistribution.protocol
                    )
            route_map.add_clause(clause)
            next_seq += 10
            if name not in notes.redistribution_policies:
                notes.redistribution_policies.append(name)
        if trailing_deny is not None:
            trailing_deny.seq = next_seq
            route_map.add_clause(trailing_deny)
    bgp.redistributions = []


def _guard_existing_terms(route_map: RouteMap, notes: TranslationNotes) -> None:
    """Prepend ``from protocol bgp`` to terms lacking a protocol guard."""
    changed = False
    for clause in route_map.clauses:
        has_protocol_guard = any(
            isinstance(condition, MatchProtocol) for condition in clause.matches
        )
        if not has_protocol_guard and clause.action is Action.PERMIT:
            clause.matches.insert(0, MatchProtocol(Protocol.BGP))
            changed = True
    if changed and route_map.name not in notes.guarded_export_policies:
        notes.guarded_export_policies.append(route_map.name)


def _merge_redistribution_map(
    clause: RouteMapClause,
    source_map: RouteMap,
    seq: int,
    protocol: Protocol,
) -> RouteMapClause:
    """Fold a Cisco redistribution route-map's first permit clause in.

    Cisco applies the route-map as a filter on redistributed routes; the
    equivalent Junos term carries the same matches plus the protocol
    guard.  Multi-clause redistribution maps are folded clause-by-clause
    upstream; the experiments use single-clause maps.
    """
    merged = RouteMapClause(
        seq=seq,
        action=Action.PERMIT,
        term_name=clause.term_name,
    )
    merged.matches.append(MatchProtocol(protocol))
    for source_clause in source_map.clauses:
        if source_clause.action is Action.PERMIT:
            merged.matches.extend(source_clause.matches)
            merged.sets.extend(source_clause.sets)
            break
    return merged
