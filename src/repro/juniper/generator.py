"""Junos configuration generator (vendor-neutral IR → text).

Produces the reference rendering that the simulated GPT-4 perturbs.
Communities used in ``set community`` actions are emitted as named
``policy-options community`` definitions, synthesizing names when the IR
has no matching named list (Junos cannot set a literal community).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..netmodel.communities import Community
from ..netmodel.device import RouterConfig
from ..netmodel.ip import PrefixRange
from ..netmodel.routing_policy import (
    Action,
    MatchAsPathList,
    MatchCommunityInline,
    MatchCommunityList,
    MatchPrefixList,
    MatchPrefixRanges,
    MatchProtocol,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetCommunity,
    SetLocalPref,
    SetMed,
    SetNextHop,
)

__all__ = ["generate_juniper"]

_INDENT = "    "


def generate_juniper(config: RouterConfig) -> str:
    """Render a :class:`RouterConfig` as a Junos configuration file."""
    writer = _Writer()
    community_names = _CommunityNamer(config)
    if config.hostname:
        with writer.block("system"):
            writer.leaf(f"host-name {config.hostname}")
    if config.interfaces:
        with writer.block("interfaces"):
            for interface in config.sorted_interfaces():
                _render_interface(writer, interface)
    _render_routing_options(writer, config)
    _render_protocols(writer, config)
    _render_policy_options(writer, config, community_names)
    return writer.render()


class _Writer:
    """Tiny indented block writer for Junos syntax."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._depth = 0

    def leaf(self, text: str) -> None:
        self._lines.append(f"{_INDENT * self._depth}{text};")

    def raw(self, text: str) -> None:
        self._lines.append(f"{_INDENT * self._depth}{text}")

    def block(self, header: str) -> "_Block":
        return _Block(self, header)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


class _Block:
    def __init__(self, writer: _Writer, header: str) -> None:
        self._writer = writer
        self._header = header

    def __enter__(self) -> _Writer:
        self._writer.raw(f"{self._header} {{")
        self._writer._depth += 1
        return self._writer

    def __exit__(self, *exc_info: object) -> None:
        self._writer._depth -= 1
        self._writer.raw("}")


class _CommunityNamer:
    """Maps community tuples to Junos named communities.

    Prefers names already defined in the IR's community lists; invents
    ``COMM_<asn>_<value>`` style names otherwise.
    """

    def __init__(self, config: RouterConfig) -> None:
        self._by_members: Dict[Tuple[Community, ...], str] = {}
        for name, community_list in config.community_lists.items():
            members = tuple(sorted(community_list.permitted_communities()))
            if members and members not in self._by_members:
                self._by_members[members] = name
        self._synthesized: Dict[Tuple[Community, ...], str] = {}

    def name_for(self, communities: Tuple[Community, ...]) -> str:
        key = tuple(sorted(communities))
        if key in self._by_members:
            return self._by_members[key]
        if key not in self._synthesized:
            label = "_".join(f"{c.asn}_{c.value}" for c in key)
            self._synthesized[key] = f"COMM_{label}"
        return self._synthesized[key]

    def definitions(self) -> List[Tuple[str, Tuple[Community, ...]]]:
        """Only names invented by the generator (existing ones are rendered
        from the config's own community lists)."""
        return sorted(
            ((name, members) for members, name in self._synthesized.items()),
            key=lambda item: item[0],
        )


def _render_interface(writer: _Writer, interface) -> None:
    with writer.block(interface.name):
        if interface.description:
            writer.leaf(f"description {interface.description}")
        with writer.block(f"unit {interface.unit}"):
            with writer.block("family inet"):
                if interface.address is not None and interface.prefix is not None:
                    writer.leaf(
                        f"address {interface.address}/{interface.prefix.length}"
                    )


def _render_routing_options(writer: _Writer, config: RouterConfig) -> None:
    bgp = config.bgp
    if bgp is None:
        return
    with writer.block("routing-options"):
        if bgp.router_id is not None:
            writer.leaf(f"router-id {bgp.router_id}")
        if bgp.asn:
            writer.leaf(f"autonomous-system {bgp.asn}")


def _render_protocols(writer: _Writer, config: RouterConfig) -> None:
    if config.bgp is None and config.ospf is None:
        return
    with writer.block("protocols"):
        if config.bgp is not None:
            _render_bgp(writer, config)
        if config.ospf is not None:
            _render_ospf(writer, config)


def _render_bgp(writer: _Writer, config: RouterConfig) -> None:
    bgp = config.bgp
    assert bgp is not None
    with writer.block("bgp"):
        for index, neighbor in enumerate(bgp.sorted_neighbors(), start=1):
            group_name = neighbor.peer_group or f"peer-{index}"
            with writer.block(f"group {group_name}"):
                writer.leaf("type external")
                with writer.block(f"neighbor {neighbor.ip}"):
                    if neighbor.description:
                        writer.leaf(f"description {neighbor.description}")
                    writer.leaf(f"peer-as {neighbor.remote_as}")
                    if neighbor.local_as is not None and neighbor.local_as != bgp.asn:
                        writer.leaf(f"local-as {neighbor.local_as}")
                    if neighbor.import_policy:
                        writer.leaf(f"import {neighbor.import_policy}")
                    if neighbor.export_policy:
                        writer.leaf(f"export {neighbor.export_policy}")


def _render_ospf(writer: _Writer, config: RouterConfig) -> None:
    ospf = config.ospf
    assert ospf is not None
    areas: Dict[int, List[str]] = {}
    for interface in config.sorted_interfaces():
        area = interface.ospf_area
        if area is None and interface.prefix is not None:
            area = ospf.covers(interface.prefix)
        if area is None:
            continue
        areas.setdefault(area, []).append(_junos_unit_name(interface))
    for area, names in ospf.area_interfaces.items():
        for name in names:
            if name not in areas.setdefault(area, []):
                areas[area].append(name)
    if not areas:
        return
    with writer.block("ospf"):
        for area in sorted(areas):
            with writer.block(f"area {_area_string(area)}"):
                for name in areas[area]:
                    interface = _find_interface(config, name)
                    attributes: List[str] = []
                    if interface is not None and interface.ospf_cost is not None:
                        attributes.append(f"metric {interface.ospf_cost}")
                    passive = ospf.is_passive(name) or (
                        interface is not None
                        and (
                            interface.ospf_passive
                            or ospf.is_passive(interface.name)
                        )
                    )
                    if passive:
                        attributes.append("passive")
                    if attributes:
                        with writer.block(f"interface {name}"):
                            for attribute in attributes:
                                writer.leaf(attribute)
                    else:
                        writer.leaf(f"interface {name}")


def _render_policy_options(
    writer: _Writer, config: RouterConfig, community_names: _CommunityNamer
) -> None:
    has_content = (
        config.prefix_lists or config.route_maps or config.community_lists
    )
    if not has_content:
        return
    # Pre-register every community used in a set action so synthesized
    # names are defined before the policy statements reference them.
    for route_map in config.route_maps.values():
        for clause in route_map.clauses:
            for set_action in clause.sets:
                if isinstance(set_action, SetCommunity) and set_action.communities:
                    community_names.name_for(set_action.communities)
    with writer.block("policy-options"):
        for name in sorted(config.prefix_lists):
            prefix_list = config.prefix_lists[name]
            exact_entries = [
                entry
                for entry in prefix_list.entries
                if entry.range.is_exact() and entry.action == "permit"
            ]
            if exact_entries:
                with writer.block(f"prefix-list {name}"):
                    for entry in exact_entries:
                        writer.leaf(str(entry.range.prefix))
        for name in sorted(config.community_lists):
            community_list = config.community_lists[name]
            members = sorted(community_list.permitted_communities())
            if not members:
                continue
            rendered = " ".join(str(item) for item in members)
            if len(members) > 1:
                rendered = f"[ {rendered} ]"
            writer.leaf(f"community {name} members {rendered}")
        for name, members in community_names.definitions():
            rendered = " ".join(str(item) for item in members)
            if len(members) > 1:
                rendered = f"[ {rendered} ]"
            writer.leaf(f"community {name} members {rendered}")
        for name in sorted(config.as_path_lists):
            as_path_list = config.as_path_lists[name]
            permits = [
                entry for entry in as_path_list.entries
                if entry.action == "permit"
            ]
            if permits:
                # Junos named as-paths carry one regex; the experiments'
                # lists are single-permit (deny-bearing lists would need
                # an as-path-group, outside the paper's surface).
                writer.leaf(f'as-path {name} "{permits[0].regex}"')
        for name in sorted(config.route_maps):
            _render_policy_statement(
                writer, config, config.route_maps[name], community_names
            )


def _render_policy_statement(
    writer: _Writer,
    config: RouterConfig,
    route_map: RouteMap,
    community_names: _CommunityNamer,
) -> None:
    with writer.block(f"policy-statement {route_map.name}"):
        for clause in route_map.clauses:
            term_name = clause.term_name or f"t{clause.seq}"
            from_lines = _from_lines(config, clause)
            if from_lines is None:
                # A from condition with an empty match space: the term
                # can never fire, so rendering nothing is the faithful
                # translation (rendering an empty from would match all).
                continue
            with writer.block(f"term {term_name}"):
                if from_lines:
                    with writer.block("from"):
                        for line in from_lines:
                            writer.leaf(line)
                with writer.block("then"):
                    for set_action in clause.sets:
                        for line in _then_lines(set_action, community_names):
                            writer.leaf(line)
                    writer.leaf(
                        "accept" if clause.action is Action.PERMIT else "reject"
                    )


def _from_lines(config: RouterConfig, clause: RouteMapClause) -> "List[str] | None":
    """Render a clause's from conditions; ``None`` marks a clause whose
    match space is empty (the term must be omitted entirely)."""
    lines: List[str] = []
    for condition in clause.matches:
        if isinstance(condition, MatchPrefixList):
            referenced = config.get_prefix_list(condition.name)
            needs_ranges = referenced is not None and any(
                not entry.range.is_exact() or entry.action == "deny"
                for entry in referenced.entries
            )
            if needs_ranges:
                assert referenced is not None
                permitted = referenced.permitted_ranges()
                if not permitted:
                    return None
                for item in permitted:
                    lines.append(_route_filter_line(item))
            else:
                lines.append(f"prefix-list {condition.name}")
        elif isinstance(condition, MatchPrefixRanges):
            if not condition.ranges:
                return None
            for item in condition.ranges:
                lines.append(_route_filter_line(item))
        elif isinstance(condition, MatchCommunityList):
            lines.append(f"community {condition.name}")
        elif isinstance(condition, MatchCommunityInline):
            lines.append(f"community {condition.community}")
        elif isinstance(condition, MatchAsPathList):
            lines.append(f"as-path {condition.name}")
        elif isinstance(condition, MatchProtocol):
            lines.append(f"protocol {condition.protocol.value}")
    return lines


def _route_filter_line(prefix_range: PrefixRange) -> str:
    prefix = prefix_range.prefix
    if prefix_range.is_exact():
        return f"route-filter {prefix} exact"
    if prefix_range.low == prefix.length and prefix_range.high == 32:
        return f"route-filter {prefix} orlonger"
    if prefix_range.low == prefix.length:
        return f"route-filter {prefix} upto /{prefix_range.high}"
    return (
        f"route-filter {prefix} prefix-length-range "
        f"/{prefix_range.low}-/{prefix_range.high}"
    )


def _then_lines(set_action, community_names: _CommunityNamer) -> List[str]:
    if isinstance(set_action, SetCommunity):
        name = community_names.name_for(set_action.communities)
        mode = "add" if set_action.additive else "set"
        return [f"community {mode} {name}"]
    if isinstance(set_action, SetMed):
        return [f"metric {set_action.med}"]
    if isinstance(set_action, SetLocalPref):
        return [f"local-preference {set_action.local_pref}"]
    if isinstance(set_action, SetNextHop):
        return [f"next-hop {set_action.next_hop}"]
    if isinstance(set_action, SetAsPathPrepend):
        rendered = " ".join([str(set_action.asn)] * set_action.count)
        return [f'as-path-prepend "{rendered}"']
    return []


def _area_string(area: int) -> str:
    """Render an area id in the dotted form Junos prefers."""
    return ".".join(str((area >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _junos_unit_name(interface) -> str:
    return f"{interface.name}.{interface.unit}"


def _find_interface(config: RouterConfig, unit_name: str):
    base = unit_name.split(".")[0]
    return config.get_interface(unit_name) or config.get_interface(base)
