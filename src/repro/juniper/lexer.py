"""Junos hierarchical syntax lexer.

Junos configurations are curly-brace trees: a statement is a sequence of
words either terminated by ``;`` (a leaf) or followed by ``{ ... }``
(a block).  The lexer produces a :class:`Statement` tree annotated with
line numbers so parse warnings can point at the offending source line —
the raw material for Table 1's syntax-error prompts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["LexError", "Statement", "lex_juniper"]


class LexError(ValueError):
    """Raised only for catastrophically malformed input (unbalanced braces)."""


@dataclass
class Statement:
    """One node of the Junos config tree."""

    words: Tuple[str, ...]
    line: int
    children: List["Statement"] = field(default_factory=list)

    @property
    def keyword(self) -> str:
        return self.words[0] if self.words else ""

    @property
    def is_block(self) -> bool:
        return bool(self.children)

    def text(self) -> str:
        return " ".join(self.words)

    def find(self, *words: str) -> Optional["Statement"]:
        """First child whose leading words match."""
        for child in self.children:
            if child.words[: len(words)] == words:
                return child
        return None

    def find_all(self, *words: str) -> List["Statement"]:
        return [
            child
            for child in self.children
            if child.words[: len(words)] == words
        ]


@dataclass
class _Token:
    value: str
    line: int


def _scan(text: str) -> List[_Token]:
    """Split into word / ``{`` / ``}`` / ``;`` tokens with line numbers."""
    tokens: List[_Token] = []
    line = 1
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            index += 1
            continue
        if char.isspace():
            index += 1
            continue
        if char == "#":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end == -1:
                end = length
            line += text.count("\n", index, end)
            index = end + 2
            continue
        if char in "{};":
            tokens.append(_Token(char, line))
            index += 1
            continue
        if char == '"':
            end = text.find('"', index + 1)
            if end == -1:
                end = length
            tokens.append(_Token(text[index + 1 : end], line))
            index = end + 1
            continue
        start = index
        while index < length and not text[index].isspace() and text[index] not in "{};#":
            index += 1
        tokens.append(_Token(text[start:index], line))
    return tokens


def lex_juniper(text: str) -> List[Statement]:
    """Lex config text into a list of top-level statements.

    Missing semicolons before ``}`` are tolerated (treated as leaves) so
    that slightly malformed LLM output still produces a tree the parser
    can diagnose rather than an opaque failure.
    """
    tokens = _scan(text)
    statements, index = _parse_level(tokens, 0, depth=0)
    if index != len(tokens):
        raise LexError(f"unbalanced braces near line {tokens[index].line}")
    return statements


def _parse_level(
    tokens: List[_Token], index: int, depth: int
) -> Tuple[List[Statement], int]:
    statements: List[Statement] = []
    words: List[str] = []
    word_line = 0
    while index < len(tokens):
        token = tokens[index]
        if token.value == ";":
            if words:
                statements.append(Statement(tuple(words), word_line))
                words = []
            index += 1
            continue
        if token.value == "{":
            children, index = _parse_level(tokens, index + 1, depth + 1)
            header_words = tuple(words) if words else ("<anonymous>",)
            statements.append(
                Statement(header_words, word_line or token.line, children)
            )
            words = []
            continue
        if token.value == "}":
            if depth == 0:
                raise LexError(f"unexpected '}}' at line {token.line}")
            if words:
                # Tolerate a missing trailing semicolon.
                statements.append(Statement(tuple(words), word_line))
            return statements, index + 1
        if not words:
            word_line = token.line
        words.append(token.value)
        index += 1
    if depth != 0:
        raise LexError("unexpected end of input inside a block")
    if words:
        statements.append(Statement(tuple(words), word_line))
    return statements, index
