"""Junos configuration parser (text → vendor-neutral IR).

Covers the feature surface of the translation use case (§3): interfaces
with units and inet addresses, ``routing-options autonomous-system``,
BGP groups/neighbors with import/export policies, OSPF areas with
per-interface metric and passive flags, prefix lists, named communities,
and policy statements with ``route-filter`` length ranges.

Two diagnostics reproduce paper behaviours exactly:

* a prefix-list entry like ``1.2.3.0/24-32`` (GPT-4's invented syntax
  for Cisco's ``ge 24``) triggers Table 1's syntax-error warning;
* a BGP neighbor with no resolvable local AS (no ``local-as`` and no
  ``routing-options autonomous-system``) triggers the "Missing BGP
  local-as attribute" warning of Table 2.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from ..netmodel.aspath import AsPathAccessList
from ..netmodel.communities import Community, CommunityError, CommunityList, CommunityListEntry
from ..netmodel.device import RouterConfig, Vendor
from ..netmodel.diagnostics import Diagnostics
from ..netmodel.interfaces import Interface
from ..netmodel.ip import AddressError, Ipv4Address, Prefix, PrefixRange
from ..netmodel.bgp import BgpNeighbor
from ..netmodel.prefixlist import PrefixList
from ..netmodel.route import Protocol
from ..netmodel.routing_policy import (
    Action,
    MatchAsPathList,
    MatchCommunityList,
    MatchPrefixList,
    MatchPrefixRanges,
    MatchProtocol,
    RouteMap,
    RouteMapClause,
    SetCommunity,
    SetLocalPref,
    SetMed,
    SetNextHop,
)
from .lexer import LexError, Statement, lex_juniper

__all__ = ["JuniperParseResult", "parse_juniper"]

_LENGTH_RANGE_RE = re.compile(r"^/(\d+)-/(\d+)$")
_BAD_RANGE_RE = re.compile(r"^(\d+\.\d+\.\d+\.\d+)/(\d+)-(\d+)$")


@dataclass
class JuniperParseResult:
    """Outcome of a parse: the IR plus diagnostics."""

    config: RouterConfig
    diagnostics: Diagnostics

    @property
    def warnings(self):
        return self.diagnostics.warnings


def parse_juniper(text: str, filename: str = "<juniper>") -> JuniperParseResult:
    """Parse Junos config text into a :class:`RouterConfig`."""
    parser = _JuniperParser(filename)
    return parser.parse(text)


class _JuniperParser:
    def __init__(self, filename: str) -> None:
        self.diagnostics = Diagnostics(filename=filename)
        self.config = RouterConfig(hostname="", vendor=Vendor.JUNIPER)
        self._default_as: Optional[int] = None

    def parse(self, text: str) -> JuniperParseResult:
        try:
            statements = lex_juniper(text)
        except LexError as exc:
            self.diagnostics.warn(1, "<file>", f"fatal lexical error: {exc}")
            return JuniperParseResult(self.config, self.diagnostics)
        for statement in statements:
            self._dispatch(statement)
        self._check_local_as()
        return JuniperParseResult(self.config, self.diagnostics)

    def _dispatch(self, statement: Statement) -> None:
        keyword = statement.keyword
        if keyword == "system":
            host = statement.find("host-name")
            if host is not None and len(host.words) >= 2:
                self.config.hostname = host.words[1]
            return
        if keyword == "interfaces":
            for child in statement.children:
                self._parse_interface(child)
            return
        if keyword == "routing-options":
            self._parse_routing_options(statement)
            return
        if keyword == "protocols":
            for child in statement.children:
                if child.keyword == "bgp":
                    self._parse_bgp(child)
                elif child.keyword == "ospf":
                    self._parse_ospf(child)
                else:
                    self.diagnostics.warn(
                        child.line, child.text(), "unsupported protocol"
                    )
            return
        if keyword == "policy-options":
            for child in statement.children:
                self._parse_policy_option(child)
            return
        self.diagnostics.warn(
            statement.line, statement.text(), "This syntax is unrecognized"
        )

    # -- interfaces -----------------------------------------------------------

    def _parse_interface(self, statement: Statement) -> None:
        name = statement.keyword
        interface = self.config.get_interface(name) or Interface(name=name)
        self.config.add_interface(interface)
        description = statement.find("description")
        if description is not None and len(description.words) >= 2:
            interface.description = " ".join(description.words[1:])
        for unit in statement.find_all("unit"):
            if len(unit.words) >= 2 and unit.words[1].isdigit():
                interface.unit = int(unit.words[1])
            family = unit.find("family", "inet")
            if family is None:
                continue
            for address in family.find_all("address"):
                if len(address.words) < 2:
                    self.diagnostics.warn(
                        address.line, address.text(), "address requires a value"
                    )
                    continue
                try:
                    addr_part, _, len_part = address.words[1].partition("/")
                    interface.address = Ipv4Address.parse(addr_part)
                    interface.prefix = Prefix.parse(address.words[1])
                except AddressError as exc:
                    self.diagnostics.warn(address.line, address.text(), str(exc))

    # -- routing options --------------------------------------------------------

    def _parse_routing_options(self, statement: Statement) -> None:
        autonomous = statement.find("autonomous-system")
        if autonomous is not None and len(autonomous.words) >= 2:
            try:
                self._default_as = int(autonomous.words[1])
            except ValueError:
                self.diagnostics.warn(
                    autonomous.line, autonomous.text(), "invalid AS number"
                )
        router_id = statement.find("router-id")
        if router_id is not None and len(router_id.words) >= 2:
            try:
                bgp = self.config.ensure_bgp(self._default_as or 0)
                bgp.router_id = Ipv4Address.parse(router_id.words[1])
            except AddressError as exc:
                self.diagnostics.warn(router_id.line, router_id.text(), str(exc))

    # -- BGP ---------------------------------------------------------------------

    def _parse_bgp(self, statement: Statement) -> None:
        bgp = self.config.ensure_bgp(self._default_as or 0)
        if self._default_as is not None and bgp.asn == 0:
            bgp.asn = self._default_as
        for group in statement.find_all("group"):
            group_name = group.words[1] if len(group.words) >= 2 else "<group>"
            group_import = _single_word(group.find("import"))
            group_export = _single_word(group.find("export"))
            group_local_as = _single_int(group.find("local-as"))
            group_peer_as = _single_int(group.find("peer-as"))
            for neighbor in group.find_all("neighbor"):
                self._parse_neighbor(
                    neighbor,
                    bgp,
                    group_name,
                    group_import,
                    group_export,
                    group_local_as,
                    group_peer_as,
                )
        for neighbor in statement.find_all("neighbor"):
            self._parse_neighbor(neighbor, bgp, None, None, None, None, None)

    def _parse_neighbor(
        self,
        statement: Statement,
        bgp,
        group_name: Optional[str],
        group_import: Optional[str],
        group_export: Optional[str],
        group_local_as: Optional[int],
        group_peer_as: Optional[int],
    ) -> None:
        if len(statement.words) < 2:
            self.diagnostics.warn(
                statement.line, statement.text(), "neighbor requires an address"
            )
            return
        try:
            ip = Ipv4Address.parse(statement.words[1])
        except AddressError as exc:
            self.diagnostics.warn(statement.line, statement.text(), str(exc))
            return
        peer_as = _single_int(statement.find("peer-as"))
        if peer_as is None:
            peer_as = group_peer_as
        if peer_as is None:
            self.diagnostics.warn(
                statement.line,
                statement.text(),
                f"BGP neighbor {ip} has no peer-as",
            )
            peer_as = 0
        neighbor = BgpNeighbor(
            ip=ip,
            remote_as=peer_as,
            peer_group=group_name,
            import_policy=_single_word(statement.find("import")) or group_import,
            export_policy=_single_word(statement.find("export")) or group_export,
            local_as=_single_int(statement.find("local-as")) or group_local_as,
        )
        description = statement.find("description")
        if description is not None and len(description.words) >= 2:
            neighbor.description = " ".join(description.words[1:])
        bgp.add_neighbor(neighbor)
        self._neighbor_lines = getattr(self, "_neighbor_lines", {})
        self._neighbor_lines[str(ip)] = statement.line

    def _check_local_as(self) -> None:
        """Table 2 row 1: neighbors whose local AS cannot be resolved."""
        if self.config.bgp is None:
            return
        for neighbor in self.config.bgp.sorted_neighbors():
            resolved = neighbor.local_as or self._default_as
            if resolved is None:
                line = getattr(self, "_neighbor_lines", {}).get(str(neighbor.ip), 1)
                self.diagnostics.warn(
                    line,
                    f"neighbor {neighbor.ip}",
                    "BGP neighbor has no local AS: set routing-options "
                    "autonomous-system or a local-as statement",
                )
            elif neighbor.local_as is None:
                neighbor.local_as = resolved

    # -- OSPF ----------------------------------------------------------------------

    def _parse_ospf(self, statement: Statement) -> None:
        ospf = self.config.ensure_ospf()
        for area in statement.find_all("area"):
            area_id = _parse_area_id(area.words[1]) if len(area.words) >= 2 else 0
            for interface_stmt in area.find_all("interface"):
                if len(interface_stmt.words) < 2:
                    continue
                interface_name = interface_stmt.words[1]
                ospf.add_area_interface(area_id, interface_name)
                base_name = interface_name.split(".")[0]
                interface = self.config.get_interface(
                    interface_name
                ) or self.config.get_interface(base_name)
                metric = _single_int(interface_stmt.find("metric"))
                if interface is not None:
                    interface.ospf_area = area_id
                    if metric is not None:
                        interface.ospf_cost = metric
                if interface_stmt.find("passive") is not None:
                    ospf.set_passive(interface_name)
                    if interface is not None:
                        interface.ospf_passive = True

    # -- policy options ---------------------------------------------------------------

    def _parse_policy_option(self, statement: Statement) -> None:
        keyword = statement.keyword
        if keyword == "prefix-list":
            self._parse_prefix_list(statement)
            return
        if keyword == "policy-statement":
            self._parse_policy_statement(statement)
            return
        if keyword == "community":
            self._parse_named_community(statement)
            return
        if keyword == "as-path":
            self._parse_named_as_path(statement)
            return
        self.diagnostics.warn(
            statement.line, statement.text(), "unsupported policy-options statement"
        )

    def _parse_prefix_list(self, statement: Statement) -> None:
        if len(statement.words) < 2:
            self.diagnostics.warn(
                statement.line, statement.text(), "prefix-list requires a name"
            )
            return
        name = statement.words[1]
        prefix_list = self.config.prefix_lists.get(name) or PrefixList(name)
        self.config.add_prefix_list(prefix_list)
        for child in statement.children:
            entry_text = child.words[0]
            bad_range = _BAD_RANGE_RE.match(entry_text)
            if bad_range is not None:
                # GPT-4's invented ``1.2.3.0/24-32`` syntax (§3.2): Junos
                # prefix-lists cannot express length ranges at all.
                self.diagnostics.warn(
                    child.line,
                    f"policy-options prefix-list {name} {entry_text}",
                    "There is a syntax error",
                )
                continue
            try:
                prefix = Prefix.parse(entry_text)
            except AddressError as exc:
                self.diagnostics.warn(
                    child.line,
                    f"policy-options prefix-list {name} {entry_text}",
                    f"There is a syntax error: {exc}",
                )
                continue
            prefix_list.add("permit", PrefixRange.exact(prefix))

    def _parse_named_as_path(self, statement: Statement) -> None:
        # as-path NAME "regex"
        if len(statement.words) < 3:
            self.diagnostics.warn(
                statement.line, statement.text(), "as-path requires a name and a regex"
            )
            return
        name = statement.words[1]
        regex = " ".join(statement.words[2:])
        as_path_list = AsPathAccessList(name)
        as_path_list.add("permit", regex)
        self.config.add_as_path_list(as_path_list)

    def _parse_named_community(self, statement: Statement) -> None:
        # community NAME members [ 100:1 200:1 ] | community NAME members 100:1
        if len(statement.words) < 2:
            self.diagnostics.warn(
                statement.line, statement.text(), "community requires a name"
            )
            return
        name = statement.words[1]
        member_tokens: List[str] = []
        if "members" in statement.words:
            position = statement.words.index("members")
            member_tokens = [
                token
                for token in statement.words[position + 1 :]
                if token not in ("[", "]")
            ]
        values = []
        for token in member_tokens:
            try:
                values.append(Community.parse(token))
            except CommunityError as exc:
                self.diagnostics.warn(statement.line, statement.text(), str(exc))
                return
        if not values:
            self.diagnostics.warn(
                statement.line, statement.text(), "community has no members"
            )
            return
        community_list = CommunityList(name)
        community_list.add(
            CommunityListEntry(action="permit", communities=tuple(values))
        )
        self.config.add_community_list(community_list)

    def _parse_policy_statement(self, statement: Statement) -> None:
        if len(statement.words) < 2:
            self.diagnostics.warn(
                statement.line, statement.text(), "policy-statement requires a name"
            )
            return
        name = statement.words[1]
        route_map = RouteMap(name)
        self.config.add_route_map(route_map)
        seq = 0
        for term in statement.children:
            seq += 10
            if term.keyword == "term":
                term_name = term.words[1] if len(term.words) >= 2 else f"t{seq}"
                clause = self._parse_term(term, seq, term_name)
            elif term.keyword == "then":
                # Anonymous trailing ``then accept;`` at statement level.
                clause = RouteMapClause(seq=seq, action=Action.PERMIT)
                self._apply_then_words(term, clause)
            else:
                self.diagnostics.warn(
                    term.line, term.text(), "unexpected statement in policy"
                )
                continue
            route_map.add_clause(clause)

    def _parse_term(self, term: Statement, seq: int, term_name: str) -> RouteMapClause:
        clause = RouteMapClause(
            seq=seq, action=Action.PERMIT, term_name=term_name
        )
        from_block = term.find("from")
        if from_block is not None:
            ranges: List[PrefixRange] = []
            for condition in from_block.children:
                self._parse_from_condition(condition, clause, ranges)
            if ranges:
                clause.matches.append(MatchPrefixRanges(tuple(ranges)))
        then_block = term.find("then")
        if then_block is not None:
            self._apply_then_block(then_block, clause)
        return clause

    def _parse_from_condition(
        self,
        condition: Statement,
        clause: RouteMapClause,
        ranges: List[PrefixRange],
    ) -> None:
        words = condition.words
        if words[0] == "prefix-list" and len(words) >= 2:
            clause.matches.append(MatchPrefixList(words[1]))
            return
        if words[0] == "route-filter" and len(words) >= 2:
            parsed = self._parse_route_filter(condition)
            if parsed is not None:
                ranges.append(parsed)
            return
        if words[0] == "community" and len(words) >= 2:
            clause.matches.append(MatchCommunityList(words[1]))
            return
        if words[0] == "as-path" and len(words) >= 2:
            clause.matches.append(MatchAsPathList(words[1]))
            return
        if words[0] == "protocol" and len(words) >= 2:
            try:
                clause.matches.append(MatchProtocol(Protocol(words[1])))
            except ValueError:
                self.diagnostics.warn(
                    condition.line, condition.text(), f"unknown protocol {words[1]!r}"
                )
            return
        self.diagnostics.warn(
            condition.line, condition.text(), "unsupported from condition"
        )

    def _parse_route_filter(self, condition: Statement) -> Optional[PrefixRange]:
        words = condition.words
        try:
            prefix = Prefix.parse(words[1])
        except AddressError as exc:
            self.diagnostics.warn(condition.line, condition.text(), str(exc))
            return None
        modifier = words[2] if len(words) >= 3 else "exact"
        if modifier == "exact":
            return PrefixRange.exact(prefix)
        if modifier == "orlonger":
            return PrefixRange.orlonger(prefix)
        if modifier == "upto" and len(words) >= 4:
            upto = words[3].lstrip("/")
            if upto.isdigit():
                return PrefixRange(prefix, prefix.length, int(upto))
        if modifier == "prefix-length-range" and len(words) >= 4:
            match = _LENGTH_RANGE_RE.match(words[3])
            if match is not None:
                low, high = int(match.group(1)), int(match.group(2))
                try:
                    return PrefixRange(prefix, low, high)
                except AddressError as exc:
                    self.diagnostics.warn(condition.line, condition.text(), str(exc))
                    return None
        self.diagnostics.warn(
            condition.line,
            condition.text(),
            f"There is a syntax error: invalid route-filter modifier "
            f"{' '.join(words[2:])!r}",
        )
        return None

    def _apply_then_block(self, then_block: Statement, clause: RouteMapClause) -> None:
        if len(then_block.words) > 1:
            # ``then accept;`` leaf form.
            self._apply_then_words(then_block, clause)
            return
        for action in then_block.children:
            self._apply_then_action(action, clause)

    def _apply_then_words(self, statement: Statement, clause: RouteMapClause) -> None:
        synthetic = Statement(statement.words[1:], statement.line)
        self._apply_then_action(synthetic, clause)

    def _apply_then_action(self, action: Statement, clause: RouteMapClause) -> None:
        words = action.words
        if not words:
            return
        if words[0] == "accept":
            clause.action = Action.PERMIT
            return
        if words[0] == "reject":
            clause.action = Action.DENY
            return
        if words[0] == "metric" and len(words) >= 2 and words[1].isdigit():
            clause.sets.append(SetMed(int(words[1])))
            return
        if words[0] == "local-preference" and len(words) >= 2 and words[1].isdigit():
            clause.sets.append(SetLocalPref(int(words[1])))
            return
        if words[0] == "as-path-prepend" and len(words) >= 2:
            asns = [int(token) for token in words[1].split() if token.isdigit()]
            if asns:
                from ..netmodel.routing_policy import SetAsPathPrepend

                clause.sets.append(SetAsPathPrepend(asns[0], len(asns)))
            else:
                self.diagnostics.warn(
                    action.line, action.text(), "invalid as-path-prepend value"
                )
            return
        if words[0] == "next-hop" and len(words) >= 2:
            try:
                clause.sets.append(SetNextHop(Ipv4Address.parse(words[1])))
            except AddressError as exc:
                self.diagnostics.warn(action.line, action.text(), str(exc))
            return
        if words[0] == "community" and len(words) >= 3:
            mode = words[1]
            name = words[2]
            resolved = self.config.get_community_list(name)
            if resolved is None:
                self.diagnostics.warn(
                    action.line,
                    action.text(),
                    f"community {name!r} is not defined in policy-options",
                )
                return
            members = tuple(sorted(resolved.permitted_communities()))
            if mode == "add":
                clause.sets.append(SetCommunity(members, additive=True))
            elif mode == "set":
                clause.sets.append(SetCommunity(members, additive=False))
            elif mode == "delete":
                self.diagnostics.warn(
                    action.line, action.text(), "community delete is unsupported"
                )
            else:
                self.diagnostics.warn(
                    action.line, action.text(), f"unknown community mode {mode!r}"
                )
            return
        self.diagnostics.warn(action.line, action.text(), "unsupported then action")


def _single_word(statement: Optional[Statement]) -> Optional[str]:
    if statement is None or len(statement.words) < 2:
        return None
    return statement.words[1]


def _single_int(statement: Optional[Statement]) -> Optional[int]:
    word = _single_word(statement)
    if word is None or not word.isdigit():
        return None
    return int(word)


def _parse_area_id(token: str) -> int:
    """Areas may be written ``0`` or ``0.0.0.0``."""
    if "." in token:
        try:
            return Ipv4Address.parse(token).value
        except AddressError:
            return 0
    try:
        return int(token)
    except ValueError:
        return 0
