"""Juniper (Junos) dialect: lexer, parser, generator, and the reference
Cisco→Juniper translator used as the translation ground truth."""

from .generator import generate_juniper
from .lexer import LexError, Statement, lex_juniper
from .parser import JuniperParseResult, parse_juniper
from .translate import TranslationNotes, translate_cisco_to_juniper

__all__ = [
    "JuniperParseResult",
    "LexError",
    "Statement",
    "TranslationNotes",
    "generate_juniper",
    "lex_juniper",
    "parse_juniper",
    "translate_cisco_to_juniper",
]
