"""CampaignSpec: the submission contract and the sharding math."""

import pytest

from repro.experiments.campaign import build_grid
from repro.service import DEFAULT_SHARD_SIZE, CampaignSpec
from repro.service.spec import shard_scenarios, spec_fingerprint


class TestSpec:
    def test_round_trips_through_dict(self):
        spec = CampaignSpec(
            families=["star", "chain"],
            sizes=[4, 6],
            seeds=3,
            profiles=["default", "sloppy"],
            iip_ablation=True,
            roles=["c2i2h2"],
            shard_size=5,
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="familes"):
            CampaignSpec.from_dict({"familes": ["star"]})

    def test_rejects_non_object_payload(self):
        with pytest.raises(ValueError, match="JSON object"):
            CampaignSpec.from_dict(["star"])

    def test_build_matches_batch_grid(self):
        """The service precondition: a spec enumerates exactly the grid
        the batch CLI would, in the same order."""
        spec = CampaignSpec(families=["chain", "star"], sizes=[4], seeds=2)
        batch = build_grid(["chain", "star"], [4], seeds=2)
        assert spec.build() == batch

    def test_build_validates_like_the_batch_cli(self):
        with pytest.raises(ValueError):
            CampaignSpec(families=["no-such-family"]).build()

    def test_fingerprint_is_stable_and_spec_sensitive(self):
        a = CampaignSpec(families=["star"])
        b = CampaignSpec(families=["chain"])
        assert spec_fingerprint(a) == spec_fingerprint(CampaignSpec(families=["star"]))
        assert spec_fingerprint(a) != spec_fingerprint(b)


class TestSharding:
    def test_contiguous_deterministic_slices(self):
        grid = build_grid(["chain", "star"], [4], seeds=3)
        shards = shard_scenarios(grid, 4)
        assert [s for shard in shards for s in shard] == grid
        assert shard_scenarios(grid, 4) == shards  # restart re-shards identically
        assert all(len(shard) == 4 for shard in shards[:-1])

    def test_rejects_non_positive_shard_size(self):
        with pytest.raises(ValueError, match="shard_size"):
            shard_scenarios([], 0)

    def test_explicit_shard_size_wins(self):
        spec = CampaignSpec(shard_size=7)
        assert spec.resolve_shard_size(100, workers=2) == 7

    def test_explicit_shard_size_validated(self):
        with pytest.raises(ValueError, match="shard_size"):
            CampaignSpec(shard_size=0).resolve_shard_size(10, workers=2)

    def test_default_caps_at_default_shard_size(self):
        spec = CampaignSpec()
        assert spec.resolve_shard_size(10_000, workers=2) == DEFAULT_SHARD_SIZE

    def test_default_shrinks_for_small_grids(self):
        """A tiny grid still spreads across the pool instead of landing
        in one oversized unit."""
        spec = CampaignSpec()
        assert spec.resolve_shard_size(4, workers=4) == 1
        assert spec.resolve_shard_size(1, workers=8) == 1
